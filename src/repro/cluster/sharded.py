"""ShardedEngine: horizontal partitioning of any substrate engine.

A :class:`ShardedEngine` wraps ``N`` instances of one substrate engine type
behind a pluggable :class:`~repro.cluster.partition.Partitioner` and presents
itself to the middleware as a single :class:`~repro.stores.base.Engine`: it
registers in the catalog, declares its shards' data model, capabilities and
concurrency contract, and aggregates the per-shard ``data_version`` counters
so a write to *any* shard invalidates every pinned scan snapshot that read
this engine.

Writes route through the partitioner:

* relational rows route on a **declared shard key** column (per table),
* key/value puts route on the key,
* timeseries appends route on the series key (a series lives whole on one
  shard, which keeps window/summary reads shard-local).

Reads are scatter-gathered by the executor (see
:mod:`repro.cluster.scatter`); the engine itself also offers merged
convenience reads for direct native use.

Online rebalancing (:mod:`repro.cluster.rebalance`) uses the three-phase
hooks at the bottom of the class: :meth:`begin_rebalance` atomically
snapshots the current data and installs a *pending* shard set that every
subsequent write is mirrored into (dual-write), while reads keep answering
from the old shard map; :meth:`cutover` swaps the maps atomically and keeps
``data_version`` monotonic; :meth:`abort_rebalance` discards the pending set.
"""

from __future__ import annotations

import contextlib
import heapq
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.cluster.partition import HashPartitioner, Partitioner
from repro.datamodel.schema import Column, DataType, Schema
from repro.datamodel.table import Table
from repro.exceptions import ConfigurationError, StorageError
from repro.stores.base import Capability, DataModel, Engine
from repro.stores.changelog import DeltaBatch, table_scope

#: Data models the scatter-gather executor can partition correctly.  Graph
#: engines are excluded: paths and neighbourhoods cross shard boundaries, so
#: a sharded graph engine would silently drop cross-shard edges.
PARTITIONABLE_MODELS = frozenset({
    DataModel.RELATIONAL, DataModel.KEY_VALUE, DataModel.TIMESERIES,
    DataModel.DOCUMENT,
})

ShardFactory = Callable[[int], Engine]


@dataclass
class ShardPayload:
    """One unit of data extracted from a shard during a rebalance.

    ``table`` payloads travel through the
    :class:`~repro.middleware.migration.DataMigrator` (so the rebalance is
    charged realistic serialization + transfer costs); ``items`` payloads
    (arbitrary key/value objects) move by reference, mirroring how the
    executor treats non-tabular migrations.
    """

    kind: str                      # "relational_table" | "kv_items" | "ts_series"
    name: str                      # table name, series key, or shard name
    source_shard: str
    table: Table | None = None
    items: list[tuple[str, Any]] | None = None
    #: Series tags (timeseries payloads only), recreated at apply time.
    tags: dict[str, str] | None = None

    @property
    def rows(self) -> int:
        """Number of rows/entries this payload carries."""
        if self.table is not None:
            return len(self.table)
        return len(self.items or [])


_TS_PAYLOAD_SCHEMA = Schema([Column("timestamp", DataType.FLOAT),
                             Column("value", DataType.FLOAT)])


def _resolve_factory(name: str, shard_factory: ShardFactory | type) -> ShardFactory:
    if isinstance(shard_factory, type):
        if not issubclass(shard_factory, Engine):
            raise ConfigurationError(
                f"shard factory class {shard_factory.__name__} is not an Engine"
            )
        return lambda index: shard_factory(f"{name}-s{index}")
    return shard_factory


class ShardedEngine(Engine):
    """N substrate engine instances behind one partitioned facade."""

    def __init__(self, name: str, shard_factory: ShardFactory | type,
                 num_shards: int | None = None, *,
                 partitioner: Partitioner | None = None) -> None:
        super().__init__(name)
        if partitioner is None:
            if num_shards is None:
                raise ConfigurationError(
                    "ShardedEngine needs num_shards or an explicit partitioner"
                )
            partitioner = HashPartitioner(num_shards)
        elif num_shards is not None and num_shards != partitioner.num_shards:
            raise ConfigurationError(
                f"num_shards={num_shards} disagrees with the partitioner's "
                f"{partitioner.num_shards} shards"
            )
        self._factory = _resolve_factory(name, shard_factory)
        self._partitioner = partitioner
        self._shards = [self._build_shard(i) for i in range(partitioner.num_shards)]
        self._lock = threading.RLock()
        #: Declared shard-key column per relational table.
        self._shard_keys: dict[str, str] = {}
        #: ``create_table`` keyword arguments per table (e.g. page_capacity),
        #: replayed when a rebalance builds the pending shard set.
        self._table_kwargs: dict[str, dict[str, Any]] = {}
        #: Declared secondary indexes per table (column -> kind), created on
        #: every shard and replayed onto pending shards during a rebalance.
        self._table_indexes: dict[str, dict[str, str]] = {}
        #: Offset keeping the aggregated data_version monotonic across
        #: cutovers (the new shard set starts from fresh counters).
        self._version_base = 0
        #: Per-scope offsets keeping scoped versions strictly increasing
        #: across cutovers (recalibrated in :meth:`cutover`).
        self._scope_bases: dict[str, int] = {}
        #: Per-scope "log marks": the scoped version recorded (under the
        #: facade lock) at each facade-log append for that scope.  A scoped
        #: version that moved past its mark means a mutation bumped the
        #: scope *without* logging — a write applied directly to a shard
        #: instance — and delta consumers must resync (see
        #: :meth:`pull_changes`).
        self._scope_log_marks: dict[str, int] = {}
        #: ``(shards, partitioner)`` being populated by an in-flight
        #: rebalance; writes are mirrored into it, reads never see it.
        self._pending: tuple[list[Engine], Partitioner] | None = None
        #: Durability hook invoked (under the facade lock) after a cutover
        #: rebases the counters; set by the durability manager so the new
        #: shard generation can be snapshotted and the manifest swapped.
        self._durability_cutover: Any = None
        #: Keys overwritten/deleted by dual-writes since ``begin_rebalance``.
        #: The snapshot copy must not clobber them: key/value puts are
        #: last-write-wins, so replaying a pre-snapshot value over a newer
        #: dual-written one would lose the update (or resurrect a delete).
        self._pending_overrides: set[str] = set()
        # Present the shards' contracts as this engine's own.
        template = self._shards[0]
        self.data_model = template.data_model
        self.concurrency = template.concurrency
        if self.data_model not in PARTITIONABLE_MODELS:
            # A sharded graph/tensor engine would silently answer from the
            # primary shard only — reject loudly instead.
            raise ConfigurationError(
                f"cannot shard a {self.data_model.value} engine: its reads "
                f"are not partitionable (see PARTITIONABLE_MODELS)"
            )

    def _build_shard(self, index: int) -> Engine:
        shard = self._factory(index)
        if not isinstance(shard, Engine):
            raise ConfigurationError(
                f"shard factory returned {type(shard).__name__}, not an Engine"
            )
        return shard

    # -- topology ---------------------------------------------------------------------

    @property
    def shards(self) -> list[Engine]:
        """The shard instances currently serving reads."""
        with self._lock:
            return list(self._shards)

    @property
    def num_shards(self) -> int:
        """Number of shards currently serving reads."""
        with self._lock:
            return len(self._shards)

    @property
    def primary(self) -> Engine:
        """The designated primary shard (non-partitionable operators run here)."""
        with self._lock:
            return self._shards[0]

    @property
    def partitioner(self) -> Partitioner:
        """The partitioner behind the current shard map."""
        with self._lock:
            return self._partitioner

    def topology(self) -> tuple[list[Engine], Partitioner]:
        """The current ``(shards, partitioner)`` pair, read atomically.

        Readers that route with a partitioner and then index into the shard
        list must take both from one call — fetching them separately can
        tear across a concurrent rebalance cutover.
        """
        with self._lock:
            return list(self._shards), self._partitioner

    def shard(self, index: int) -> Engine:
        """One shard by index."""
        with self._lock:
            return self._shards[index]

    def shard_for(self, key: Any) -> Engine:
        """The shard currently owning ``key``."""
        with self._lock:
            return self._shards[self._partitioner.shard_for(key)]

    def shard_key_for(self, table: str) -> str | None:
        """The declared shard-key column of a relational table (or ``None``)."""
        with self._lock:
            return self._shard_keys.get(table)

    @property
    def partitionable(self) -> bool:
        """Whether the executor may scatter-gather reads across the shards."""
        return self.data_model in PARTITIONABLE_MODELS

    # -- Engine contract --------------------------------------------------------------

    def capabilities(self) -> frozenset[Capability]:
        return self.primary.capabilities()

    @property
    def data_version(self) -> int:
        """Aggregate of every shard's mutation counter (plus cutover bumps).

        Any write to any shard changes the aggregate, so prepared programs
        pinning results read from this engine revalidate correctly.
        """
        with self._lock:
            return (self._version_base + self._data_version
                    + sum(shard.data_version for shard in self._shards))

    def data_version_for(self, scope: str | None) -> int:
        """Scoped mutation counter aggregated across the shard set.

        Combines the facade's own scoped counters (bumped when routed writes
        are relayed onto the facade changelog) with every shard's scoped
        counter — so even a write applied directly to a shard instance
        invalidates scoped readers.  A per-scope base, recalibrated at every
        cutover, keeps each scoped counter strictly increasing across a
        rebalance: the fresh shard set's counters start near zero, and
        without the base a scope could return to a previously observed value
        (ABA), letting a pinned snapshot replay data that misses writes.
        """
        if scope is None:
            return self.data_version
        with self._lock:
            return self._scope_bases.get(scope, 0) + self._scoped_raw(scope)

    def _scoped_raw(self, scope: str) -> int:
        """Scoped aggregate without the cutover base (caller holds the lock)."""
        return (self._unscoped_version
                + self._scope_versions.get(scope, 0)
                + sum(shard.data_version_for(scope) for shard in self._shards))

    def known_scopes(self) -> set[str]:
        """Scopes recorded by the facade or any current shard."""
        with self._lock:
            scopes = set(self._scope_versions)
            for shard in self._shards:
                scopes |= shard.known_scopes()
            return scopes

    # -- changelog relay ---------------------------------------------------------------

    def _staged_logs(self, shards: Sequence[Engine]
                     ) -> list[tuple[Engine, int]]:
        """Remember each shard log's position before a routed write."""
        return [(shard, shard.changelog.latest_seq) for shard in shards]

    class _RelayScope:
        """Handle a routed write uses to declare which shard logs it touches."""

        __slots__ = ("_engine", "staged")

        def __init__(self, engine: "ShardedEngine") -> None:
            self._engine = engine
            self.staged: list[tuple[Engine, int]] = []

        def stage(self, *shards: Engine) -> None:
            """Snapshot the given shards' log positions before writing them."""
            self.staged.extend(self._engine._staged_logs(shards))

    @contextlib.contextmanager
    def _routed_write(self):
        """The one place that owns the stage/write/relay/notify ordering.

        Usage: ``with self._routed_write() as relay: relay.stage(shard);
        shard.put(...)``.  The facade lock is held across staging, the
        write and the relay append (so ``snapshot_scan`` stays atomic with
        the log); listener notification happens after the lock is released
        (an eager view refresh may read this engine).  A body that raises
        mid-write still relays whatever its staged shards logged — those
        mutations really happened, and dropping their batches would leave
        orphaned version bumps the next routed write's log mark absorbs,
        silently diverging delta consumers.
        """
        scope = self._RelayScope(self)
        appended: list[DeltaBatch] = []
        try:
            with self._lock:
                try:
                    yield scope
                finally:
                    appended = self._relay_locked(
                        self._collect_relay(scope.staged))
        finally:
            self._notify_relayed(appended)

    def _collect_relay(self, staged: list[tuple[Engine, int]]) -> list[DeltaBatch]:
        """The batches a routed write appended to the staged shard logs.

        Must be called while the facade lock is still held (so no unrelated
        batch can land between the write and the collection).
        """
        batches: list[DeltaBatch] = []
        for shard, seq_before in staged:
            shard_batches, complete = shard.changelog.read_since(seq_before)
            if not complete:
                batches.append(DeltaBatch(seq=0, scope=None, gap=True))
                continue
            batches.extend(shard_batches)
        return batches

    def _relay_locked(self, batches: list[DeltaBatch]) -> list[DeltaBatch]:
        """Append shard-logged batches to the facade's cutover-stable log.

        Must run while the facade lock is still held: appending atomically
        with the shard mutation is what lets ``snapshot_scan`` hand out a
        consistent ``(data, log position)`` pair — a snapshot taken under
        the lock can never see a row whose batch has not landed yet.
        Listener delivery is deferred to :meth:`_notify_relayed`.
        """
        return [self._append_facade_batch(batch.scope,
                                          None if batch.gap else batch.entries)
                for batch in batches]

    def _append_facade_batch(self, scope: str | None, entries: Any,
                             op: tuple[str, Any] | None = None) -> DeltaBatch:
        """Append one batch to the facade log + update its log mark.

        Caller holds the facade lock; notification is deferred (the
        returned batch goes through :meth:`_notify_relayed` /
        ``changelog.notify_batch`` after the lock is released).  Only
        facade-level DDL sets ``op``: relayed data batches are replayed by
        the shards' own WALs, so the facade record needs no op payload.
        """
        batch = self.mark_data_changed(scope, entries, notify=False, op=op)
        if scope is not None:
            self._scope_log_marks[scope] = self.data_version_for(scope)
        return batch

    def _notify_relayed(self, appended: list[DeltaBatch]) -> None:
        """Deliver deferred notifications *outside* the facade lock.

        An eager view refresh subscribed to the facade log may read this
        engine from the listener; delivering under the lock could deadlock
        it against its own read path.
        """
        for batch in appended:
            self.changelog.notify_batch(batch)

    def snapshot_scan(self, table: str, columns: Sequence[str] | None = None
                      ) -> tuple[Table, int, int]:
        """An atomic ``(merged scan, changelog head, scoped version)`` triple.

        Writes and facade-log appends share the facade lock, so a snapshot
        taken under it is quiescent by construction: every row it contains
        is covered by a batch at or before the returned head, and every
        later batch describes data the snapshot does not contain.  The
        scoped version anchors the caller's off-log detection baseline.
        """
        with self._lock:
            return (self.scan(table, columns), self.changelog.latest_seq,
                    self.data_version_for(table_scope(table)))

    def pull_changes(self, cursor: int, scope: str | None
                     ) -> tuple[list[DeltaBatch], bool, int, int, int | None]:
        """An atomic changelog pull plus off-log evidence for ``scope``.

        Returns ``(batches, complete, head, scoped_version, log_mark)``.
        The mark is the scoped version recorded at the last facade-log
        append for the scope; a current version past the mark means the
        scope was mutated *without* a log entry (a direct shard write) and
        the caller's delta state cannot be trusted.  All five values are
        captured under the facade lock, so they are mutually consistent
        even against concurrent routed writes.

        Detection is probe-point based: a direct shard write followed by a
        routed write before any probe is absorbed into that write's mark
        (the mark records the then-current version, off-log bumps
        included).  Direct shard writes are off-API; their hard guarantee
        is engine-level invalidation via :meth:`data_version_for` — the
        changelog detects them best-effort, at the next quiet probe.
        """
        with self._lock:
            batches, complete, head = self.changelog.pull(cursor, scope)
            version = self.data_version_for(scope)
            mark = self._scope_log_marks.get(scope) if scope is not None else None
            return batches, complete, head, version, mark

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        with self._lock:
            description["shards"] = [shard.name for shard in self._shards]
            description["partitioner"] = self._partitioner.describe()
            description["shard_keys"] = dict(self._shard_keys)
            description["rebalancing"] = self._pending is not None
        return description

    # -- write routing: relational ----------------------------------------------------

    def create_table(self, name: str, schema: Schema, *, shard_key: str | None = None,
                     **kwargs: Any) -> None:
        """Create ``name`` on every shard, declaring its shard-key column.

        The shard key defaults to the schema's first column; rows route by
        the partitioner applied to that column's value.
        """
        key = shard_key if shard_key is not None else schema.names[0]
        if key not in schema:
            raise StorageError(f"shard key {key!r} is not a column of {name!r}")
        with self._lock:
            for shard in self._all_write_shards():
                shard.create_table(name, schema, **kwargs)
            self._shard_keys[name] = key
            self._table_kwargs[name] = dict(kwargs)
            batch = self._append_facade_batch(
                table_scope(name), (),
                op=("create_table", {"table": name, "shard_key": key,
                                     "kwargs": dict(kwargs)}))
        self.changelog.notify_batch(batch)

    def drop_table(self, name: str) -> None:
        """Drop ``name`` from every shard."""
        with self._lock:
            for shard in self._all_write_shards():
                shard.drop_table(name)
            self._shard_keys.pop(name, None)
            self._table_kwargs.pop(name, None)
            self._table_indexes.pop(name, None)
            batch = self._append_facade_batch(
                table_scope(name), None, op=("drop_table", {"table": name}))
        self.changelog.notify_batch(batch)

    def create_index(self, table: str, column: str, *, kind: str = "hash") -> None:
        """Create a secondary index on every shard (and any pending shards)."""
        with self._lock:
            for shard in self._all_write_shards():
                shard.create_index(table, column, kind=kind)
            self._table_indexes.setdefault(table, {})[column] = kind
            self.emit_durability_meta(("create_index", {"table": table,
                                                        "column": column,
                                                        "kind": kind}))

    def has_index(self, table: str, column: str) -> bool:
        """Whether every shard carries an index on ``table.column``."""
        with self._lock:
            return column in self._table_indexes.get(table, {})

    def insert(self, table: str, rows: Iterable[Sequence[Any]], **kwargs: Any) -> int:
        """Insert positional rows, routing each by the table's shard key."""
        with self._routed_write() as relay:
            key_index = self._shard_key_index(table)
            count = 0
            grouped: dict[int, list[tuple]] = {}
            for row in rows:
                row_t = tuple(row)
                grouped.setdefault(
                    self._partitioner.shard_for(row_t[key_index]), []).append(row_t)
                count += 1
            relay.stage(*(self._shards[i] for i in grouped))
            for shard_index, shard_rows in grouped.items():
                self._shards[shard_index].insert(table, shard_rows, **kwargs)
            self._mirror_relational_insert(table, key_index, grouped)
        return count

    def delete_rows(self, table: str, predicate: Any) -> list[tuple]:
        """Delete matching rows on every shard; returns the deleted rows.

        Refused while a rebalance is in flight: the snapshot copy could
        resurrect rows deleted from the pending shard set.
        """
        with self._routed_write() as relay:
            self._check_not_rebalancing("delete_rows")
            relay.stage(*self._shards)
            deleted: list[tuple] = []
            for shard in self._shards:
                deleted.extend(shard.delete_rows(table, predicate))
        return deleted

    def update_rows(self, table: str, predicate: Any,
                    updates: Mapping[str, Any]) -> list[tuple[tuple, tuple]]:
        """Update matching rows on every shard; returns ``(old, new)`` pairs.

        The shard key column cannot be updated (the row would need to move
        shards); refused while a rebalance is in flight.
        """
        with self._routed_write() as relay:
            self._check_not_rebalancing("update_rows")
            shard_key = self._shard_keys.get(table)
            if shard_key is not None and shard_key in updates:
                raise StorageError(
                    f"cannot update shard key column {shard_key!r} of {table!r}"
                )
            relay.stage(*self._shards)
            updated: list[tuple[tuple, tuple]] = []
            for shard in self._shards:
                updated.extend(shard.update_rows(table, predicate, updates))
        return updated

    def _check_not_rebalancing(self, operation: str) -> None:
        if self._pending is not None:
            raise ConfigurationError(
                f"engine {self.name!r} is rebalancing; {operation} is not "
                f"supported while dual-writes are active"
            )

    def insert_dicts(self, table: str, rows: Iterable[Mapping[str, Any]]) -> int:
        """Insert dictionary rows, routing each by the table's shard key."""
        names = self.table_schema(table).names
        return self.insert(table, (tuple(row.get(n) for n in names) for row in rows))

    def load_table(self, name: str, table: Table, *, shard_key: str | None = None,
                   **kwargs: Any) -> None:
        """Create ``name`` from an in-memory table and route its rows."""
        self.create_table(name, table.schema, shard_key=shard_key, **kwargs)
        self.insert(name, table.rows)

    def _shard_key_index(self, table: str) -> int:
        key = self._shard_keys.get(table)
        if key is None:
            raise StorageError(
                f"table {table!r} has no declared shard key (create it through "
                f"the ShardedEngine, not on individual shards)"
            )
        return self.table_schema(table).index_of(key)

    def _mirror_relational_insert(self, table: str, key_index: int,
                                  grouped: dict[int, list[tuple]]) -> None:
        if self._pending is None:
            return
        shards, partitioner = self._pending
        regrouped: dict[int, list[tuple]] = {}
        for shard_rows in grouped.values():
            for row in shard_rows:
                regrouped.setdefault(partitioner.shard_for(row[key_index]), []).append(row)
        for shard_index, shard_rows in regrouped.items():
            shards[shard_index].insert(table, shard_rows)

    # -- write routing: key/value -----------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Insert or overwrite ``key`` on its owning shard."""
        with self._routed_write() as relay:
            owner = self._shards[self._partitioner.shard_for(key)]
            relay.stage(owner)
            owner.put(key, value)
            if self._pending is not None:
                shards, partitioner = self._pending
                shards[partitioner.shard_for(key)].put(key, value)
                self._pending_overrides.add(key)

    def put_many(self, items: Mapping[str, Any]) -> None:
        """Insert or overwrite many keys."""
        for key, value in items.items():
            self.put(key, value)

    def delete(self, key: str) -> None:
        """Delete ``key`` from its owning shard."""
        with self._routed_write() as relay:
            owner = self._shards[self._partitioner.shard_for(key)]
            relay.stage(owner)
            owner.delete(key)
            if self._pending is not None:
                shards, partitioner = self._pending
                shards[partitioner.shard_for(key)].delete(key)
                self._pending_overrides.add(key)

    # -- write routing: timeseries ----------------------------------------------------

    def create_series(self, key: str, tags: dict[str, str] | None = None) -> Any:
        """Create (or return) a series on its owning shard."""
        with self._routed_write() as relay:
            owner = self._shards[self._partitioner.shard_for(key)]
            relay.stage(owner)
            series = owner.create_series(key, tags)
            if self._pending is not None:
                shards, partitioner = self._pending
                shards[partitioner.shard_for(key)].create_series(key, tags)
        return series

    def append(self, key: str, timestamp: float, value: float) -> None:
        """Append one point to the series' owning shard."""
        with self._routed_write() as relay:
            owner = self._shards[self._partitioner.shard_for(key)]
            relay.stage(owner)
            owner.append(key, timestamp, value)
            if self._pending is not None:
                shards, partitioner = self._pending
                shards[partitioner.shard_for(key)].append(key, timestamp, value)

    def append_many(self, key: str, points: Iterable[tuple[float, float]]) -> int:
        """Append many points to the series' owning shard."""
        materialized = list(points)
        with self._routed_write() as relay:
            owner = self._shards[self._partitioner.shard_for(key)]
            relay.stage(owner)
            count = owner.append_many(key, materialized)
            if self._pending is not None:
                shards, partitioner = self._pending
                shards[partitioner.shard_for(key)].append_many(key, materialized)
        return int(count)

    # -- write routing: text/document --------------------------------------------------

    def add_document(self, doc_id: str, text: str, **kwargs: Any) -> Any:
        """Index one document on its owning shard (routed by ``doc_id``)."""
        with self._routed_write() as relay:
            owner = self._shards[self._partitioner.shard_for(doc_id)]
            relay.stage(owner)
            result = owner.add_document(doc_id, text, **kwargs)
            if self._pending is not None:
                shards, partitioner = self._pending
                shards[partitioner.shard_for(doc_id)].add_document(
                    doc_id, text, **kwargs)
        return result

    # -- merged reads (direct native use; the executor scatter-gathers itself) --------

    def get(self, key: str, default: Any = None) -> Any:
        """Point lookup routed to the owning shard."""
        return self.shard_for(key).get(key, default)

    def multi_get(self, keys: list[str]) -> dict[str, Any]:
        """Point lookups grouped by owning shard."""
        out: dict[str, Any] = {}
        with self._lock:
            grouped = self._partitioner.shards_for(keys)
            shards = list(self._shards)
        for shard_index, shard_keys in grouped.items():
            out.update(shards[shard_index].multi_get(list(shard_keys)))
        return out

    def range(self, start: str | None = None,
              end: str | None = None) -> Iterator[tuple[str, Any]]:
        """Key-ordered merge of every shard's range scan."""
        parts = [list(shard.range(start, end)) for shard in self.shards]
        yield from heapq.merge(*parts, key=lambda pair: pair[0])

    def scan(self, *args: Any, **kwargs: Any) -> Any:
        """Merged full scan.

        For relational shards this is ``scan(table, columns)`` returning the
        concatenation of every shard's rows; for key/value shards it is the
        key-ordered merged iterator.
        """
        if self.data_model is DataModel.KEY_VALUE and not args and not kwargs:
            return self.range(None, None)
        parts = [shard.scan(*args, **kwargs) for shard in self.shards]
        return concat_tables(parts)

    def query_range(self, key: str, start: float | None = None,
                    end: float | None = None) -> Any:
        """Timeseries range read routed to the series' owning shard."""
        return self.shard_for(key).query_range(key, start, end)

    def summarize(self, key: str, start: float | None = None,
                  end: float | None = None) -> Any:
        """Timeseries summary routed to the series' owning shard."""
        return self.shard_for(key).summarize(key, start, end)

    def list_series(self, tag_filter: dict[str, str] | None = None) -> list[str]:
        """Union of every shard's series keys."""
        keys: set[str] = set()
        for shard in self.shards:
            keys.update(shard.list_series(tag_filter))
        return sorted(keys)

    def has_series(self, key: str) -> bool:
        """Whether the owning shard holds the series."""
        return bool(self.shard_for(key).has_series(key))

    # -- relational metadata (catalog + compiler hooks) --------------------------------

    def table_schema(self, name: str) -> Schema:
        """Schema of a sharded table (identical on every shard)."""
        return self.primary.table_schema(name)

    def has_table(self, name: str) -> bool:
        """Whether the sharded table exists."""
        return bool(self.primary.has_table(name))

    def list_tables(self) -> list[str]:
        """Names of sharded tables."""
        return self.primary.list_tables()

    def table_statistics(self, name: str) -> dict[str, Any]:
        """Aggregated statistics: total rows plus the per-shard breakdown."""
        per_shard = [shard.table_statistics(name) for shard in self.shards]
        merged = dict(per_shard[0])
        merged["rows"] = sum(int(stats.get("rows", 0)) for stats in per_shard)
        merged["shard_rows"] = [int(stats.get("rows", 0)) for stats in per_shard]
        merged["shards"] = len(per_shard)
        return merged

    def statistics(self) -> dict[str, Any]:
        """Aggregated engine statistics (duck-typed per substrate)."""
        per_shard = []
        for shard in self.shards:
            stats_fn = getattr(shard, "statistics", None)
            per_shard.append(stats_fn() if callable(stats_fn) else {})
        return {"shards": len(per_shard), "per_shard": per_shard}

    # -- rebalancing hooks (driven by repro.cluster.rebalance) -------------------------

    @property
    def rebalancing(self) -> bool:
        """Whether a rebalance is in flight (dual-writes active)."""
        with self._lock:
            return self._pending is not None

    # repro: allow(changelog-contract): topology bookkeeping; data deltas flow via dual-writes
    def begin_rebalance(self, partitioner: Partitioner) -> list[ShardPayload]:
        """Atomically snapshot current data and install the pending shard set.

        Returns the snapshot payloads the rebalancer must copy into the new
        shards.  From this moment every write lands in *both* shard maps, so
        the snapshot plus the dual-writes equals the full state at cutover.
        """
        with self._lock:
            if self._pending is not None:
                raise ConfigurationError(
                    f"engine {self.name!r} is already rebalancing"
                )
            new_shards = [self._build_shard(i) for i in range(partitioner.num_shards)]
            for table in self._shard_keys:
                schema = self.table_schema(table)
                kwargs = self._table_kwargs.get(table, {})
                for shard in new_shards:
                    shard.create_table(table, schema, **kwargs)
                    for column, kind in self._table_indexes.get(table, {}).items():
                        shard.create_index(table, column, kind=kind)
            payloads = self._extract_snapshot()
            self._pending = (new_shards, partitioner)
            self._pending_overrides = set()
            return payloads

    def pending_topology(self) -> tuple[list[Engine], Partitioner]:
        """The shard set and partitioner being populated by a rebalance."""
        with self._lock:
            if self._pending is None:
                raise ConfigurationError(f"engine {self.name!r} is not rebalancing")
            shards, partitioner = self._pending
            return list(shards), partitioner

    # repro: allow(changelog-contract): replays snapshot rows already emitted by the source
    def apply_payload(self, payload: ShardPayload, table: Table | None = None) -> int:
        """Load one (possibly migrated) snapshot payload into the pending shards.

        ``table`` is the payload's tabular data as received after migration;
        it defaults to the payload's own table.  Returns rows applied.
        """
        with self._lock:
            if self._pending is None:
                raise ConfigurationError(f"engine {self.name!r} is not rebalancing")
            shards, partitioner = self._pending
            if payload.kind == "relational_table":
                received = table if table is not None else payload.table
                assert received is not None
                key_index = received.schema.index_of(self._shard_keys[payload.name])
                grouped: dict[int, list[tuple]] = {}
                for row in received.rows:
                    grouped.setdefault(
                        partitioner.shard_for(row[key_index]), []).append(row)
                for shard_index, rows in grouped.items():
                    shards[shard_index].insert(payload.name, rows)
                return len(received)
            if payload.kind == "ts_series":
                received = table if table is not None else payload.table
                assert received is not None
                points = [(float(t), float(v)) for t, v in received.rows]
                owner = shards[partitioner.shard_for(payload.name)]
                series = owner.create_series(payload.name, payload.tags)
                if payload.tags:
                    # A dual-written append may have auto-created the series
                    # tagless before this payload arrived; create_series
                    # ignores tags for existing series, so merge explicitly.
                    series.tags.update(payload.tags)
                owner.append_many(payload.name, points)
                return len(points)
            if payload.kind == "kv_items":
                applied = 0
                for key, value in payload.items or []:
                    if key in self._pending_overrides:
                        continue  # a dual-write since the snapshot is newer
                    shards[partitioner.shard_for(key)].put(key, value)
                    applied += 1
                return applied
            raise ConfigurationError(f"unknown payload kind {payload.kind!r}")

    # repro: allow(changelog-contract): topology swap; versions re-based explicitly
    def cutover(self) -> list[Engine]:
        """Swap the pending shard map in; returns the retired shards.

        ``data_version`` stays strictly monotonic across the swap even though
        the new shards start from fresh counters.
        """
        with self._lock:
            if self._pending is None:
                raise ConfigurationError(f"engine {self.name!r} is not rebalancing")
            old_version = self.data_version
            # Include scopes whose only remaining record is a prior base:
            # a scope written before an earlier rebalance may exist on no
            # current shard, and dropping its base would let its version
            # regress to zero at the next cutover.
            scopes = self.known_scopes() | set(self._scope_bases)
            for shard in self._pending[0]:
                scopes |= shard.known_scopes()
            old_scoped = {scope: self.data_version_for(scope) for scope in scopes}
            retired = self._shards
            self._shards, self._partitioner = self._pending
            self._pending = None
            self._pending_overrides = set()
            new_sum = sum(shard.data_version for shard in self._shards)
            self._version_base = old_version + 1 - self._data_version - new_sum
            # Re-base every known scope past its pre-cutover value: the new
            # shard set's scoped counters are unrelated to the old set's, so
            # without this a scope could coincidentally return to an earlier
            # value and falsely re-validate a pinned snapshot.
            self._scope_bases = {
                scope: old_scoped[scope] + 1 - self._scoped_raw(scope)
                for scope in scopes
            }
            # The cutover moved every scoped version without logging (it is
            # not a data change); refresh the log marks so delta consumers
            # do not mistake the bump for an off-log write and resync.
            self._scope_log_marks = {
                scope: self.data_version_for(scope)
                for scope in scopes | set(self._scope_log_marks)
            }
            if self._durability_cutover is not None:
                # Still under the facade lock: the new generation must be
                # snapshotted and the manifest swapped before any further
                # write can land on the new shards.
                self._durability_cutover(self, retired)
            return retired

    # repro: allow(changelog-contract): discards pending topology; facade data untouched
    def abort_rebalance(self) -> None:
        """Discard the pending shard set (writes stop being mirrored)."""
        with self._lock:
            self._pending = None
            self._pending_overrides = set()

    def _extract_snapshot(self) -> list[ShardPayload]:
        payloads: list[ShardPayload] = []
        for shard in self._shards:
            if self.data_model is DataModel.RELATIONAL:
                for table in self._shard_keys:
                    payloads.append(ShardPayload(
                        kind="relational_table", name=table,
                        source_shard=shard.name, table=shard.scan(table)))
            elif self.data_model is DataModel.TIMESERIES:
                for key in shard.list_series():
                    series = shard.series(key)
                    rows = [(point.timestamp, point.value) for point in series]
                    payloads.append(ShardPayload(
                        kind="ts_series", name=key, source_shard=shard.name,
                        table=Table(_TS_PAYLOAD_SCHEMA, rows),
                        tags=dict(series.tags)))
            elif self.data_model is DataModel.KEY_VALUE:
                payloads.append(ShardPayload(
                    kind="kv_items", name=shard.name, source_shard=shard.name,
                    items=list(shard.scan())))
            else:
                raise ConfigurationError(
                    f"cannot rebalance a {self.data_model.value} sharded engine"
                )
        # Empty series still exist (and carry tags); only rowless table/kv
        # payloads are pure noise.
        return [payload for payload in payloads
                if payload.rows or payload.kind == "ts_series"]

    def _all_write_shards(self) -> list[Engine]:
        shards = list(self._shards)
        if self._pending is not None:
            shards.extend(self._pending[0])
        return shards

    def __repr__(self) -> str:
        return (f"ShardedEngine(name={self.name!r}, shards={self.num_shards}, "
                f"model={self.data_model.value})")


def concat_tables(parts: Sequence[Table]) -> Table:
    """Union-all of per-shard tables, tolerant of empty parts.

    Falls back to a dict-level rebuild when inferred schemas disagree (e.g.
    one shard inferred INT where another saw FLOAT).
    """
    if not parts:
        raise ConfigurationError("cannot concatenate zero shard results")
    non_empty = [part for part in parts if len(part)]
    if not non_empty:
        return parts[0]
    base = non_empty[0]
    try:
        result = base
        for part in non_empty[1:]:
            result = result.concat(part)
        return result
    except Exception:  # noqa: BLE001 - schema drift between shards
        rows: list[dict[str, Any]] = []
        for part in non_empty:
            rows.extend(part.to_dicts())
        return Table.from_dicts(rows)
