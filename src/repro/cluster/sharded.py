"""ShardedEngine: horizontal partitioning of any substrate engine.

A :class:`ShardedEngine` wraps ``N`` instances of one substrate engine type
behind a pluggable :class:`~repro.cluster.partition.Partitioner` and presents
itself to the middleware as a single :class:`~repro.stores.base.Engine`: it
registers in the catalog, declares its shards' data model, capabilities and
concurrency contract, and aggregates the per-shard ``data_version`` counters
so a write to *any* shard invalidates every pinned scan snapshot that read
this engine.

Writes route through the partitioner:

* relational rows route on a **declared shard key** column (per table),
* key/value puts route on the key,
* timeseries appends route on the series key (a series lives whole on one
  shard, which keeps window/summary reads shard-local).

Reads are scatter-gathered by the executor (see
:mod:`repro.cluster.scatter`); the engine itself also offers merged
convenience reads for direct native use.

Online rebalancing (:mod:`repro.cluster.rebalance`) uses the three-phase
hooks at the bottom of the class: :meth:`begin_rebalance` atomically
snapshots the current data and installs a *pending* shard set that every
subsequent write is mirrored into (dual-write), while reads keep answering
from the old shard map; :meth:`cutover` swaps the maps atomically and keeps
``data_version`` monotonic; :meth:`abort_rebalance` discards the pending set.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.cluster.partition import HashPartitioner, Partitioner
from repro.datamodel.schema import Column, DataType, Schema
from repro.datamodel.table import Table
from repro.exceptions import ConfigurationError, StorageError
from repro.stores.base import Capability, DataModel, Engine

#: Data models the scatter-gather executor can partition correctly.  Graph
#: engines are excluded: paths and neighbourhoods cross shard boundaries, so
#: a sharded graph engine would silently drop cross-shard edges.
PARTITIONABLE_MODELS = frozenset({
    DataModel.RELATIONAL, DataModel.KEY_VALUE, DataModel.TIMESERIES,
    DataModel.DOCUMENT,
})

ShardFactory = Callable[[int], Engine]


@dataclass
class ShardPayload:
    """One unit of data extracted from a shard during a rebalance.

    ``table`` payloads travel through the
    :class:`~repro.middleware.migration.DataMigrator` (so the rebalance is
    charged realistic serialization + transfer costs); ``items`` payloads
    (arbitrary key/value objects) move by reference, mirroring how the
    executor treats non-tabular migrations.
    """

    kind: str                      # "relational_table" | "kv_items" | "ts_series"
    name: str                      # table name, series key, or shard name
    source_shard: str
    table: Table | None = None
    items: list[tuple[str, Any]] | None = None
    #: Series tags (timeseries payloads only), recreated at apply time.
    tags: dict[str, str] | None = None

    @property
    def rows(self) -> int:
        """Number of rows/entries this payload carries."""
        if self.table is not None:
            return len(self.table)
        return len(self.items or [])


_TS_PAYLOAD_SCHEMA = Schema([Column("timestamp", DataType.FLOAT),
                             Column("value", DataType.FLOAT)])


def _resolve_factory(name: str, shard_factory: ShardFactory | type) -> ShardFactory:
    if isinstance(shard_factory, type):
        if not issubclass(shard_factory, Engine):
            raise ConfigurationError(
                f"shard factory class {shard_factory.__name__} is not an Engine"
            )
        return lambda index: shard_factory(f"{name}-s{index}")
    return shard_factory


class ShardedEngine(Engine):
    """N substrate engine instances behind one partitioned facade."""

    def __init__(self, name: str, shard_factory: ShardFactory | type,
                 num_shards: int | None = None, *,
                 partitioner: Partitioner | None = None) -> None:
        super().__init__(name)
        if partitioner is None:
            if num_shards is None:
                raise ConfigurationError(
                    "ShardedEngine needs num_shards or an explicit partitioner"
                )
            partitioner = HashPartitioner(num_shards)
        elif num_shards is not None and num_shards != partitioner.num_shards:
            raise ConfigurationError(
                f"num_shards={num_shards} disagrees with the partitioner's "
                f"{partitioner.num_shards} shards"
            )
        self._factory = _resolve_factory(name, shard_factory)
        self._partitioner = partitioner
        self._shards = [self._build_shard(i) for i in range(partitioner.num_shards)]
        self._lock = threading.RLock()
        #: Declared shard-key column per relational table.
        self._shard_keys: dict[str, str] = {}
        #: ``create_table`` keyword arguments per table (e.g. page_capacity),
        #: replayed when a rebalance builds the pending shard set.
        self._table_kwargs: dict[str, dict[str, Any]] = {}
        #: Declared secondary indexes per table (column -> kind), created on
        #: every shard and replayed onto pending shards during a rebalance.
        self._table_indexes: dict[str, dict[str, str]] = {}
        #: Offset keeping the aggregated data_version monotonic across
        #: cutovers (the new shard set starts from fresh counters).
        self._version_base = 0
        #: ``(shards, partitioner)`` being populated by an in-flight
        #: rebalance; writes are mirrored into it, reads never see it.
        self._pending: tuple[list[Engine], Partitioner] | None = None
        #: Keys overwritten/deleted by dual-writes since ``begin_rebalance``.
        #: The snapshot copy must not clobber them: key/value puts are
        #: last-write-wins, so replaying a pre-snapshot value over a newer
        #: dual-written one would lose the update (or resurrect a delete).
        self._pending_overrides: set[str] = set()
        # Present the shards' contracts as this engine's own.
        template = self._shards[0]
        self.data_model = template.data_model
        self.concurrency = template.concurrency
        if self.data_model not in PARTITIONABLE_MODELS:
            # A sharded graph/tensor engine would silently answer from the
            # primary shard only — reject loudly instead.
            raise ConfigurationError(
                f"cannot shard a {self.data_model.value} engine: its reads "
                f"are not partitionable (see PARTITIONABLE_MODELS)"
            )

    def _build_shard(self, index: int) -> Engine:
        shard = self._factory(index)
        if not isinstance(shard, Engine):
            raise ConfigurationError(
                f"shard factory returned {type(shard).__name__}, not an Engine"
            )
        return shard

    # -- topology ---------------------------------------------------------------------

    @property
    def shards(self) -> list[Engine]:
        """The shard instances currently serving reads."""
        with self._lock:
            return list(self._shards)

    @property
    def num_shards(self) -> int:
        """Number of shards currently serving reads."""
        with self._lock:
            return len(self._shards)

    @property
    def primary(self) -> Engine:
        """The designated primary shard (non-partitionable operators run here)."""
        with self._lock:
            return self._shards[0]

    @property
    def partitioner(self) -> Partitioner:
        """The partitioner behind the current shard map."""
        with self._lock:
            return self._partitioner

    def topology(self) -> tuple[list[Engine], Partitioner]:
        """The current ``(shards, partitioner)`` pair, read atomically.

        Readers that route with a partitioner and then index into the shard
        list must take both from one call — fetching them separately can
        tear across a concurrent rebalance cutover.
        """
        with self._lock:
            return list(self._shards), self._partitioner

    def shard(self, index: int) -> Engine:
        """One shard by index."""
        with self._lock:
            return self._shards[index]

    def shard_for(self, key: Any) -> Engine:
        """The shard currently owning ``key``."""
        with self._lock:
            return self._shards[self._partitioner.shard_for(key)]

    def shard_key_for(self, table: str) -> str | None:
        """The declared shard-key column of a relational table (or ``None``)."""
        with self._lock:
            return self._shard_keys.get(table)

    @property
    def partitionable(self) -> bool:
        """Whether the executor may scatter-gather reads across the shards."""
        return self.data_model in PARTITIONABLE_MODELS

    # -- Engine contract --------------------------------------------------------------

    def capabilities(self) -> frozenset[Capability]:
        return self.primary.capabilities()

    @property
    def data_version(self) -> int:
        """Aggregate of every shard's mutation counter (plus cutover bumps).

        Any write to any shard changes the aggregate, so prepared programs
        pinning results read from this engine revalidate correctly.
        """
        with self._lock:
            return (self._version_base + self._data_version
                    + sum(shard.data_version for shard in self._shards))

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        with self._lock:
            description["shards"] = [shard.name for shard in self._shards]
            description["partitioner"] = self._partitioner.describe()
            description["shard_keys"] = dict(self._shard_keys)
            description["rebalancing"] = self._pending is not None
        return description

    # -- write routing: relational ----------------------------------------------------

    def create_table(self, name: str, schema: Schema, *, shard_key: str | None = None,
                     **kwargs: Any) -> None:
        """Create ``name`` on every shard, declaring its shard-key column.

        The shard key defaults to the schema's first column; rows route by
        the partitioner applied to that column's value.
        """
        key = shard_key if shard_key is not None else schema.names[0]
        if key not in schema:
            raise StorageError(f"shard key {key!r} is not a column of {name!r}")
        with self._lock:
            for shard in self._all_write_shards():
                shard.create_table(name, schema, **kwargs)
            self._shard_keys[name] = key
            self._table_kwargs[name] = dict(kwargs)

    def drop_table(self, name: str) -> None:
        """Drop ``name`` from every shard."""
        with self._lock:
            for shard in self._all_write_shards():
                shard.drop_table(name)
            self._shard_keys.pop(name, None)
            self._table_kwargs.pop(name, None)
            self._table_indexes.pop(name, None)

    def create_index(self, table: str, column: str, *, kind: str = "hash") -> None:
        """Create a secondary index on every shard (and any pending shards)."""
        with self._lock:
            for shard in self._all_write_shards():
                shard.create_index(table, column, kind=kind)
            self._table_indexes.setdefault(table, {})[column] = kind

    def has_index(self, table: str, column: str) -> bool:
        """Whether every shard carries an index on ``table.column``."""
        with self._lock:
            return column in self._table_indexes.get(table, {})

    def insert(self, table: str, rows: Iterable[Sequence[Any]], **kwargs: Any) -> int:
        """Insert positional rows, routing each by the table's shard key."""
        with self._lock:
            key_index = self._shard_key_index(table)
            count = 0
            grouped: dict[int, list[tuple]] = {}
            for row in rows:
                row_t = tuple(row)
                grouped.setdefault(
                    self._partitioner.shard_for(row_t[key_index]), []).append(row_t)
                count += 1
            for shard_index, shard_rows in grouped.items():
                self._shards[shard_index].insert(table, shard_rows, **kwargs)
            self._mirror_relational_insert(table, key_index, grouped)
        return count

    def insert_dicts(self, table: str, rows: Iterable[Mapping[str, Any]]) -> int:
        """Insert dictionary rows, routing each by the table's shard key."""
        names = self.table_schema(table).names
        return self.insert(table, (tuple(row.get(n) for n in names) for row in rows))

    def load_table(self, name: str, table: Table, *, shard_key: str | None = None,
                   **kwargs: Any) -> None:
        """Create ``name`` from an in-memory table and route its rows."""
        self.create_table(name, table.schema, shard_key=shard_key, **kwargs)
        self.insert(name, table.rows)

    def _shard_key_index(self, table: str) -> int:
        key = self._shard_keys.get(table)
        if key is None:
            raise StorageError(
                f"table {table!r} has no declared shard key (create it through "
                f"the ShardedEngine, not on individual shards)"
            )
        return self.table_schema(table).index_of(key)

    def _mirror_relational_insert(self, table: str, key_index: int,
                                  grouped: dict[int, list[tuple]]) -> None:
        if self._pending is None:
            return
        shards, partitioner = self._pending
        regrouped: dict[int, list[tuple]] = {}
        for shard_rows in grouped.values():
            for row in shard_rows:
                regrouped.setdefault(partitioner.shard_for(row[key_index]), []).append(row)
        for shard_index, shard_rows in regrouped.items():
            shards[shard_index].insert(table, shard_rows)

    # -- write routing: key/value -----------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Insert or overwrite ``key`` on its owning shard."""
        with self._lock:
            self._shards[self._partitioner.shard_for(key)].put(key, value)
            if self._pending is not None:
                shards, partitioner = self._pending
                shards[partitioner.shard_for(key)].put(key, value)
                self._pending_overrides.add(key)

    def put_many(self, items: Mapping[str, Any]) -> None:
        """Insert or overwrite many keys."""
        for key, value in items.items():
            self.put(key, value)

    def delete(self, key: str) -> None:
        """Delete ``key`` from its owning shard."""
        with self._lock:
            self._shards[self._partitioner.shard_for(key)].delete(key)
            if self._pending is not None:
                shards, partitioner = self._pending
                shards[partitioner.shard_for(key)].delete(key)
                self._pending_overrides.add(key)

    # -- write routing: timeseries ----------------------------------------------------

    def create_series(self, key: str, tags: dict[str, str] | None = None) -> Any:
        """Create (or return) a series on its owning shard."""
        with self._lock:
            series = self._shards[self._partitioner.shard_for(key)].create_series(key, tags)
            if self._pending is not None:
                shards, partitioner = self._pending
                shards[partitioner.shard_for(key)].create_series(key, tags)
        return series

    def append(self, key: str, timestamp: float, value: float) -> None:
        """Append one point to the series' owning shard."""
        with self._lock:
            self._shards[self._partitioner.shard_for(key)].append(key, timestamp, value)
            if self._pending is not None:
                shards, partitioner = self._pending
                shards[partitioner.shard_for(key)].append(key, timestamp, value)

    def append_many(self, key: str, points: Iterable[tuple[float, float]]) -> int:
        """Append many points to the series' owning shard."""
        materialized = list(points)
        with self._lock:
            count = self._shards[self._partitioner.shard_for(key)].append_many(
                key, materialized)
            if self._pending is not None:
                shards, partitioner = self._pending
                shards[partitioner.shard_for(key)].append_many(key, materialized)
        return int(count)

    # -- write routing: text/document --------------------------------------------------

    def add_document(self, doc_id: str, text: str, **kwargs: Any) -> Any:
        """Index one document on its owning shard (routed by ``doc_id``)."""
        with self._lock:
            result = self._shards[self._partitioner.shard_for(doc_id)].add_document(
                doc_id, text, **kwargs)
            if self._pending is not None:
                shards, partitioner = self._pending
                shards[partitioner.shard_for(doc_id)].add_document(
                    doc_id, text, **kwargs)
        return result

    # -- merged reads (direct native use; the executor scatter-gathers itself) --------

    def get(self, key: str, default: Any = None) -> Any:
        """Point lookup routed to the owning shard."""
        return self.shard_for(key).get(key, default)

    def multi_get(self, keys: list[str]) -> dict[str, Any]:
        """Point lookups grouped by owning shard."""
        out: dict[str, Any] = {}
        with self._lock:
            grouped = self._partitioner.shards_for(keys)
            shards = list(self._shards)
        for shard_index, shard_keys in grouped.items():
            out.update(shards[shard_index].multi_get(list(shard_keys)))
        return out

    def range(self, start: str | None = None,
              end: str | None = None) -> Iterator[tuple[str, Any]]:
        """Key-ordered merge of every shard's range scan."""
        parts = [list(shard.range(start, end)) for shard in self.shards]
        yield from heapq.merge(*parts, key=lambda pair: pair[0])

    def scan(self, *args: Any, **kwargs: Any) -> Any:
        """Merged full scan.

        For relational shards this is ``scan(table, columns)`` returning the
        concatenation of every shard's rows; for key/value shards it is the
        key-ordered merged iterator.
        """
        if self.data_model is DataModel.KEY_VALUE and not args and not kwargs:
            return self.range(None, None)
        parts = [shard.scan(*args, **kwargs) for shard in self.shards]
        return concat_tables(parts)

    def query_range(self, key: str, start: float | None = None,
                    end: float | None = None) -> Any:
        """Timeseries range read routed to the series' owning shard."""
        return self.shard_for(key).query_range(key, start, end)

    def summarize(self, key: str, start: float | None = None,
                  end: float | None = None) -> Any:
        """Timeseries summary routed to the series' owning shard."""
        return self.shard_for(key).summarize(key, start, end)

    def list_series(self, tag_filter: dict[str, str] | None = None) -> list[str]:
        """Union of every shard's series keys."""
        keys: set[str] = set()
        for shard in self.shards:
            keys.update(shard.list_series(tag_filter))
        return sorted(keys)

    def has_series(self, key: str) -> bool:
        """Whether the owning shard holds the series."""
        return bool(self.shard_for(key).has_series(key))

    # -- relational metadata (catalog + compiler hooks) --------------------------------

    def table_schema(self, name: str) -> Schema:
        """Schema of a sharded table (identical on every shard)."""
        return self.primary.table_schema(name)

    def has_table(self, name: str) -> bool:
        """Whether the sharded table exists."""
        return bool(self.primary.has_table(name))

    def list_tables(self) -> list[str]:
        """Names of sharded tables."""
        return self.primary.list_tables()

    def table_statistics(self, name: str) -> dict[str, Any]:
        """Aggregated statistics: total rows plus the per-shard breakdown."""
        per_shard = [shard.table_statistics(name) for shard in self.shards]
        merged = dict(per_shard[0])
        merged["rows"] = sum(int(stats.get("rows", 0)) for stats in per_shard)
        merged["shard_rows"] = [int(stats.get("rows", 0)) for stats in per_shard]
        merged["shards"] = len(per_shard)
        return merged

    def statistics(self) -> dict[str, Any]:
        """Aggregated engine statistics (duck-typed per substrate)."""
        per_shard = []
        for shard in self.shards:
            stats_fn = getattr(shard, "statistics", None)
            per_shard.append(stats_fn() if callable(stats_fn) else {})
        return {"shards": len(per_shard), "per_shard": per_shard}

    # -- rebalancing hooks (driven by repro.cluster.rebalance) -------------------------

    @property
    def rebalancing(self) -> bool:
        """Whether a rebalance is in flight (dual-writes active)."""
        with self._lock:
            return self._pending is not None

    def begin_rebalance(self, partitioner: Partitioner) -> list[ShardPayload]:
        """Atomically snapshot current data and install the pending shard set.

        Returns the snapshot payloads the rebalancer must copy into the new
        shards.  From this moment every write lands in *both* shard maps, so
        the snapshot plus the dual-writes equals the full state at cutover.
        """
        with self._lock:
            if self._pending is not None:
                raise ConfigurationError(
                    f"engine {self.name!r} is already rebalancing"
                )
            new_shards = [self._build_shard(i) for i in range(partitioner.num_shards)]
            for table in self._shard_keys:
                schema = self.table_schema(table)
                kwargs = self._table_kwargs.get(table, {})
                for shard in new_shards:
                    shard.create_table(table, schema, **kwargs)
                    for column, kind in self._table_indexes.get(table, {}).items():
                        shard.create_index(table, column, kind=kind)
            payloads = self._extract_snapshot()
            self._pending = (new_shards, partitioner)
            self._pending_overrides = set()
            return payloads

    def pending_topology(self) -> tuple[list[Engine], Partitioner]:
        """The shard set and partitioner being populated by a rebalance."""
        with self._lock:
            if self._pending is None:
                raise ConfigurationError(f"engine {self.name!r} is not rebalancing")
            shards, partitioner = self._pending
            return list(shards), partitioner

    def apply_payload(self, payload: ShardPayload, table: Table | None = None) -> int:
        """Load one (possibly migrated) snapshot payload into the pending shards.

        ``table`` is the payload's tabular data as received after migration;
        it defaults to the payload's own table.  Returns rows applied.
        """
        with self._lock:
            if self._pending is None:
                raise ConfigurationError(f"engine {self.name!r} is not rebalancing")
            shards, partitioner = self._pending
            if payload.kind == "relational_table":
                received = table if table is not None else payload.table
                assert received is not None
                key_index = received.schema.index_of(self._shard_keys[payload.name])
                grouped: dict[int, list[tuple]] = {}
                for row in received.rows:
                    grouped.setdefault(
                        partitioner.shard_for(row[key_index]), []).append(row)
                for shard_index, rows in grouped.items():
                    shards[shard_index].insert(payload.name, rows)
                return len(received)
            if payload.kind == "ts_series":
                received = table if table is not None else payload.table
                assert received is not None
                points = [(float(t), float(v)) for t, v in received.rows]
                owner = shards[partitioner.shard_for(payload.name)]
                series = owner.create_series(payload.name, payload.tags)
                if payload.tags:
                    # A dual-written append may have auto-created the series
                    # tagless before this payload arrived; create_series
                    # ignores tags for existing series, so merge explicitly.
                    series.tags.update(payload.tags)
                owner.append_many(payload.name, points)
                return len(points)
            if payload.kind == "kv_items":
                applied = 0
                for key, value in payload.items or []:
                    if key in self._pending_overrides:
                        continue  # a dual-write since the snapshot is newer
                    shards[partitioner.shard_for(key)].put(key, value)
                    applied += 1
                return applied
            raise ConfigurationError(f"unknown payload kind {payload.kind!r}")

    def cutover(self) -> list[Engine]:
        """Swap the pending shard map in; returns the retired shards.

        ``data_version`` stays strictly monotonic across the swap even though
        the new shards start from fresh counters.
        """
        with self._lock:
            if self._pending is None:
                raise ConfigurationError(f"engine {self.name!r} is not rebalancing")
            old_version = self.data_version
            retired = self._shards
            self._shards, self._partitioner = self._pending
            self._pending = None
            self._pending_overrides = set()
            new_sum = sum(shard.data_version for shard in self._shards)
            self._version_base = old_version + 1 - self._data_version - new_sum
            return retired

    def abort_rebalance(self) -> None:
        """Discard the pending shard set (writes stop being mirrored)."""
        with self._lock:
            self._pending = None
            self._pending_overrides = set()

    def _extract_snapshot(self) -> list[ShardPayload]:
        payloads: list[ShardPayload] = []
        for shard in self._shards:
            if self.data_model is DataModel.RELATIONAL:
                for table in self._shard_keys:
                    payloads.append(ShardPayload(
                        kind="relational_table", name=table,
                        source_shard=shard.name, table=shard.scan(table)))
            elif self.data_model is DataModel.TIMESERIES:
                for key in shard.list_series():
                    series = shard.series(key)
                    rows = [(point.timestamp, point.value) for point in series]
                    payloads.append(ShardPayload(
                        kind="ts_series", name=key, source_shard=shard.name,
                        table=Table(_TS_PAYLOAD_SCHEMA, rows),
                        tags=dict(series.tags)))
            elif self.data_model is DataModel.KEY_VALUE:
                payloads.append(ShardPayload(
                    kind="kv_items", name=shard.name, source_shard=shard.name,
                    items=list(shard.scan())))
            else:
                raise ConfigurationError(
                    f"cannot rebalance a {self.data_model.value} sharded engine"
                )
        # Empty series still exist (and carry tags); only rowless table/kv
        # payloads are pure noise.
        return [payload for payload in payloads
                if payload.rows or payload.kind == "ts_series"]

    def _all_write_shards(self) -> list[Engine]:
        shards = list(self._shards)
        if self._pending is not None:
            shards.extend(self._pending[0])
        return shards

    def __repr__(self) -> str:
        return (f"ShardedEngine(name={self.name!r}, shards={self.num_shards}, "
                f"model={self.data_model.value})")


def concat_tables(parts: Sequence[Table]) -> Table:
    """Union-all of per-shard tables, tolerant of empty parts.

    Falls back to a dict-level rebuild when inferred schemas disagree (e.g.
    one shard inferred INT where another saw FLOAT).
    """
    if not parts:
        raise ConfigurationError("cannot concatenate zero shard results")
    non_empty = [part for part in parts if len(part)]
    if not non_empty:
        return parts[0]
    base = non_empty[0]
    try:
        result = base
        for part in non_empty[1:]:
            result = result.concat(part)
        return result
    except Exception:  # noqa: BLE001 - schema drift between shards
        rows: list[dict[str, Any]] = []
        for part in non_empty:
            rows.extend(part.to_dicts())
        return Table.from_dicts(rows)
