"""Online shard rebalancing: grow (or shrink) a sharded engine's partition map.

The rebalancer drives the three-phase protocol the
:class:`~repro.cluster.sharded.ShardedEngine` exposes:

1. **Snapshot + dual-write** — :meth:`ShardedEngine.begin_rebalance`
   atomically extracts the current data and installs the new (pending)
   shard set; every write from that moment is mirrored into both maps while
   reads keep answering from the old map.
2. **Copy** — each snapshot payload is shipped through the
   :class:`~repro.middleware.migration.DataMigrator` (tabular payloads are
   really serialized, transferred over the simulated network and parsed
   back, charging the same costs any cross-engine migration pays) and loaded
   into the new shards under the new partitioner.
3. **Cutover** — the new map is swapped in atomically;
   ``data_version`` bumps monotonically, so every pinned plan-cache snapshot
   that read this engine revalidates on its next run.

On any copy failure the pending map is discarded and the engine keeps
serving the old map unharmed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cluster.partition import HashPartitioner, Partitioner
from repro.cluster.sharded import ShardedEngine
from repro.middleware.migration import DataMigrator
from repro.middleware.migration.migrator import MigrationReport


@dataclass
class RebalanceReport:
    """Accounting for one completed rebalance."""

    engine: str
    old_shards: int
    new_shards: int
    payloads: int
    moved_rows: int
    migrated_bytes: int
    migration_time_s: float
    duration_s: float
    migrations: list[MigrationReport] = field(default_factory=list)

    def summary(self) -> dict[str, float | int | str]:
        """Compact dictionary for logs and benchmarks."""
        return {
            "engine": self.engine,
            "old_shards": self.old_shards,
            "new_shards": self.new_shards,
            "payloads": self.payloads,
            "moved_rows": self.moved_rows,
            "migrated_bytes": self.migrated_bytes,
            "migration_time_s": self.migration_time_s,
            "duration_s": self.duration_s,
        }


class ShardRebalancer:
    """Moves a sharded engine's data onto a new partition map, online."""

    def __init__(self, engine: ShardedEngine, *,
                 migrator: DataMigrator | None = None,
                 strategy: str | None = None) -> None:
        self.engine = engine
        self.migrator = migrator if migrator is not None else DataMigrator()
        self.strategy = strategy

    def rebalance(self, num_shards: int | None = None, *,
                  partitioner: Partitioner | None = None) -> RebalanceReport:
        """Repartition onto ``num_shards`` (or an explicit partitioner).

        Queries keep answering against the old shard map for the whole copy
        phase; the swap happens only at cutover.
        """
        if partitioner is None:
            if num_shards is None:
                raise ValueError("rebalance needs num_shards or a partitioner")
            partitioner = HashPartitioner(num_shards)
        start = time.perf_counter()
        old_shards = self.engine.num_shards
        payloads = self.engine.begin_rebalance(partitioner)
        moved_rows = 0
        migrations: list[MigrationReport] = []
        try:
            for payload in payloads:
                received = None
                if payload.table is not None and len(payload.table):
                    received, report = self.migrator.migrate(
                        payload.table,
                        source=payload.source_shard,
                        target=f"{self.engine.name}[rebalance]",
                        strategy=self.strategy,
                    )
                    migrations.append(report)
                moved_rows += self.engine.apply_payload(payload, received)
            self.engine.cutover()
        except BaseException:
            self.engine.abort_rebalance()
            raise
        return RebalanceReport(
            engine=self.engine.name,
            old_shards=old_shards,
            new_shards=partitioner.num_shards,
            payloads=len(payloads),
            moved_rows=moved_rows,
            migrated_bytes=sum(r.payload_bytes for r in migrations),
            migration_time_s=sum(r.total_s for r in migrations),
            duration_s=time.perf_counter() - start,
            migrations=migrations,
        )

    def split(self, factor: int = 2) -> RebalanceReport:
        """Grow the shard count by ``factor`` (hash maps only)."""
        if factor < 1:
            raise ValueError("split factor must be at least 1")
        return self.rebalance(self.engine.num_shards * factor)
