"""Partitioners: deciding which shard owns a key.

A :class:`Partitioner` maps a shard-key value to a shard index.  Two
concrete strategies are provided:

* :class:`HashPartitioner` — stable CRC32 hashing of the key's canonical
  string form.  Deterministic across processes and Python runs (unlike the
  builtin ``hash``, which is salted), so shard placement survives restarts
  and is reproducible in tests.
* :class:`RangePartitioner` — ordered split points; shard ``i`` owns keys in
  ``[boundaries[i-1], boundaries[i])``.  Preserves key locality, which keeps
  range scans shard-local, at the price of needing balanced boundaries.

Partitioners are immutable; rebalancing installs a *new* partitioner next to
a new shard set and cuts over atomically (see :mod:`repro.cluster.rebalance`).
"""

from __future__ import annotations

import abc
import bisect
import zlib
from typing import Any, Sequence

from repro.exceptions import ConfigurationError


def canonical_key(key: Any) -> str:
    """A deterministic string form of a shard-key value.

    Integers and their float equivalents collapse to the same form so a key
    read back as ``2.0`` routes like the ``2`` it was written as.
    """
    if isinstance(key, bool):
        return f"b:{key}"
    if isinstance(key, float) and key.is_integer():
        return f"i:{int(key)}"
    if isinstance(key, int):
        return f"i:{key}"
    if isinstance(key, str):
        return f"s:{key}"
    return f"{type(key).__name__}:{key!r}"


class Partitioner(abc.ABC):
    """Maps shard-key values onto ``num_shards`` shard indexes."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigurationError("a partitioner needs at least one shard")
        self.num_shards = num_shards

    @abc.abstractmethod
    def shard_for(self, key: Any) -> int:
        """The index of the shard owning ``key`` (in ``[0, num_shards)``)."""

    def shards_for(self, keys: Sequence[Any]) -> dict[int, list[Any]]:
        """Group ``keys`` by owning shard index (empty shards omitted)."""
        grouped: dict[int, list[Any]] = {}
        for key in keys:
            grouped.setdefault(self.shard_for(key), []).append(key)
        return grouped

    def describe(self) -> dict[str, Any]:
        """Metadata for catalogs and ``ShardedEngine.describe``."""
        return {"strategy": type(self).__name__, "num_shards": self.num_shards}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class HashPartitioner(Partitioner):
    """Stable-hash partitioning over the key's canonical string form."""

    def shard_for(self, key: Any) -> int:
        digest = zlib.crc32(canonical_key(key).encode("utf-8"))
        return digest % self.num_shards


class RangePartitioner(Partitioner):
    """Ordered partitioning: shard ``i`` owns ``[boundaries[i-1], boundaries[i])``.

    ``boundaries`` must be strictly increasing; ``len(boundaries) + 1`` shards
    result.  Keys below the first boundary go to shard 0, keys at or above
    the last go to the final shard.
    """

    def __init__(self, boundaries: Sequence[Any]) -> None:
        bounds = list(boundaries)
        if not bounds:
            raise ConfigurationError("RangePartitioner needs at least one boundary")
        if any(not (bounds[i] < bounds[i + 1]) for i in range(len(bounds) - 1)):
            raise ConfigurationError("range boundaries must be strictly increasing")
        super().__init__(len(bounds) + 1)
        self.boundaries = bounds

    def shard_for(self, key: Any) -> int:
        try:
            return bisect.bisect_right(self.boundaries, key)
        except TypeError as exc:
            raise ConfigurationError(
                f"shard key {key!r} is not comparable with the declared "
                f"range boundaries"
            ) from exc

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        description["boundaries"] = list(self.boundaries)
        return description

    def __repr__(self) -> str:
        return f"RangePartitioner(boundaries={self.boundaries!r})"
