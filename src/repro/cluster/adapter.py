"""The fallback adapter for sharded engines.

Operators the scatter-gather path cannot partition (joins, graph traversals,
ML heads, anything with already-materialized inputs) execute through the
**designated primary shard**'s adapter.  That is always semantically safe for
non-leaf operators — they evaluate over materialized inputs, not engine
state — and is the documented single-shard fallback for leaf operators of
non-partitionable data models.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.scatter import ShardedValue, gather
from repro.cluster.sharded import ShardedEngine
from repro.ir.nodes import Operator
from repro.middleware.adapters import Adapter, adapter_for


class ShardedAdapter(Adapter):
    """Delegates to the primary shard's adapter, gathering sharded inputs."""

    def __init__(self, engine: ShardedEngine) -> None:
        super().__init__(engine)
        self.engine: ShardedEngine = engine
        self._primary = adapter_for(engine.primary)

    def supported_kinds(self) -> frozenset[str]:
        return self._primary.supported_kinds()

    def execute(self, node: Operator, inputs: list[Any]) -> Any:
        materialized = [gather(value) if isinstance(value, ShardedValue) else value
                        for value in inputs]
        return self._primary.execute(node, materialized)
