"""Scatter-gather execution over a :class:`~repro.cluster.sharded.ShardedEngine`.

The executor delegates here when an operator is bound to a sharded engine.
Three operator classes are handled:

* **leaf reads** (``scan``, ``kv_range``, ``ts_summarize``, ...) fan out to
  every shard's adapter and produce a :class:`ShardedValue` — the per-shard
  partitions stay separate so downstream shard-local operators keep working
  partition-wise.  Reads that name their key (``index_seek`` on the declared
  shard key, ``ts_range``/``window_aggregate`` on one series, ``kv_get`` with
  explicit keys) are *routed* to the owning shard(s) instead of broadcast.
* **partition-wise operators** (``filter``, ``project``) apply to each
  partition independently and stay sharded.
* **merging operators** reassemble one value: ``aggregate`` computes
  per-shard *partial* aggregates and combines them (``avg`` decomposes into
  ``sum``/``count``), ``sort`` merges per-shard sorted runs in order,
  ``limit``/``top_k``/``text_search`` re-apply their cut after concatenation.

Everything else returns ``None`` and the executor falls back to the primary
shard.  Each shard subtask records its thread-CPU time; the scatter's charged
(simulated) time is the *critical path* — the slowest shard plus the merge —
which models the shards as separate machines the way migration and offload
charges model the network and devices.
"""

from __future__ import annotations

import heapq
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.cancellation import CancellationToken
from repro.cluster.partition import Partitioner
from repro.cluster.sharded import ShardedEngine, concat_tables
from repro.compiler.passes.pushdown import predicate_key_values
from repro.stores.relational.expressions import Expression
from repro.datamodel.schema import Column, DataType, Schema
from repro.datamodel.table import Table
from repro.middleware.adapters import Adapter, adapter_for
from repro.middleware.feedback.stats import RuntimeStats
from repro.obs import Observability
from repro.ir.nodes import Operator
from repro.stores.base import Engine
from repro.stores.relational.operators import AggregateSpec

#: Leaf reads that fan out across every shard (engine state is partitioned).
LEAF_KINDS = frozenset({
    "scan", "index_seek", "kv_get", "kv_range",
    "ts_range", "window_aggregate", "ts_summarize",
    "text_search", "keyword_features",
})

#: Operators applied to each partition independently (stay sharded).
PARTWISE_KINDS = frozenset({"filter", "project"})

#: Operators that gather the partitions back into one value.
MERGE_KINDS = frozenset({"aggregate", "sort", "limit", "top_k"})


@dataclass(frozen=True)
class ShardedValue:
    """Per-shard partitions of one operator's output, merged lazily.

    ``shard_indexes[i]`` is the shard that produced ``parts[i]`` — routed
    reads may cover a subset of the shards.  ``ordered_by`` names a column
    each partition is sorted on (key/value range reads are key-ordered per
    shard); the gather then k-way-merges instead of concatenating, so
    sharded results keep the same global ordering the unsharded engine
    guarantees.  Consumers that cannot work partition-wise call
    :meth:`gather`.
    """

    engine: str
    parts: tuple[Any, ...]
    shard_indexes: tuple[int, ...]
    ordered_by: str | None = None

    def gather(self) -> Any:
        """Merge the partitions into one value (order-preserving for tables)."""
        tables = [part for part in self.parts if isinstance(part, Table)]
        if len(tables) == len(self.parts) and tables:
            if self.ordered_by is not None:
                return _ordered_merge(tables, self.ordered_by, False,
                                      stringify=True)
            return concat_tables(tables)
        if len(self.parts) == 1:
            return self.parts[0]
        merged: list[Any] = []
        for part in self.parts:
            merged.extend(part if isinstance(part, list) else [part])
        return merged

    def copy_parts(self, copier: Callable[[Any], Any]) -> "ShardedValue":
        """A new value with each partition passed through ``copier``."""
        return ShardedValue(self.engine, tuple(copier(p) for p in self.parts),
                            self.shard_indexes, self.ordered_by)

    def __len__(self) -> int:
        return sum(len(part) if hasattr(part, "__len__") else 1
                   for part in self.parts)


def gather(value: Any) -> Any:
    """Coerce ``value`` to a plain (merged) value if it is sharded."""
    return value.gather() if isinstance(value, ShardedValue) else value


@dataclass
class ScatterExecution:
    """Outcome of one scatter-gather dispatch, consumed by the executor."""

    value: Any
    #: Modeled cluster time: slowest shard subtask plus the merge.
    critical_path_s: float
    details: dict[str, Any] = field(default_factory=dict)


class _ShardTask:
    """One shard-local subtask: timed execution of a node on one shard."""

    def __init__(self, adapter: Adapter, node: Operator, inputs: list[Any],
                 cancellation: CancellationToken | None = None) -> None:
        self.adapter = adapter
        self.node = node
        self.inputs = inputs
        self.cancellation = cancellation

    def run(self) -> tuple[Any, float]:
        # A concurrent fan-out submits every subtask up front; pool-queued
        # subtasks re-check here so a cancel stops them before they start.
        if self.cancellation is not None:
            self.cancellation.check()
        # Thread CPU time models the shard as its own machine: under
        # concurrent dispatch the GIL serializes the Python work, but each
        # subtask's CPU time still reflects only its own share.
        start = time.thread_time()
        value = self.adapter.execute(self.node, self.inputs)
        return value, time.thread_time() - start


class ScatterGather:
    """Plans and runs scatter-gather dispatch for one executor instance."""

    def __init__(self, stats: RuntimeStats | None = None, *,
                 obs: Observability | None = None,
                 cancellation: CancellationToken | None = None) -> None:
        self._adapters: dict[int, Adapter] = {}
        self._adapters_lock = threading.Lock()
        #: Cooperative cancellation token for the run this instance serves;
        #: checked before each shard subtask is dispatched (and again at
        #: subtask start on pool workers), so a cancelled fan-out stops
        #: dispatching its remaining subtasks.
        self._cancellation = cancellation
        #: Observability hub: one span + one counter/histogram sample per
        #: shard subtask (inert shared hub when obs is off).
        self._obs = obs if obs is not None else Observability.disabled()
        #: Runtime feedback store: per-shard subtask times are recorded after
        #: every fan-out, and reads whose observed subtasks are smaller than
        #: the thread-dispatch overhead are re-dispatched serially (the
        #: charged critical path is thread-CPU based and unaffected; only
        #: wall-clock dispatch overhead is saved).
        self._stats = stats

    # -- public entry point ------------------------------------------------------------

    def execute(self, engine: ShardedEngine, node: Operator, inputs: list[Any],
                pool: ThreadPoolExecutor | None) -> ScatterExecution | None:
        """Scatter-gather ``node`` across the engine's shards.

        Returns ``None`` when the operator is not partitionable here — the
        executor then falls back to the designated primary shard.
        """
        if not engine.partitionable:
            return None
        shards = engine.shards
        if not shards or not self._adapter(shards[0]).can_execute(node):
            # An unsupported kind must take the ordinary path, where
            # ``can_execute`` raises a clean error instead of a duck-typed
            # adapter misreading the node.
            return None
        if node.kind in LEAF_KINDS and not node.inputs:
            return self._execute_leaf(engine, node, pool)
        if (node.kind in PARTWISE_KINDS and len(inputs) == 1
                and isinstance(inputs[0], ShardedValue)):
            return self._execute_partwise(engine, node, inputs[0], pool)
        if (node.kind in MERGE_KINDS and len(inputs) == 1
                and isinstance(inputs[0], ShardedValue)):
            return self._execute_merge(engine, node, inputs[0], pool)
        return None

    # -- leaf reads --------------------------------------------------------------------

    def _execute_leaf(self, engine: ShardedEngine, node: Operator,
                      pool: ThreadPoolExecutor | None) -> ScatterExecution | None:
        # One atomic read: routing with one topology's partitioner into
        # another topology's shard list could tear across a rebalance cutover.
        shards, partitioner = engine.topology()
        routed = self._route(engine, node, partitioner)
        if routed is not None:
            return self._execute_routed(engine, node, pool, shards, routed)
        tasks = [self._task(self._adapter(shard), node, []) for shard in shards]
        results, fan_out = self._fan_out(tasks, pool, (engine.name, node.kind))
        parts = tuple(value for value, _ in results)
        times = [cpu for _, cpu in results]
        details = {"shards": len(shards), "fan_out": fan_out,
                   "shard_times_s": times,
                   "contacted_shards": [shard.name for shard in shards]}
        if node.kind == "text_search":
            merge_start = time.thread_time()
            merged = _rerank_search(parts, int(node.params.get("top_k", 10)))
            merge_s = time.thread_time() - merge_start
            details["merge"] = "rerank"
            return ScatterExecution(merged, max(times, default=0.0) + merge_s, details)
        details["merge"] = "deferred"
        value = ShardedValue(engine.name, parts, tuple(range(len(shards))),
                             _leaf_order_column(node))
        return ScatterExecution(value, max(times, default=0.0), details)

    def _route(self, engine: ShardedEngine, node: Operator,
               partitioner: "Partitioner") -> dict[int, Operator] | None:
        """Shard-subset routing for key-addressed reads, or ``None``.

        Returns a map of shard index -> the node to run there.  Reads that
        name their keys explicitly (``kv_get`` keys, absorbed ``series_keys``
        / ``doc_ids`` hints) split the key list per owning shard; a scan
        whose absorbed predicate pins the table's declared shard key routes
        to the owning shard subset unchanged — every other read stays a full
        fan-out.
        """
        if node.kind == "index_seek":
            table = str(node.params.get("table", ""))
            if engine.shard_key_for(table) == node.params.get("column"):
                return {partitioner.shard_for(node.params.get("value")): node}
        if node.kind in ("ts_range", "window_aggregate"):
            series = node.params.get("series")
            if series is not None:
                return {partitioner.shard_for(str(series)): node}
        if node.kind == "kv_get" and node.params.get("keys"):
            return self._split_keys(node, partitioner, "keys")
        if node.kind == "ts_summarize" and node.params.get("series_keys"):
            return self._split_keys(node, partitioner, "series_keys")
        if node.kind == "keyword_features" and node.params.get("doc_ids"):
            return self._split_keys(node, partitioner, "doc_ids")
        if node.kind in ("scan", "index_seek"):
            # index_seek nodes converted from predicated scans retain the full
            # predicate, so a shard-key conjunct still prunes the fan-out even
            # when the seek column is a different (indexed) column.
            predicate = node.params.get("predicate")
            table = str(node.params.get("table", ""))
            shard_key = engine.shard_key_for(table)
            if shard_key is not None and isinstance(predicate, Expression):
                values = predicate_key_values(predicate, shard_key)
                if values is not None:
                    owners = sorted({partitioner.shard_for(v) for v in values})
                    # Contradictory conjuncts select nothing; one shard still
                    # answers so the result keeps the right (empty) shape.
                    owners = owners or [0]
                    return {index: node for index in owners}
        return None

    @staticmethod
    def _split_keys(node: Operator, partitioner: "Partitioner",
                    param: str) -> dict[int, Operator]:
        grouped = partitioner.shards_for(list(node.params[param]))
        plan: dict[int, Operator] = {}
        for shard_index in sorted(grouped):
            subset = node.copy()
            subset.params = dict(node.params, **{param: list(grouped[shard_index])})
            plan[shard_index] = subset
        return plan

    def _execute_routed(self, engine: ShardedEngine, node: Operator,
                        pool: ThreadPoolExecutor | None, shards: list[Engine],
                        routed: dict[int, Operator]) -> ScatterExecution:
        indexes = sorted(routed)
        tasks = [self._task(self._adapter(shards[index]), routed[index], [])
                 for index in indexes]
        # Routed subtasks are key-addressed lookups, orders of magnitude
        # smaller than a full fan-out of the same kind — keep their observed
        # times under a separate key so they cannot drag the full-scatter
        # EWMA below the serial-dispatch threshold.
        results, _ = self._fan_out(tasks, pool, (engine.name, f"{node.kind}@routed"))
        parts = tuple(value for value, _ in results)
        times = [cpu for _, cpu in results]
        details: dict[str, Any] = {
            "shards": len(indexes), "fan_out": "routed",
            "shard_times_s": times,
            "contacted_shards": [shards[index].name for index in indexes],
        }
        if len(indexes) == 1:
            details["shard"] = shards[indexes[0]].name
            return ScatterExecution(parts[0], max(times, default=0.0), details)
        details["merge"] = "deferred"
        value = ShardedValue(engine.name, parts, tuple(indexes),
                             _leaf_order_column(node))
        return ScatterExecution(value, max(times, default=0.0), details)

    # -- partition-wise operators ------------------------------------------------------

    def _execute_partwise(self, engine: ShardedEngine, node: Operator,
                          sharded: ShardedValue,
                          pool: ThreadPoolExecutor | None) -> ScatterExecution:
        shards = engine.shards
        tasks = [
            self._task(self._adapter_for_index(shards, index), node, [part])
            for part, index in zip(sharded.parts, sharded.shard_indexes)
        ]
        results, fan_out = self._fan_out(tasks, pool, (engine.name, node.kind))
        times = [cpu for _, cpu in results]
        # ordered_by is not propagated: partition-wise operators only ever
        # follow relational leaves today, whose partitions are unordered.
        value = ShardedValue(engine.name, tuple(v for v, _ in results),
                             sharded.shard_indexes)
        return ScatterExecution(value, max(times, default=0.0), {
            "shards": len(tasks), "fan_out": fan_out, "merge": "deferred",
            "shard_times_s": times,
        })

    # -- merging operators -------------------------------------------------------------

    def _execute_merge(self, engine: ShardedEngine, node: Operator,
                       sharded: ShardedValue,
                       pool: ThreadPoolExecutor | None) -> ScatterExecution | None:
        shards = engine.shards
        if node.kind == "aggregate":
            return self._execute_partial_aggregate(engine, node, sharded, pool)
        tasks = [
            self._task(self._adapter_for_index(shards, index), node, [part])
            for part, index in zip(sharded.parts, sharded.shard_indexes)
        ]
        results, fan_out = self._fan_out(tasks, pool, (engine.name, node.kind))
        parts = [value for value, _ in results]
        times = [cpu for _, cpu in results]
        merge_start = time.thread_time()
        if node.kind == "sort":
            merged = _ordered_merge(parts, str(node.params["by"]),
                                    bool(node.params.get("descending", False)))
            merge_name = "ordered"
        elif node.kind == "limit":
            merged = concat_tables(parts).limit(int(node.params["n"]))
            merge_name = "concat+limit"
        else:  # top_k
            merged = _global_top_k(parts, str(node.params["by"]),
                                   int(node.params["k"]),
                                   bool(node.params.get("descending", True)))
            merge_name = "top_k"
        merge_s = time.thread_time() - merge_start
        return ScatterExecution(merged, max(times, default=0.0) + merge_s, {
            "shards": len(tasks), "fan_out": fan_out, "merge": merge_name,
            "shard_times_s": times,
        })

    def _execute_partial_aggregate(self, engine: ShardedEngine, node: Operator,
                                   sharded: ShardedValue,
                                   pool: ThreadPoolExecutor | None) -> ScatterExecution:
        group_by = list(node.params.get("group_by") or [])
        aggregates = list(node.params.get("aggregates") or [])
        partial_specs, combines = decompose_aggregates(aggregates)
        partial_node = node.copy()
        partial_node.params = dict(node.params, group_by=group_by,
                                   aggregates=partial_specs)
        shards = engine.shards
        tasks = [
            self._task(self._adapter_for_index(shards, index), partial_node, [part])
            for part, index in zip(sharded.parts, sharded.shard_indexes)
        ]
        results, fan_out = self._fan_out(tasks, pool, (engine.name, node.kind))
        parts = [value for value, _ in results]
        times = [cpu for _, cpu in results]
        merge_start = time.thread_time()
        merged = combine_partial_aggregates(parts, group_by, combines)
        merge_s = time.thread_time() - merge_start
        return ScatterExecution(merged, max(times, default=0.0) + merge_s, {
            "shards": len(tasks), "fan_out": fan_out, "merge": "aggregate_combine",
            "shard_times_s": times,
        })

    # -- dispatch helpers --------------------------------------------------------------

    def _fan_out(self, tasks: list[_ShardTask], pool: ThreadPoolExecutor | None,
                 key: tuple[str, str] | None = None
                 ) -> tuple[list[tuple[Any, float]], str]:
        """Run shard subtasks, concurrently when a pool is given.

        ``key`` is the ``(engine, kind)`` the subtasks belong to: observed
        per-shard times are recorded under it, and once the observed mean
        subtask is smaller than the thread-dispatch overhead the fan-out
        adaptively stays serial.
        """
        serial = (key is not None and self._stats is not None
                  and self._stats.prefer_serial_fan_out(*key))
        token = self._cancellation
        obs = self._obs
        if not obs.enabled:
            if pool is not None and len(tasks) > 1 and not serial:
                if token is not None:
                    token.check()
                futures = [pool.submit(task.run) for task in tasks]
                results = [future.result() for future in futures]
                fan_out = "concurrent"
            else:
                results, fan_out = self._run_serial(tasks, token), "serial"
        else:
            engine_label = key[0] if key is not None else "unknown"
            kind = key[1] if key is not None else "op"
            # Pool workers re-attach the dispatching thread's span so each
            # subtask span parents under the scattered operator.
            parent = obs.tracer.current()
            if pool is not None and len(tasks) > 1 and not serial:
                if token is not None:
                    token.check()
                futures = [pool.submit(self._run_subtask, task, index,
                                       engine_label, kind, parent)
                           for index, task in enumerate(tasks)]
                results = [future.result() for future in futures]
                fan_out = "concurrent"
            else:
                results = []
                for index, task in enumerate(tasks):
                    if token is not None:  # stop dispatching on cancel
                        token.check()
                    results.append(self._run_subtask(task, index, engine_label,
                                                     kind, parent))
                fan_out = "serial"
        if key is not None and self._stats is not None:
            self._stats.record_shard_times(key[0], key[1],
                                           [cpu for _, cpu in results])
        return results, fan_out

    def _run_subtask(self, task: _ShardTask, index: int, engine_label: str,
                     kind: str, parent: Any) -> tuple[Any, float]:
        """One instrumented shard subtask (possibly on a pool worker)."""
        obs = self._obs
        with obs.tracer.attach(parent):
            with obs.tracer.span(f"shard:{index}", "scatter",
                                 engine=engine_label, kind=kind,
                                 shard=index) as span:
                value, cpu = task.run()
                if span is not None:
                    span.set(cpu_s=cpu)
        obs.scatter_subtasks_total.inc(engine=engine_label)
        obs.scatter_subtask_seconds.observe(cpu, engine=engine_label)
        return value, cpu

    def _task(self, adapter: Adapter, node: Operator,
              inputs: list[Any]) -> _ShardTask:
        return _ShardTask(adapter, node, inputs, self._cancellation)

    @staticmethod
    def _run_serial(tasks: list[_ShardTask],
                    token: CancellationToken | None) -> list[tuple[Any, float]]:
        results: list[tuple[Any, float]] = []
        for task in tasks:
            if token is not None:  # stop dispatching remaining subtasks
                token.check()
            results.append(task.run())
        return results

    def _adapter(self, shard: Engine) -> Adapter:
        key = id(shard)
        with self._adapters_lock:
            if key not in self._adapters:
                self._adapters[key] = adapter_for(shard)
            return self._adapters[key]

    def _adapter_for_index(self, shards: list[Engine], index: int) -> Adapter:
        # Partitions may outlive a cutover mid-run; partition-wise operators
        # evaluate over materialized inputs, so any live shard's adapter is
        # semantically equivalent — clamp rather than fail.
        return self._adapter(shards[min(index, len(shards) - 1)])


def _leaf_order_column(node: Operator) -> str | None:
    """The column a leaf read's per-shard partitions are sorted on, if any.

    Key/value range reads come back in key order from every shard (the LSM
    range scan sorts), so their gather must merge rather than concatenate to
    match the unsharded engine's ordering.
    """
    if node.kind == "kv_range" or (node.kind == "kv_get"
                                   and not node.params.get("keys")):
        return str(node.params.get("key_column", "key"))
    return None


# -- partial aggregates ---------------------------------------------------------------


@dataclass(frozen=True)
class CombineSpec:
    """How one output aggregate combines from per-shard partial columns."""

    alias: str
    function: str
    partials: tuple[str, ...]
    #: Source column the aggregate reads (``None`` for ``count(*)``); the
    #: empty-result path derives the output column's dtype from it.
    column: str | None = None


def decompose_aggregates(aggregates: Sequence[AggregateSpec]
                         ) -> tuple[list[AggregateSpec], list[CombineSpec]]:
    """Split aggregates into shard-local partials plus combine rules.

    ``sum``/``count``/``min``/``max`` are algebraic and combine with
    themselves; ``avg`` decomposes into a shard-local ``sum`` and ``count``.
    """
    partials: list[AggregateSpec] = []
    combines: list[CombineSpec] = []
    for position, spec in enumerate(aggregates):
        if spec.function == "avg":
            sum_alias = f"__p{position}_sum"
            count_alias = f"__p{position}_count"
            partials.append(AggregateSpec("sum", spec.column, sum_alias))
            partials.append(AggregateSpec("count", spec.column, count_alias))
            combines.append(CombineSpec(spec.alias, "avg", (sum_alias, count_alias),
                                        spec.column))
        else:
            partial_alias = f"__p{position}_{spec.function}"
            partials.append(AggregateSpec(spec.function, spec.column, partial_alias))
            combines.append(CombineSpec(spec.alias, spec.function, (partial_alias,),
                                        spec.column))
    return partials, combines


def combine_partial_aggregates(parts: Sequence[Table], group_by: Sequence[str],
                               combines: Sequence[CombineSpec]) -> Table:
    """Merge per-shard partial-aggregate tables into the final result.

    Groups appearing on several shards are combined; SQL null semantics are
    preserved (``sum``/``min``/``max`` over no non-null values stay ``None``).
    """
    grouped: dict[tuple, dict[str, Any]] = {}
    order: list[tuple] = []
    for part in parts:
        for row in part.to_dicts():
            key = tuple(row.get(name) for name in group_by)
            if key not in grouped:
                grouped[key] = {name: [] for combine in combines
                                for name in combine.partials}
                order.append(key)
            for combine in combines:
                for name in combine.partials:
                    grouped[key][name].append(row.get(name))
    rows: list[dict[str, Any]] = []
    for key in order:
        out: dict[str, Any] = dict(zip(group_by, key))
        partials = grouped[key]
        for combine in combines:
            out[combine.alias] = _combine_one(combine, partials)
        rows.append(out)
    if not group_by and not rows:
        rows.append({combine.alias: 0 if combine.function == "count" else None
                     for combine in combines})
    if rows:
        return Table.from_dicts(rows)
    return Table(_aggregate_schema(parts, group_by, combines), [])


def _combine_one(combine: CombineSpec, partials: dict[str, list[Any]]) -> Any:
    if combine.function == "avg":
        total = sum(v for v in partials[combine.partials[0]] if v is not None)
        count = sum(v for v in partials[combine.partials[1]] if v is not None)
        return total / count if count else None
    values = [v for v in partials[combine.partials[0]] if v is not None]
    if combine.function == "count":
        return int(sum(values))
    if not values:
        return None
    if combine.function == "sum":
        return sum(values)
    if combine.function == "min":
        return min(values)
    return max(values)


def _aggregate_schema(parts: Sequence[Table], group_by: Sequence[str],
                      combines: Sequence[CombineSpec]) -> Schema:
    """Typed schema for an empty combined-aggregate result.

    Group columns take their dtype from whichever shard partial carries
    them.  Aggregate columns derive theirs from the *source* column's dtype
    in the shard partial tables (``min``/``max`` preserve it, ``sum`` of
    ints stays int) — hardcoding FLOAT here mistyped ``min``/``max`` over
    string and int columns whenever every shard came back empty.
    """
    columns: list[Column] = []
    for name in group_by:
        columns.append(_part_column(parts, name) or Column(name, DataType.STRING))
    for combine in combines:
        columns.append(Column(combine.alias, _combine_dtype(parts, combine)))
    return Schema(columns)


def _part_column(parts: Sequence[Table], name: str | None) -> Column | None:
    if name is None:
        return None
    for part in parts:
        if name in part.schema:
            return part.schema[name]
    return None


def _combine_dtype(parts: Sequence[Table], combine: CombineSpec) -> DataType:
    if combine.function == "count":
        return DataType.INT
    if combine.function == "avg":
        return DataType.FLOAT
    # Prefer the partial column's dtype (present when a shard produced a
    # typed partial table), then the source column's dtype from the shard
    # input schemas the empty partials carry.
    source = _part_column(parts, combine.partials[0]) \
        or _part_column(parts, combine.column)
    if source is None:
        return DataType.FLOAT
    if combine.function == "sum" and source.dtype is DataType.BOOL:
        return DataType.INT  # Python sums booleans to int, as SQL does
    return source.dtype


# -- order-preserving merges ----------------------------------------------------------


def _ordered_merge(parts: Sequence[Table], by: str, descending: bool, *,
                   stringify: bool = False) -> Table:
    """K-way merge of per-shard sorted runs (``None`` sorts first, as Sort does).

    ``stringify`` compares by the value's string form — key/value range reads
    are ordered by the *string* key even when the adapter coerced the column
    to integers, so the sharded merge must follow the same collation.
    """
    non_empty = [part for part in parts if len(part)]
    if not non_empty:
        return parts[0] if parts else Table(Schema([Column(by, DataType.FLOAT)]), [])

    def key(row: dict[str, Any]) -> tuple:
        value = row.get(by)
        if stringify and value is not None:
            return (True, str(value))
        return (value is not None, value)

    runs = [part.to_dicts() for part in non_empty]
    merged = list(heapq.merge(*runs, key=key, reverse=descending))
    return Table.from_dicts(merged)


def _global_top_k(parts: Sequence[Table], by: str, k: int, descending: bool) -> Table:
    """Heap-select the global top ``k`` from per-shard top-``k`` results.

    Matches the single-node ``TopK`` operator's semantics: rows whose
    ``by`` value is ``None`` never qualify (single-node drops them before
    the heap; the old concat-and-full-sort here let them pad ascending
    results), and the selected key sequence is identical.  Ties are
    *deterministic* — ``heapq.nlargest``/``nsmallest`` are stable and the
    candidates stream in shard-index order (per-shard insertion order
    within each shard) — but when equal keys straddle the k boundary
    *across* shards the surviving rows may differ from single-node, whose
    stable order is the global insertion order partitioning destroyed.
    Unique sort keys reproduce single-node output exactly; see DESIGN.md.
    """
    candidates = (row for part in parts for row in part.to_dicts()
                  if row.get(by) is not None)
    if k <= 0:
        kept: list[dict[str, Any]] = []
    elif descending:
        kept = heapq.nlargest(k, candidates, key=lambda r: r[by])
    else:
        kept = heapq.nsmallest(k, candidates, key=lambda r: r[by])
    if kept:
        return Table.from_dicts(kept)
    if parts:
        return Table(parts[0].schema, [])
    return Table(Schema([Column(by, DataType.FLOAT)]), [])


def _rerank_search(parts: Sequence[Table], top_k: int) -> Table:
    """Global re-rank of per-shard search results by descending score.

    Scores are TF-IDF with *shard-local* document frequencies — the same
    query-then-fetch approximation production distributed search engines
    default to.  Rankings can deviate from a single-node index when term
    distribution is very skewed across shards; see DESIGN.md.
    """
    rows: list[dict[str, Any]] = []
    for part in parts:
        rows.extend(part.to_dicts())
    rows.sort(key=lambda r: float(r.get("score") or 0.0), reverse=True)
    kept = rows[:top_k]
    if kept:
        return Table.from_dicts(kept)
    return parts[0] if parts else Table(
        Schema([Column("doc_id", DataType.STRING),
                Column("score", DataType.FLOAT)]), [])
