"""Sharding fabric: partitioned engines, scatter-gather execution, rebalancing.

This package adds the data-parallel axis to the polystore: any substrate
engine can be wrapped in a :class:`ShardedEngine` (N shard instances behind a
hash or range :class:`Partitioner`), registered in the system like any other
engine, scatter-gathered by the executor, and repartitioned online by the
:class:`ShardRebalancer` without taking reads offline.
"""

from repro.cluster.partition import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    canonical_key,
)
from repro.cluster.rebalance import RebalanceReport, ShardRebalancer
from repro.cluster.scatter import (
    ScatterExecution,
    ScatterGather,
    ShardedValue,
    combine_partial_aggregates,
    decompose_aggregates,
    gather,
)
from repro.cluster.sharded import PARTITIONABLE_MODELS, ShardedEngine, ShardPayload
from repro.cluster.adapter import ShardedAdapter

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "canonical_key",
    "ShardedEngine",
    "ShardPayload",
    "PARTITIONABLE_MODELS",
    "ShardedAdapter",
    "ShardedValue",
    "ScatterGather",
    "ScatterExecution",
    "gather",
    "decompose_aggregates",
    "combine_partial_aggregates",
    "ShardRebalancer",
    "RebalanceReport",
]
