"""The heterogeneous-program model produced by the EIDE.

A :class:`HeterogeneousProgram` is the paper's Figure 5: an annotated
data-flow graph of *fragments*, each written in a different paradigm (SQL,
graph queries, stream features, text features, ML training/inference,
arbitrary Python) and targeting a different data store.  The program also
carries the deployment configuration (which engines and accelerators exist),
exactly as the paper's EIDE "is used by users to declare the configuration
for a Polystore++ system".

The class exposes a fluent builder API so the examples read close to the
paper's pseudo-programs:

.. code-block:: python

    program = HeterogeneousProgram("icu-stay")
    program.sql("admissions", "SELECT pid, age FROM admissions WHERE age > 60",
                engine="clinical-db")
    program.timeseries_summary("vitals", series_prefix="hr/", engine="monitors")
    program.join("features", left="admissions", right="vitals", on="pid")
    program.train("model", features="features", label_column="long_stay")
    program.output("model")
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.exceptions import CompilationError

_MISSING = object()


@dataclass(frozen=True)
class Param:
    """A runtime-bound placeholder inside a fragment's parameters.

    Prepared programs (``Session.prepare``) compile once with the placeholder
    in place and substitute the bound value on every
    :meth:`~repro.client.PreparedProgram.run` call, like a prepared
    statement's ``?`` markers.  Placeholders may appear anywhere in a
    fragment's ``params`` except inside SQL text (SQL is parsed at compile
    time).
    """

    name: str
    default: Any = _MISSING

    @property
    def has_default(self) -> bool:
        """Whether the placeholder carries a fallback value."""
        return self.default is not _MISSING

    def __repr__(self) -> str:  # stable across runs, used by fingerprints
        if self.has_default:
            return f"Param({self.name!r}, default={self.default!r})"
        return f"Param({self.name!r})"


def canonical_value(value: Any) -> str:
    """A deterministic string form of a fragment parameter value.

    Containers are recursed; dictionaries are key-sorted.  Callables (the
    ``python`` paradigm's functions) are identified *by identity*, not by
    content — two distinct function objects never collide, so a plan cached
    for one can never be replayed for the other.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(canonical_value(v) for v in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(canonical_value(v) for v in value)) + "}"
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        return "{" + ",".join(f"{canonical_value(k)}:{canonical_value(v)}"
                              for k, v in items) + "}"
    if isinstance(value, Param):
        return repr(value)
    if callable(value):
        module = getattr(value, "__module__", "?")
        qualname = getattr(value, "__qualname__", type(value).__name__)
        return f"<callable {module}.{qualname}@{id(value):x}>"
    return f"<{type(value).__name__}:{value!r}>"

#: Paradigms a fragment may be written in.
PARADIGMS = frozenset({
    "sql", "kv_lookup", "timeseries_summary", "window_aggregate", "graph_query",
    "text_search", "text_features", "join", "feature_matrix", "train", "predict",
    "kmeans", "python",
})


@dataclass
class SubProgram:
    """One fragment of a heterogeneous program.

    Attributes:
        name: Unique fragment name; later fragments reference it as an input.
        paradigm: Which frontend lowers this fragment (one of :data:`PARADIGMS`).
        params: Paradigm-specific parameters (the SQL text, the series prefix,
            the model hyper-parameters, ...).
        engine: Name of the engine this fragment targets (``None`` lets the
            compiler's placement pass choose).
        inputs: Names of fragments whose outputs this fragment consumes.
    """

    name: str
    paradigm: str
    params: dict[str, Any] = field(default_factory=dict)
    engine: str | None = None
    inputs: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.paradigm not in PARADIGMS:
            raise CompilationError(f"unknown paradigm {self.paradigm!r}")
        if not self.name:
            raise CompilationError("fragment name must be non-empty")


class HeterogeneousProgram:
    """An ordered collection of fragments plus program outputs."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._fragments: dict[str, SubProgram] = {}
        self._order: list[str] = []
        self._outputs: list[str] = []
        self._frozen = False

    # -- generic construction ---------------------------------------------------------

    def add_fragment(self, fragment: SubProgram) -> SubProgram:
        """Add a fragment, checking name uniqueness and input availability."""
        self._check_mutable()
        if fragment.name in self._fragments:
            raise CompilationError(f"duplicate fragment name {fragment.name!r}")
        for dependency in fragment.inputs:
            if dependency not in self._fragments:
                raise CompilationError(
                    f"fragment {fragment.name!r} depends on unknown fragment {dependency!r}"
                )
        self._fragments[fragment.name] = fragment
        self._order.append(fragment.name)
        return fragment

    def output(self, name: str) -> None:
        """Mark a fragment as a program output."""
        self._check_mutable()
        if name not in self._fragments:
            raise CompilationError(f"unknown fragment {name!r}")
        if name not in self._outputs:
            self._outputs.append(name)

    # -- fluent builders ------------------------------------------------------------------

    def sql(self, name: str, query: str, *, engine: str | None = None) -> SubProgram:
        """A SQL fragment executed on a relational engine."""
        return self.add_fragment(SubProgram(name, "sql", {"query": query}, engine))

    def kv_lookup(self, name: str, keys: Sequence[str] | None = None, *,
                  key_prefix: str | None = None, engine: str | None = None) -> SubProgram:
        """A key/value point or prefix lookup fragment."""
        params: dict[str, Any] = {}
        if keys is not None:
            params["keys"] = list(keys)
        if key_prefix is not None:
            params["key_prefix"] = key_prefix
        if not params:
            raise CompilationError("kv_lookup needs keys or a key_prefix")
        return self.add_fragment(SubProgram(name, "kv_lookup", params, engine))

    def timeseries_summary(self, name: str, *, series_prefix: str,
                           start: float | None = None, end: float | None = None,
                           engine: str | None = None) -> SubProgram:
        """Per-series summary features (count/mean/min/max/last) for a prefix."""
        params = {"series_prefix": series_prefix, "start": start, "end": end}
        return self.add_fragment(SubProgram(name, "timeseries_summary", params, engine))

    def window_aggregate(self, name: str, *, series: str, window_s: float,
                         aggregation: str = "mean",
                         engine: str | None = None) -> SubProgram:
        """Tumbling-window aggregation over one series."""
        params = {"series": series, "window_s": window_s, "aggregation": aggregation}
        return self.add_fragment(SubProgram(name, "window_aggregate", params, engine))

    def graph_query(self, name: str, *, operation: str, engine: str | None = None,
                    **params: Any) -> SubProgram:
        """A graph fragment: ``operation`` is ``nodes``, ``shortest_path``,
        ``neighborhood`` or ``match``."""
        return self.add_fragment(
            SubProgram(name, "graph_query", {"operation": operation, **params}, engine)
        )

    def text_search(self, name: str, query: str, *, top_k: int = 10,
                    engine: str | None = None) -> SubProgram:
        """A ranked text search fragment."""
        return self.add_fragment(
            SubProgram(name, "text_search", {"query": query, "top_k": top_k}, engine)
        )

    def text_features(self, name: str, *, keywords: Sequence[str],
                      doc_prefix: str | None = None, id_column: str = "doc_id",
                      engine: str | None = None) -> SubProgram:
        """Keyword-count features per document."""
        params = {"keywords": list(keywords), "doc_prefix": doc_prefix,
                  "id_column": id_column}
        return self.add_fragment(SubProgram(name, "text_features", params, engine))

    def join(self, name: str, *, left: str, right: str, on: str | None = None,
             left_key: str | None = None, right_key: str | None = None,
             how: str = "inner", engine: str | None = None) -> SubProgram:
        """Join the outputs of two fragments on a key column."""
        if on is not None:
            left_key = right_key = on
        if left_key is None or right_key is None:
            raise CompilationError("join needs either on= or both left_key= and right_key=")
        params = {"left_key": left_key, "right_key": right_key, "how": how}
        return self.add_fragment(SubProgram(name, "join", params, engine, [left, right]))

    def feature_matrix(self, name: str, *, source: str,
                       feature_columns: Sequence[str] | None = None,
                       label_column: str | None = None,
                       engine: str | None = None) -> SubProgram:
        """Convert a tabular fragment into a dense feature matrix (and labels)."""
        params = {"feature_columns": list(feature_columns) if feature_columns else None,
                  "label_column": label_column}
        return self.add_fragment(SubProgram(name, "feature_matrix", params, engine, [source]))

    def train(self, name: str, *, features: str, label_column: str,
              model_name: str | None = None, model_type: str = "mlp",
              hidden_dims: tuple[int, ...] = (32,), epochs: int = 5,
              batch_size: int = 32, engine: str | None = None) -> SubProgram:
        """Train a classifier on the output of a tabular fragment."""
        params = {
            "model_name": model_name or name,
            "model_type": model_type,
            "label_column": label_column,
            "hidden_dims": tuple(hidden_dims),
            "epochs": epochs,
            "batch_size": batch_size,
        }
        return self.add_fragment(SubProgram(name, "train", params, engine, [features]))

    def predict(self, name: str, *, model: str, features: str,
                engine: str | None = None) -> SubProgram:
        """Score a trained model on the output of a tabular fragment."""
        params = {"model_name": model}
        return self.add_fragment(SubProgram(name, "predict", params, engine, [features]))

    def kmeans(self, name: str, *, features: str, n_clusters: int,
               engine: str | None = None) -> SubProgram:
        """Cluster the output of a tabular fragment."""
        params = {"n_clusters": n_clusters}
        return self.add_fragment(SubProgram(name, "kmeans", params, engine, [features]))

    def python(self, name: str, fn: Callable[..., Any], *, inputs: Sequence[str] = (),
               engine: str | None = None) -> SubProgram:
        """An arbitrary Python transformation of upstream fragment outputs."""
        return self.add_fragment(
            SubProgram(name, "python", {"fn": fn}, engine, list(inputs))
        )

    # -- identity ----------------------------------------------------------------------------

    def _check_mutable(self) -> None:
        if self._frozen:
            raise CompilationError(
                f"program {self.name!r} is frozen; prepared programs cannot be mutated"
            )

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` was called (structure is now immutable)."""
        return self._frozen

    def freeze(self) -> "HeterogeneousProgram":
        """Make the program immutable and pin its fingerprint.

        Sessions freeze programs on :meth:`~repro.client.Session.prepare` so
        a cached plan can never silently diverge from a later mutation.
        Returns ``self`` for chaining.
        """
        self._frozen = True
        return self

    def to_dataflow(self):
        """This program's canonical dataflow form (SQL parsed into trees).

        The compiler frontend and :meth:`fingerprint` both go through this
        conversion, which makes the fragment builder a compatibility shim
        over the dataflow API: an equivalent program written with
        :class:`~repro.eide.dataflow.Dataset` handles produces the same
        fingerprint, shares the same cached plan and lowers to the same IR.
        """
        from repro.eide.dataflow import to_dataflow

        return to_dataflow(self)

    def fingerprint(self) -> str:
        """A deterministic identity hash over the canonical dataflow form.

        Covers the program name, the output names and the full structure of
        every output's expression tree (operator kinds, engine bindings and
        canonicalized parameters — SQL text is parsed first, so reformatted
        but equivalent queries hash identically).  ``python`` fragments'
        callables are hashed by identity — see :func:`canonical_value`.  The
        plan cache keys on this.
        """
        if not self._fragments:
            # Degenerate but fingerprintable: hash the bare name.
            return hashlib.sha256(self.name.encode()).hexdigest()
        return self.to_dataflow().fingerprint()

    def declared_params(self) -> dict[str, Param]:
        """All :class:`Param` placeholders appearing in fragment parameters."""
        found: dict[str, Param] = {}

        def visit(value: Any) -> None:
            if isinstance(value, Param):
                found[value.name] = value
            elif isinstance(value, dict):
                for v in value.values():
                    visit(v)
            elif isinstance(value, (list, tuple, set, frozenset)):
                for v in value:
                    visit(v)

        for fragment in self.fragments:
            visit(fragment.params)
        return found

    # -- access ------------------------------------------------------------------------------

    @property
    def fragments(self) -> list[SubProgram]:
        """Fragments in declaration order."""
        return [self._fragments[name] for name in self._order]

    @property
    def outputs(self) -> list[str]:
        """Names of output fragments (defaults to the last fragment)."""
        if self._outputs:
            return list(self._outputs)
        return [self._order[-1]] if self._order else []

    def fragment(self, name: str) -> SubProgram:
        """The fragment with the given name."""
        try:
            return self._fragments[name]
        except KeyError as exc:
            raise CompilationError(f"unknown fragment {name!r}") from exc

    def __len__(self) -> int:
        return len(self._order)

    def paradigms_used(self) -> list[str]:
        """Distinct paradigms appearing in the program."""
        return sorted({fragment.paradigm for fragment in self.fragments})

    def describe(self) -> str:
        """Multi-line summary of the program (the annotated data-flow graph)."""
        lines = [f"HeterogeneousProgram({self.name!r}, fragments={len(self)})"]
        for fragment in self.fragments:
            deps = ", ".join(fragment.inputs) if fragment.inputs else "-"
            engine = fragment.engine or "<auto>"
            lines.append(f"  {fragment.name}: {fragment.paradigm} @ {engine} <- [{deps}]")
        lines.append(f"  outputs: {', '.join(self.outputs)}")
        return "\n".join(lines)
