"""A small natural-language frontend.

Paper §IV-A-e asks how a natural-language query should be compiled into a
semantically-equivalent heterogeneous program (citing SQLizer and Almond).
This module implements the modest, template-based version of that idea: a
handful of intent patterns are recognized with keyword matching and expanded
into :class:`~repro.eide.program.HeterogeneousProgram` templates over the
deployed stores.  It is intentionally rule-based — the paper treats the full
problem as open research.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.eide.program import HeterogeneousProgram
from repro.exceptions import CompilationError


@dataclass(frozen=True)
class Intent:
    """A recognized intent with its extracted slots."""

    name: str
    slots: dict[str, str]


_PATTERNS: list[tuple[str, re.Pattern[str]]] = [
    ("predict_stay", re.compile(
        r"(long stay|length of stay|stay at the hospital|stay in (the )?icu)", re.I)),
    ("recommend", re.compile(r"(recommend|next best offer|suggest.*product)", re.I)),
    ("patient_history", re.compile(
        r"(admission history|history of (the )?patient|patient.*admissions)", re.I)),
    ("top_customers", re.compile(r"(top|best).*(customers|spenders)", re.I)),
]

_PATIENT_ID = re.compile(r"patient\s+(?:id\s*)?(\w+)", re.I)
_NUMBER = re.compile(r"\b(\d+)\b")


def recognize_intent(text: str) -> Intent:
    """Classify a natural-language request into one of the known intents."""
    for name, pattern in _PATTERNS:
        if pattern.search(text):
            slots: dict[str, str] = {}
            patient = _PATIENT_ID.search(text)
            if patient:
                slots["patient_id"] = patient.group(1)
            number = _NUMBER.search(text)
            if number:
                slots["number"] = number.group(1)
            return Intent(name, slots)
    raise CompilationError(
        f"cannot recognize an intent in {text!r}; known intents: "
        f"{[name for name, _ in _PATTERNS]}"
    )


def compile_natural_language(text: str, *, relational_engine: str = "relational",
                             timeseries_engine: str = "timeseries",
                             text_engine: str = "text",
                             ml_engine: str = "ml",
                             kv_engine: str = "keyvalue") -> HeterogeneousProgram:
    """Translate a natural-language request into a heterogeneous program."""
    intent = recognize_intent(text)
    if intent.name == "predict_stay":
        return _predict_stay_program(relational_engine, timeseries_engine, text_engine,
                                     ml_engine)
    if intent.name == "patient_history":
        return _patient_history_program(intent, relational_engine)
    if intent.name == "top_customers":
        return _top_customers_program(intent, relational_engine)
    return _recommendation_program(relational_engine, kv_engine, ml_engine)


def _predict_stay_program(relational: str, timeseries: str, text: str,
                          ml: str) -> HeterogeneousProgram:
    """The paper's Figure 2 query: will the patient stay more than five days."""
    program = HeterogeneousProgram("nl-predict-stay")
    program.sql("admissions", "SELECT pid, age, num_procedures, prior_admissions, "
                              "long_stay FROM admissions", engine=relational)
    program.timeseries_summary("vitals", series_prefix="hr/", engine=timeseries)
    program.text_features("notes", keywords=["sepsis", "ventilator", "stable"],
                          engine=text)
    program.join("clinical", left="admissions", right="vitals", on="pid")
    program.join("features", left="clinical", right="notes", on="pid")
    program.train("model", features="features", label_column="long_stay", engine=ml)
    program.output("model")
    return program


def _patient_history_program(intent: Intent, relational: str) -> HeterogeneousProgram:
    patient_id = intent.slots.get("patient_id", "1")
    program = HeterogeneousProgram("nl-patient-history")
    program.sql(
        "history",
        f"SELECT pid, admit_date, diagnosis FROM admissions WHERE pid = {patient_id} "
        "ORDER BY admit_date",
        engine=relational,
    )
    program.output("history")
    return program


def _top_customers_program(intent: Intent, relational: str) -> HeterogeneousProgram:
    k = intent.slots.get("number", "10")
    program = HeterogeneousProgram("nl-top-customers")
    program.sql(
        "spend",
        "SELECT customer_id, sum(amount) AS total_spend FROM transactions "
        f"GROUP BY customer_id ORDER BY total_spend DESC LIMIT {k}",
        engine=relational,
    )
    program.output("spend")
    return program


def _recommendation_program(relational: str, kv: str, ml: str) -> HeterogeneousProgram:
    program = HeterogeneousProgram("nl-recommendation")
    program.sql("purchases", "SELECT customer_id, sum(amount) AS total_spend, "
                             "count(*) AS n_orders FROM transactions GROUP BY customer_id",
                engine=relational)
    program.kv_lookup("profiles", key_prefix="customer/", engine=kv)
    program.join("features", left="purchases", right="profiles", on="customer_id")
    program.train("model", features="features", label_column="converted", engine=ml)
    program.output("model")
    return program
