"""EIDE: the expressive programming environment for heterogeneous programs.

Two ways to author a program:

* the **dataflow API** (:mod:`repro.eide.dataflow`) — composable
  :class:`Dataset` expression trees with structured predicates
  (``dataset("db").table("orders").filter(col("age") > 60)``), and
* the **legacy fragment builder** (:class:`HeterogeneousProgram`) — a thin
  compatibility shim that converts into the same dataflow form, so both
  flavours fingerprint, cache and lower identically.
"""

from repro.eide.dataflow import (
    DataflowNode,
    DataflowProgram,
    Dataset,
    DatasetSource,
    dataset,
    to_dataflow,
    view_dataset,
)
from repro.eide.expressions import Col, canonicalize, col, lit
from repro.eide.natural_language import compile_natural_language, recognize_intent
from repro.eide.program import PARADIGMS, HeterogeneousProgram, Param, SubProgram

__all__ = [
    "HeterogeneousProgram",
    "SubProgram",
    "Param",
    "PARADIGMS",
    "DataflowProgram",
    "Dataset",
    "DatasetSource",
    "DataflowNode",
    "dataset",
    "to_dataflow",
    "view_dataset",
    "col",
    "lit",
    "Col",
    "canonicalize",
    "compile_natural_language",
    "recognize_intent",
]
