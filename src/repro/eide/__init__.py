"""EIDE: the expressive programming environment for heterogeneous programs."""

from repro.eide.natural_language import compile_natural_language, recognize_intent
from repro.eide.program import PARADIGMS, HeterogeneousProgram, Param, SubProgram

__all__ = [
    "HeterogeneousProgram",
    "SubProgram",
    "Param",
    "PARADIGMS",
    "compile_natural_language",
    "recognize_intent",
]
