"""Client-facing expression builders for the dataflow API.

The dataflow API (:mod:`repro.eide.dataflow`) takes predicates as
*structured expression trees* — the same
:class:`~repro.stores.relational.expressions.Expression` vocabulary the
relational engine evaluates and the compiler's pushdown pass rewrites — so a
filter written as ``col("age") > 60`` is first-class IR end to end: no SQL
string is ever parsed, the predicate pushes into leaf scans, and a predicate
on a sharded engine's shard key prunes the scatter fan-out.

This module adds the three things the engine layer does not provide:

* :func:`col` — a column reference whose ``==``/``!=`` build predicates
  (plain :class:`~repro.stores.relational.expressions.ColumnRef` keeps
  dataclass equality so the compiler can still compare expression objects).
* :func:`canonicalize` — a normal form for fingerprinting: nested
  AND/OR chains are flattened and commutative operands sorted, so
  ``a & b`` and ``b & a`` hash identically and hit the same plan-cache
  entry.
* :class:`~repro.eide.program.Param` support — placeholders may appear as
  comparison operands (``col("age") > Param("min_age", 60)``);
  :func:`find_params` discovers them for ``Session.prepare`` and
  :func:`bind_params` substitutes bound values on each run.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.eide.program import Param
from repro.exceptions import CompilationError
from repro.stores.relational.expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Literal,
)


class Col(ColumnRef):
    """A column reference with predicate-building ``==`` and ``!=``.

    Everything else (ordering comparisons, arithmetic, ``&``/``|``/``~``)
    comes from the :class:`Expression` base.  :func:`canonicalize` rewrites
    ``Col`` back to a plain :class:`ColumnRef` when a predicate is attached
    to a dataset, so stored trees are identical to SQL-parsed ones.
    """

    def __eq__(self, other: Any) -> Comparison:  # type: ignore[override]
        return self.eq(other)

    def __ne__(self, other: Any) -> Comparison:  # type: ignore[override]
        return self.ne(other)

    # Predicate-building __eq__ breaks the eq/hash contract on purpose;
    # hash by column name so Col stays usable in sets during construction.
    __hash__ = ColumnRef.__hash__


def col(name: str) -> Col:
    """A column reference: ``col("age") > 60`` builds a predicate."""
    return Col(name)


def lit(value: Any) -> Literal:
    """An explicit literal operand (rarely needed; values auto-wrap)."""
    return Literal(value)


# -- canonicalization -------------------------------------------------------------------


def canonical_key(expression: Expression) -> str:
    """A deterministic sort key for commutative operand ordering."""
    return repr(expression)


def canonicalize(expression: Expression) -> Expression:
    """Rewrite a predicate into its canonical, fingerprint-stable form.

    * ``Col`` sugar nodes become plain :class:`ColumnRef`.
    * Nested ``and``/``or`` chains are flattened one level per operator
      (``(a & b) & c`` -> ``and(a, b, c)``).
    * Commutative operands are sorted by their canonical repr, so the two
      orders of ``a & b`` produce one tree.
    """
    if isinstance(expression, ColumnRef):
        return ColumnRef(expression.name)
    if isinstance(expression, Literal):
        return expression
    if isinstance(expression, Comparison):
        return Comparison(expression.op, canonicalize(expression.left),
                          canonicalize(expression.right))
    if isinstance(expression, Arithmetic):
        return Arithmetic(expression.op, canonicalize(expression.left),
                          canonicalize(expression.right))
    if isinstance(expression, InList):
        return InList(canonicalize(expression.operand), expression.values)
    if isinstance(expression, IsNull):
        return IsNull(canonicalize(expression.operand), expression.negated)
    if isinstance(expression, BooleanOp):
        if expression.op == "not":
            return BooleanOp("not", (canonicalize(expression.operands[0]),))
        flattened: list[Expression] = []
        for operand in expression.operands:
            operand = canonicalize(operand)
            if isinstance(operand, BooleanOp) and operand.op == expression.op:
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        flattened.sort(key=canonical_key)
        return BooleanOp(expression.op, tuple(flattened))
    return expression


def as_predicate(value: Any) -> Expression:
    """Validate and canonicalize a user-supplied predicate."""
    if not isinstance(value, Expression):
        raise CompilationError(
            f"expected a predicate Expression (e.g. col('age') > 60), "
            f"got {type(value).__name__}"
        )
    return canonicalize(value)


# -- Param discovery and binding --------------------------------------------------------


def find_params(value: Any, found: dict[str, Param] | None = None) -> dict[str, Param]:
    """All :class:`Param` placeholders inside a value, containers and
    expression trees included."""
    if found is None:
        found = {}
    if isinstance(value, Param):
        found[value.name] = value
    elif isinstance(value, dict):
        for item in value.values():
            find_params(item, found)
    elif isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            find_params(item, found)
    elif isinstance(value, Literal):
        find_params(value.value, found)
    elif isinstance(value, InList):
        find_params(value.operand, found)
        for item in value.values:
            find_params(item, found)
    elif isinstance(value, (Comparison, Arithmetic)):
        find_params(value.left, found)
        find_params(value.right, found)
    elif isinstance(value, BooleanOp):
        for operand in value.operands:
            find_params(operand, found)
    elif isinstance(value, IsNull):
        find_params(value.operand, found)
    return found


def bind_params(expression: Expression,
                resolve: Callable[[Param], Any]) -> Expression:
    """Rebuild an expression with every embedded ``Param`` substituted."""
    if isinstance(expression, Literal):
        if isinstance(expression.value, Param):
            return Literal(resolve(expression.value))
        return expression
    if isinstance(expression, Comparison):
        return Comparison(expression.op, bind_params(expression.left, resolve),
                          bind_params(expression.right, resolve))
    if isinstance(expression, Arithmetic):
        return Arithmetic(expression.op, bind_params(expression.left, resolve),
                          bind_params(expression.right, resolve))
    if isinstance(expression, InList):
        values = tuple(resolve(v) if isinstance(v, Param) else v
                       for v in expression.values)
        return InList(bind_params(expression.operand, resolve), values)
    if isinstance(expression, IsNull):
        return IsNull(bind_params(expression.operand, resolve), expression.negated)
    if isinstance(expression, BooleanOp):
        return BooleanOp(expression.op,
                         tuple(bind_params(op, resolve) for op in expression.operands))
    return expression


def has_params(expression: Expression) -> bool:
    """Whether any ``Param`` placeholder appears inside the expression."""
    return bool(find_params(expression))
