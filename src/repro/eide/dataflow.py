"""The composable dataflow API: typed expression trees over engine scans.

This is the client-facing redesign of the EIDE: instead of wiring named
fragments with SQL strings and ad-hoc kwargs, a program is built from
:class:`Dataset` handles.  Each engine scan (``dataset("salesdb").table(...)``,
``.kv(...)``, ``.timeseries(...)``, ``.text()``, ``.graph()``) returns a
lazily-built expression tree that is composed with ``.filter(col("age") > 60)``,
``.project(...)``, ``.join(...)``, ``.aggregate(...)``, ``.train(...)`` and
``.apply(fn)``.  Nothing executes until the tree is handed to
:meth:`~repro.client.Session.prepare` or
:meth:`~repro.core.system.PolystorePlusPlus.execute`.

The tree vocabulary is deliberately the IR operator vocabulary
(:data:`repro.ir.nodes.OPERATOR_KINDS`): a :class:`DataflowNode` is a
value-semantics IR operator, so lowering is a structural walk and the
compiler's passes see *structured* predicate payloads instead of opaque SQL.
The legacy :class:`~repro.eide.program.HeterogeneousProgram` converts into
the same trees (:func:`to_dataflow`, parsing its SQL fragments once), which
makes it a thin compatibility shim: equivalent old- and new-API programs
produce identical fingerprints, identical IR and share one plan-cache entry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.eide.expressions import as_predicate, find_params
from repro.eide.program import HeterogeneousProgram, Param, canonical_value
from repro.exceptions import CompilationError
from repro.stores.relational.operators import AggregateSpec

#: Dataflow node kinds that read engine state (no dataflow inputs).
SOURCE_KINDS = frozenset({
    "scan", "index_seek", "kv_get", "kv_range", "ts_range", "ts_summarize",
    "window_aggregate", "graph_nodes", "shortest_path", "neighborhood",
    "graph_match", "text_search", "keyword_features",
})

#: Node kind -> data model family, used to resolve default engines when a
#: dataset was built without naming one (mirrors the legacy paradigm table).
KIND_PARADIGMS: dict[str, str] = {
    "scan": "sql", "index_seek": "sql", "filter": "sql", "project": "sql",
    "aggregate": "sql", "sort": "sql", "limit": "sql", "top_k": "sql",
    "union": "sql", "materialize": "sql",
    "join": "join",
    "kv_get": "kv_lookup", "kv_range": "kv_lookup",
    "ts_range": "window_aggregate", "window_aggregate": "window_aggregate",
    "ts_summarize": "timeseries_summary",
    "graph_nodes": "graph_query", "shortest_path": "graph_query",
    "neighborhood": "graph_query", "graph_match": "graph_query",
    "text_search": "text_search", "keyword_features": "text_features",
    "feature_matrix": "feature_matrix", "train": "train",
    "predict": "predict", "kmeans": "kmeans",
    "python_udf": "python",
}


@dataclass(eq=False)
class DataflowNode:
    """One value-semantics operator of a dataflow expression tree.

    Nodes are shared by reference when a :class:`Dataset` feeds several
    consumers (the subtree then lowers once, like a named legacy fragment).
    ``label`` carries the fragment name for reports and output naming; it is
    excluded from the canonical form so renaming intermediates never changes
    a fingerprint.
    """

    kind: str
    params: dict[str, Any] = field(default_factory=dict)
    inputs: tuple["DataflowNode", ...] = ()
    engine: str | None = None
    label: str | None = None

    def canonical(self) -> str:
        """Deterministic structural form, the unit fingerprints hash over."""
        children = ",".join(child.canonical() for child in self.inputs)
        return (f"{self.kind}@{self.engine or '<auto>'}"
                f"({canonical_value(self.params)})[{children}]")

    def walk(self) -> Iterable["DataflowNode"]:
        """All nodes of the subtree, children first, shared nodes once."""
        seen: set[int] = set()

        def visit(node: "DataflowNode") -> Iterable["DataflowNode"]:
            if id(node) in seen:
                return
            seen.add(id(node))
            for child in node.inputs:
                yield from visit(child)
            yield node

        yield from visit(self)


class Dataset:
    """A lazily-built dataflow expression; every method returns a new handle."""

    def __init__(self, node: DataflowNode) -> None:
        self.node = node

    # -- relational-style combinators --------------------------------------------------

    def filter(self, predicate: Any) -> "Dataset":
        """Keep rows satisfying a structured predicate (``col("age") > 60``).

        The predicate is canonicalized (commutative operands sorted) so the
        two orders of ``a & b`` fingerprint identically, and stays a typed
        expression all the way down: the pushdown pass absorbs it into the
        leaf scan and the scatter-gather path prunes shards with it.
        """
        return self._chain("filter", {"predicate": as_predicate(predicate)})

    def project(self, *columns: str) -> "Dataset":
        """Keep only the named columns."""
        if len(columns) == 1 and isinstance(columns[0], (list, tuple)):
            columns = tuple(columns[0])
        if not columns:
            raise CompilationError("project needs at least one column")
        return self._chain("project", {"columns": [str(c) for c in columns]})

    def join(self, other: "Dataset", *, on: str | None = None,
             left_key: str | None = None, right_key: str | None = None,
             how: str = "inner", engine: str | None = None) -> "Dataset":
        """Equi-join with another dataset on a key column."""
        if on is not None:
            left_key = right_key = on
        if left_key is None or right_key is None:
            raise CompilationError("join needs either on= or both left_key= and right_key=")
        node = DataflowNode("join",
                            {"left_key": left_key, "right_key": right_key, "how": how},
                            (self.node, other.node), engine)
        return Dataset(node)

    def aggregate(self, group_by: Sequence[str] | None = None,
                  aggregates: Sequence[AggregateSpec | tuple] | None = None,
                  *, engine: str | None = None,
                  **named: tuple | str) -> "Dataset":
        """Group-by aggregation.

        Aggregates are given either as :class:`AggregateSpec` objects /
        ``(function, column, alias)`` tuples, or as keyword arguments mapping
        the output alias to ``(function, column)`` — ``count`` may pass
        ``None`` as the column::

            ds.aggregate(["region"], total=("sum", "amount"), n=("count", None))
        """
        specs: list[AggregateSpec] = []
        for item in aggregates or ():
            if isinstance(item, AggregateSpec):
                specs.append(item)
            else:
                function, column, alias = item
                specs.append(AggregateSpec(str(function), column, str(alias)))
        for alias, spec in named.items():
            if isinstance(spec, str):
                function, column = spec, alias
            else:
                function, column = spec
            specs.append(AggregateSpec(str(function), column, alias))
        if not specs:
            raise CompilationError("aggregate needs at least one aggregate spec")
        return self._chain("aggregate", {
            "group_by": [str(c) for c in group_by or []],
            "aggregates": specs,
        }, engine=engine)

    def sort(self, by: str, *, descending: bool = False) -> "Dataset":
        """Sort by a column."""
        return self._chain("sort", {"by": str(by), "descending": descending})

    def limit(self, n: int) -> "Dataset":
        """Keep the first ``n`` rows."""
        return self._chain("limit", {"n": int(n)})

    def top_k(self, by: str, k: int, *, descending: bool = True) -> "Dataset":
        """Keep the ``k`` best rows by a column."""
        return self._chain("top_k", {"by": str(by), "k": int(k),
                                     "descending": descending})

    # -- ML heads ----------------------------------------------------------------------

    def feature_matrix(self, *, feature_columns: Sequence[str] | None = None,
                       label_column: str | None = None,
                       engine: str | None = None) -> "Dataset":
        """Convert tabular rows into a dense feature matrix (and labels)."""
        return self._chain("feature_matrix", {
            "feature_columns": list(feature_columns) if feature_columns else None,
            "label_column": label_column,
        }, engine=engine)

    def train(self, *, label_column: str, model_name: str,
              model_type: str = "mlp", hidden_dims: tuple[int, ...] = (32,),
              epochs: int = 5, batch_size: int = 32,
              engine: str | None = None) -> "Dataset":
        """Train a classifier on this dataset's rows."""
        return self._chain("train", {
            "model_name": model_name,
            "model_type": model_type,
            "label_column": label_column,
            "hidden_dims": tuple(hidden_dims),
            "epochs": epochs,
            "batch_size": batch_size,
        }, engine=engine)

    def predict(self, *, model_name: str, engine: str | None = None) -> "Dataset":
        """Score a trained model on this dataset's rows."""
        return self._chain("predict", {"model_name": model_name}, engine=engine)

    def kmeans(self, *, n_clusters: int, engine: str | None = None) -> "Dataset":
        """Cluster this dataset's rows."""
        return self._chain("kmeans", {"n_clusters": int(n_clusters)}, engine=engine)

    # -- escape hatch ------------------------------------------------------------------

    def apply(self, fn: Callable[..., Any], *others: "Dataset",
              engine: str | None = None) -> "Dataset":
        """An arbitrary Python transformation of this (and other) datasets."""
        inputs = (self.node,) + tuple(other.node for other in others)
        return Dataset(DataflowNode("python_udf", {"fn": fn}, inputs, engine))

    # -- naming ------------------------------------------------------------------------

    def named(self, name: str) -> "Dataset":
        """Label this node (fragment name in reports and ``describe()``)."""
        self.node.label = name
        return self

    @property
    def label(self) -> str | None:
        """The node's fragment label, if any."""
        return self.node.label

    # -- internals ---------------------------------------------------------------------

    def _chain(self, kind: str, params: dict[str, Any], *,
               engine: str | None = None) -> "Dataset":
        # Row-shaped combinators inherit the source engine unless overridden,
        # mirroring how a legacy SQL fragment bound its whole plan to one
        # engine; ML heads pass an explicit engine (or None for the default
        # tensor engine).
        if engine is None and kind not in ("feature_matrix", "train", "predict",
                                           "kmeans"):
            engine = self.node.engine
        return Dataset(DataflowNode(kind, params, (self.node,), engine))

    def describe(self) -> str:
        """Multi-line rendering of the expression tree."""
        lines: list[str] = []

        def visit(node: DataflowNode, depth: int) -> None:
            label = f" [{node.label}]" if node.label else ""
            interesting = {k: v for k, v in node.params.items()
                           if isinstance(v, (str, int, float, bool))}
            params = ", ".join(f"{k}={v!r}" for k, v in sorted(interesting.items()))
            lines.append(f"{'  ' * depth}{node.kind} @ {node.engine or '<auto>'}"
                         f"({params}){label}")
            for child in node.inputs:
                visit(child, depth + 1)

        visit(self.node, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Dataset({self.node.kind} @ {self.node.engine or '<auto>'})"


class DatasetSource:
    """Scans over one engine; obtained from :func:`dataset`."""

    def __init__(self, engine: str | None) -> None:
        self.engine = engine

    # -- relational --------------------------------------------------------------------

    def table(self, name: str, columns: Sequence[str] | None = None) -> Dataset:
        """A relational table scan."""
        return Dataset(DataflowNode("scan", {
            "table": str(name),
            "columns": list(columns) if columns else None,
        }, (), self.engine))

    def index_seek(self, table: str, column: str, value: Any) -> Dataset:
        """An index lookup on one column value."""
        return Dataset(DataflowNode("index_seek", {
            "table": str(table), "column": str(column), "value": value,
        }, (), self.engine))

    # -- key/value ---------------------------------------------------------------------

    def kv(self, keys: Sequence[str] | None = None, *,
           key_prefix: str | None = None) -> Dataset:
        """A key/value point or prefix lookup."""
        if keys is None and key_prefix is None:
            raise CompilationError("kv needs keys or a key_prefix")
        return Dataset(DataflowNode("kv_get", {
            "keys": list(keys) if keys is not None else None,
            "key_prefix": key_prefix,
        }, (), self.engine))

    def kv_range(self, start: str | None = None, end: str | None = None) -> Dataset:
        """A key-ordered key/value range scan."""
        return Dataset(DataflowNode("kv_range", {"start": start, "end": end},
                                    (), self.engine))

    # -- timeseries --------------------------------------------------------------------

    def timeseries(self, series_prefix: str, *, start: Any = None,
                   end: Any = None) -> Dataset:
        """Per-series summary features for every series under a prefix."""
        return Dataset(DataflowNode("ts_summarize", {
            "series_prefix": str(series_prefix), "start": start, "end": end,
        }, (), self.engine))

    def series(self, key: str, *, start: Any = None, end: Any = None) -> Dataset:
        """The raw points of one series."""
        return Dataset(DataflowNode("ts_range", {
            "series": str(key), "start": start, "end": end,
        }, (), self.engine))

    def window(self, series: str, window_s: float, *,
               aggregation: str = "mean") -> Dataset:
        """Tumbling-window aggregation over one series."""
        return Dataset(DataflowNode("window_aggregate", {
            "series": str(series), "window_s": window_s, "aggregation": aggregation,
        }, (), self.engine))

    # -- text and graph ----------------------------------------------------------------

    def text(self) -> "TextSource":
        """Handle onto a document engine's search and feature reads."""
        return TextSource(self.engine)

    def graph(self) -> "GraphSource":
        """Handle onto a graph engine's traversals."""
        return GraphSource(self.engine)

    def __repr__(self) -> str:
        return f"DatasetSource(engine={self.engine!r})"


class TextSource:
    """Reads over a document (text) engine."""

    def __init__(self, engine: str | None) -> None:
        self.engine = engine

    def search(self, query: str, *, top_k: int = 10) -> Dataset:
        """Ranked full-text search over the indexed documents."""
        return Dataset(DataflowNode("text_search", {
            "query": str(query), "top_k": int(top_k),
        }, (), self.engine))

    def keyword_features(self, keywords: Sequence[str], *,
                         doc_prefix: str | None = None,
                         id_column: str = "doc_id") -> Dataset:
        """Keyword-count features per document."""
        return Dataset(DataflowNode("keyword_features", {
            "keywords": [str(k) for k in keywords],
            "doc_prefix": doc_prefix,
            "id_column": id_column,
        }, (), self.engine))


class GraphSource:
    """Reads over a graph engine."""

    def __init__(self, engine: str | None) -> None:
        self.engine = engine

    def nodes(self, label: str = "") -> Dataset:
        """Properties of every node with the given label."""
        return Dataset(DataflowNode("graph_nodes", {"label": label}, (), self.engine))

    def shortest_path(self, start: str, end: str, *, weighted: bool = False,
                      edge_label: str | None = None) -> Dataset:
        """The shortest path between two nodes."""
        return Dataset(DataflowNode("shortest_path", {
            "start": start, "end": end, "weighted": weighted,
            "edge_label": edge_label,
        }, (), self.engine))

    def neighborhood(self, node_id: str, property_name: str, *,
                     edge_label: str | None = None,
                     aggregation: str = "mean") -> Dataset:
        """An aggregate over one node's neighbourhood property values."""
        return Dataset(DataflowNode("neighborhood", {
            "node_id": node_id, "property_name": property_name,
            "edge_label": edge_label, "aggregation": aggregation,
        }, (), self.engine))

    def match(self, start_label: str, steps: Sequence[Any] = ()) -> Dataset:
        """Label-path pattern matching."""
        return Dataset(DataflowNode("graph_match", {
            "start_label": start_label, "steps": list(steps),
        }, (), self.engine))


def dataset(engine: str | None = None) -> DatasetSource:
    """Scans over the named engine (``None`` lets placement pick defaults)."""
    return DatasetSource(engine)


def resolve_node_engine(node: DataflowNode, catalog: Any) -> str | None:
    """The engine a dataflow node would execute on, or ``None``.

    Mirrors the frontend's default-engine rule without raising: explicit
    bindings win, otherwise the node's paradigm resolves through the
    catalog.  Shared by the view registry (which engines to subscribe to)
    and the incremental compiler (which engine a delta source reads) so the
    two can never disagree.
    """
    if node.engine is not None:
        return node.engine
    paradigm = KIND_PARADIGMS.get(node.kind)
    if paradigm is None:
        return None
    try:
        return catalog.default_engine_for(paradigm).name
    except Exception:  # noqa: BLE001 - no engine registered for the paradigm
        return None


def view_dataset(name: str) -> Dataset:
    """A read of a registered materialized view, as a composable dataset.

    Programs composed over a view read its *maintained* state: the executor
    serves the ``view_read`` from the system's view registry, refreshing
    first when the view's maintenance policy calls for it.  (Programs whose
    subtree merely *matches* a registered view's expression are rewritten to
    this form automatically at compile time.)
    """
    return Dataset(DataflowNode("view_read", {"view": str(name)}, (), None))


class DataflowProgram:
    """A named set of output datasets — the unit sessions prepare and run.

    Implements the same protocol as the legacy
    :class:`~repro.eide.program.HeterogeneousProgram` (``name`` /
    ``fingerprint`` / ``freeze`` / ``declared_params``), so
    :meth:`~repro.client.Session.prepare`,
    :meth:`~repro.core.system.PolystorePlusPlus.execute` and the plan cache
    accept either interchangeably.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise CompilationError("program name must be non-empty")
        self.name = name
        self._outputs: dict[str, DataflowNode] = {}
        self._frozen = False

    # -- construction ------------------------------------------------------------------

    def output(self, name: str, dataset: Dataset) -> Dataset:
        """Mark a dataset as a named program output."""
        if self._frozen:
            raise CompilationError(
                f"program {self.name!r} is frozen; prepared programs cannot be mutated"
            )
        if name in self._outputs:
            raise CompilationError(f"duplicate output name {name!r}")
        if not isinstance(dataset, Dataset):
            raise CompilationError(
                f"output {name!r} must be a Dataset, got {type(dataset).__name__}"
            )
        for existing_name, node in self._outputs.items():
            if node is dataset.node:
                # The executor names results by the producing operator, so
                # one node cannot answer under two output names — fail loudly
                # instead of silently dropping the first name.
                raise CompilationError(
                    f"dataset is already output as {existing_name!r}; outputs "
                    f"must be distinct expression trees (chain e.g. "
                    f".project(...) to output it twice)"
                )
        self._outputs[name] = dataset.node
        return dataset

    # -- identity ----------------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` was called (structure is now immutable)."""
        return self._frozen

    def freeze(self) -> "DataflowProgram":
        """Make the program immutable; returns ``self`` for chaining."""
        self._frozen = True
        return self

    def fingerprint(self) -> str:
        """Deterministic identity hash over the canonical dataflow form.

        Structurally equivalent programs — whether built through this API or
        the legacy builder — produce the same fingerprint and therefore share
        one plan-cache entry.
        """
        if not self._outputs:
            raise CompilationError(f"program {self.name!r} declares no outputs")
        return fingerprint_outputs(self.name, self._outputs)

    def declared_params(self) -> dict[str, Param]:
        """All :class:`Param` placeholders appearing anywhere in the trees."""
        found: dict[str, Param] = {}
        for root in self._outputs.values():
            for node in root.walk():
                find_params(node.params, found)
        return found

    # -- access ------------------------------------------------------------------------

    @property
    def outputs(self) -> list[str]:
        """Names of the program outputs, in declaration order."""
        return list(self._outputs)

    def output_items(self) -> list[tuple[str, DataflowNode]]:
        """``(name, root node)`` pairs, in declaration order."""
        return list(self._outputs.items())

    def __len__(self) -> int:
        return sum(1 for _ in self._walk_all())

    def _walk_all(self) -> Iterable[DataflowNode]:
        seen: set[int] = set()
        for root in self._outputs.values():
            for node in root.walk():
                if id(node) not in seen:
                    seen.add(id(node))
                    yield node

    def describe(self) -> str:
        """Multi-line summary of the program's expression trees."""
        lines = [f"DataflowProgram({self.name!r}, outputs={len(self._outputs)})"]
        for name, node in self._outputs.items():
            lines.append(f"  {name}:")
            for line in Dataset(node).describe().splitlines():
                lines.append(f"    {line}")
        return "\n".join(lines)


def fingerprint_outputs(name: str, outputs: dict[str, DataflowNode]) -> str:
    """Hash a program name plus its output trees' canonical forms."""
    digest = hashlib.sha256()
    digest.update(name.encode())
    for output_name, node in outputs.items():
        digest.update(b"\x00")
        digest.update(output_name.encode())
        digest.update(b"\x1f")
        digest.update(node.canonical().encode())
    return digest.hexdigest()


# -- legacy conversion ------------------------------------------------------------------


def to_dataflow(program: HeterogeneousProgram) -> DataflowProgram:
    """Convert a legacy fragment program into its canonical dataflow form.

    SQL fragments are parsed here (once per conversion) into the same
    structured plans the new API builds directly, so the fingerprint and the
    lowered IR are identical whichever API authored the program.
    """
    flow = DataflowProgram(program.name)
    trees: dict[str, DataflowNode] = {}
    for fragment in program.fragments:
        node = _fragment_to_node(fragment, trees)
        for member in node.walk():
            if member.label is None:
                member.label = fragment.name
        trees[fragment.name] = node
    for output in program.outputs:
        flow.output(output, Dataset(trees[output]))
    return flow


def _fragment_to_node(fragment: Any, trees: dict[str, DataflowNode]) -> DataflowNode:
    paradigm = fragment.paradigm
    params = fragment.params
    engine = fragment.engine
    inputs = tuple(trees[name] for name in fragment.inputs)
    if paradigm == "sql":
        return _sql_to_node(fragment, engine)
    if paradigm == "kv_lookup":
        return DataflowNode("kv_get", {"keys": params.get("keys"),
                                       "key_prefix": params.get("key_prefix")},
                            inputs, engine)
    if paradigm == "timeseries_summary":
        return DataflowNode("ts_summarize", {
            "series_prefix": params["series_prefix"],
            "start": params.get("start"), "end": params.get("end"),
        }, inputs, engine)
    if paradigm == "window_aggregate":
        return DataflowNode("window_aggregate", {
            "series": params["series"], "window_s": params["window_s"],
            "aggregation": params.get("aggregation", "mean"),
        }, inputs, engine)
    if paradigm == "graph_query":
        return _graph_to_node(fragment, engine, inputs)
    if paradigm == "text_search":
        return DataflowNode("text_search", {
            "query": params["query"], "top_k": params.get("top_k", 10),
        }, inputs, engine)
    if paradigm == "text_features":
        return DataflowNode("keyword_features", {
            "keywords": list(params["keywords"]),
            "doc_prefix": params.get("doc_prefix"),
            "id_column": params.get("id_column", "doc_id"),
        }, inputs, engine)
    if paradigm == "join":
        return DataflowNode("join", {
            "left_key": params["left_key"], "right_key": params["right_key"],
            "how": params.get("how", "inner"),
        }, inputs, engine)
    if paradigm == "feature_matrix":
        return DataflowNode("feature_matrix", {
            "feature_columns": params.get("feature_columns"),
            "label_column": params.get("label_column"),
        }, inputs, engine)
    if paradigm == "train":
        return DataflowNode("train", dict(params), inputs, engine)
    if paradigm == "predict":
        return DataflowNode("predict", {"model_name": params["model_name"]},
                            inputs, engine)
    if paradigm == "kmeans":
        return DataflowNode("kmeans", {"n_clusters": params["n_clusters"]},
                            inputs, engine)
    if paradigm == "python":
        return DataflowNode("python_udf", {"fn": params["fn"]}, inputs, engine)
    raise CompilationError(f"cannot convert paradigm {paradigm!r} to dataflow")


def _sql_to_node(fragment: Any, engine: str | None) -> DataflowNode:
    from repro.stores.relational.planner import (
        AggregatePlan,
        FilterPlan,
        JoinPlan,
        LimitPlan,
        ProjectPlan,
        ScanPlan,
        SortPlan,
        build_plan,
    )
    from repro.stores.relational.sql import parse_select

    query = fragment.params.get("query")
    if not query:
        raise CompilationError(f"SQL fragment {fragment.name!r} has no query text")
    plan = build_plan(parse_select(query))

    def convert(plan: Any) -> DataflowNode:
        if isinstance(plan, ScanPlan):
            return DataflowNode("scan", {"table": plan.table,
                                         "columns": plan.columns}, (), engine)
        if isinstance(plan, FilterPlan):
            return DataflowNode("filter",
                                {"predicate": as_predicate(plan.predicate)},
                                (convert(plan.child),), engine)
        if isinstance(plan, ProjectPlan):
            return DataflowNode("project", {"columns": list(plan.columns)},
                                (convert(plan.child),), engine)
        if isinstance(plan, JoinPlan):
            return DataflowNode("join", {
                "left_key": plan.left_key, "right_key": plan.right_key,
                "how": plan.how, "algorithm": plan.algorithm,
            }, (convert(plan.left), convert(plan.right)), engine)
        if isinstance(plan, AggregatePlan):
            return DataflowNode("aggregate", {
                "group_by": list(plan.group_by),
                "aggregates": list(plan.aggregates),
            }, (convert(plan.child),), engine)
        if isinstance(plan, SortPlan):
            return DataflowNode("sort", {"by": plan.by,
                                         "descending": plan.descending},
                                (convert(plan.child),), engine)
        if isinstance(plan, LimitPlan):
            return DataflowNode("limit", {"n": plan.n},
                                (convert(plan.child),), engine)
        raise CompilationError(f"cannot lower plan node {type(plan).__name__}")

    return convert(plan)


def _graph_to_node(fragment: Any, engine: str | None,
                   inputs: tuple[DataflowNode, ...]) -> DataflowNode:
    operation = fragment.params.get("operation")
    params = {k: v for k, v in fragment.params.items() if k != "operation"}
    kind_by_operation = {
        "nodes": "graph_nodes",
        "shortest_path": "shortest_path",
        "neighborhood": "neighborhood",
        "match": "graph_match",
    }
    kind = kind_by_operation.get(operation or "")
    if kind is None:
        raise CompilationError(
            f"unknown graph operation {operation!r} in fragment {fragment.name!r}"
        )
    return DataflowNode(kind, params, inputs, engine)
