"""Synthetic workload generators for the paper's motivating applications.

Every generator entry point takes a deterministic ``seed`` (see
:mod:`repro.workloads.generator`), so benchmarks and tests are reproducible
run-to-run; :data:`~repro.workloads.generator.DEFAULT_SEED` applies when none
is given.
"""

from repro.workloads.generator import DEFAULT_SEED, as_rng, rng_for
from repro.workloads.mimic import (
    MimicDataset,
    build_admission_history_program,
    build_mimic_program,
    generate_mimic,
    load_mimic,
)
from repro.workloads.recommendation import (
    RecommendationDataset,
    build_recommendation_program,
    build_top_spenders_program,
    generate_recommendation,
    load_recommendation,
)
from repro.workloads.snorkel import (
    LabelingPipelineResult,
    build_snorkel_program,
    generate_documents,
    load_documents,
    run_labeling_pipeline,
    weak_labels,
)

__all__ = [
    "DEFAULT_SEED",
    "rng_for",
    "as_rng",
    "MimicDataset",
    "generate_mimic",
    "load_mimic",
    "build_mimic_program",
    "build_admission_history_program",
    "RecommendationDataset",
    "generate_recommendation",
    "load_recommendation",
    "build_recommendation_program",
    "build_top_spenders_program",
    "generate_documents",
    "load_documents",
    "run_labeling_pipeline",
    "weak_labels",
    "build_snorkel_program",
    "LabelingPipelineResult",
]
