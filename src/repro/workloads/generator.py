"""Shared random-data utilities for the synthetic workload generators."""

from __future__ import annotations

import numpy as np

_FIRST_NAMES = ("alex", "jordan", "casey", "taylor", "morgan", "riley", "avery",
                "quinn", "rowan", "sage", "emerson", "finley")
_LAST_NAMES = ("smith", "johnson", "lee", "garcia", "chen", "patel", "okafor",
               "mueller", "rossi", "tanaka", "kim", "novak")

_NOTE_PHRASES_STABLE = (
    "patient resting comfortably", "vitals stable overnight", "tolerating diet well",
    "pain controlled with medication", "ambulating without assistance",
    "no acute distress observed", "wound healing as expected",
)
_NOTE_PHRASES_ACUTE = (
    "possible sepsis workup started", "placed on ventilator support",
    "elevated lactate levels", "fever spiking despite antibiotics",
    "increasing oxygen requirement", "transferred to intensive care",
    "blood cultures pending", "pressors initiated for hypotension",
)


#: Seed used whenever a workload entry point is called without one, so every
#: benchmark and test run sees identical synthetic data by default.
DEFAULT_SEED = 7

def rng_for(seed: int | None = None) -> np.random.Generator:
    """A reproducible random generator (``None`` uses :data:`DEFAULT_SEED`)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce a seed (or ``None``) into a generator; pass generators through.

    Every generator entry point accepts this union, so callers can thread one
    shared generator through a whole dataset build *or* pin each helper with
    its own deterministic seed.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return rng_for(rng)


def random_name(rng: np.random.Generator | int) -> str:
    """A plausible person name.

    ``rng`` is required (generator or seed): an implicit per-call default
    seed would make every argument-less call return the identical name.
    """
    rng = as_rng(rng)
    first = _FIRST_NAMES[int(rng.integers(len(_FIRST_NAMES)))]
    last = _LAST_NAMES[int(rng.integers(len(_LAST_NAMES)))]
    return f"{first} {last}"


def clinical_note(rng: np.random.Generator | int, *, acute: bool,
                  sentences: int = 4) -> str:
    """A synthetic clinical note; acute notes mention sepsis/ventilator terms."""
    rng = as_rng(rng)
    phrases = []
    for _ in range(max(1, sentences)):
        pool = _NOTE_PHRASES_ACUTE if (acute and rng.random() < 0.7) else _NOTE_PHRASES_STABLE
        phrases.append(pool[int(rng.integers(len(pool)))])
    return ". ".join(phrases) + "."


def vital_sign_series(rng: np.random.Generator | int, *,
                      n_points: int, base: float,
                      spread: float, trend: float = 0.0,
                      start_time: float = 0.0, interval_s: float = 60.0
                      ) -> list[tuple[float, float]]:
    """A synthetic vital-sign series with noise and an optional trend."""
    rng = as_rng(rng)
    times = start_time + interval_s * np.arange(n_points)
    values = base + trend * np.arange(n_points) + rng.normal(0.0, spread, size=n_points)
    return [(float(t), float(v)) for t, v in zip(times, values)]
