"""Synthetic MIMIC-III-like clinical workload (paper Figure 2).

Real MIMIC-III requires credentialed access, so this generator produces a
synthetic dataset with the same cross-store shape:

* **admissions** (relational): patient demographics, admission metadata and
  the ``long_stay`` label (> 5 days).
* **vital signs** (timeseries): one heart-rate series per patient from the
  bedside monitors.
* **clinical notes** (text): doctors'/nurses' notes; acutely ill patients'
  notes mention sepsis/ventilator terms.
* **ward transfers** (graph): the path each patient takes through hospital
  wards.

The label is correlated with age, number of procedures, abnormal vitals and
acute note language so that the Figure 2 prediction task is learnable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datamodel.schema import Column, DataType, Schema
from repro.datamodel.table import Table
from repro.eide.program import HeterogeneousProgram
from repro.stores.graph.engine import GraphEngine
from repro.stores.relational.engine import RelationalEngine
from repro.stores.text.engine import TextEngine
from repro.stores.timeseries.engine import TimeseriesEngine
from repro.workloads.generator import clinical_note, rng_for, vital_sign_series

ADMISSIONS_SCHEMA = Schema([
    Column("pid", DataType.INT),
    Column("age", DataType.INT),
    Column("gender", DataType.STRING),
    Column("admit_date", DataType.FLOAT),
    Column("num_procedures", DataType.INT),
    Column("prior_admissions", DataType.INT),
    Column("diagnosis", DataType.STRING),
    Column("long_stay", DataType.INT),
])

_WARDS = ("emergency", "icu", "surgery", "cardiology", "general", "recovery")
_DIAGNOSES = ("pneumonia", "heart failure", "sepsis", "fracture", "copd", "stroke")


@dataclass
class MimicDataset:
    """The generated clinical dataset, one field per data store."""

    admissions: Table
    vitals: dict[int, list[tuple[float, float]]]
    notes: dict[int, str]
    transfers: list[tuple[int, str, str]]
    keywords: tuple[str, ...] = ("sepsis", "ventilator", "stable")

    @property
    def num_patients(self) -> int:
        """Number of generated patients."""
        return len(self.admissions)


def generate_mimic(num_patients: int = 500, *, points_per_patient: int = 48,
                   seed: int = 7) -> MimicDataset:
    """Generate a synthetic MIMIC-like dataset."""
    rng = rng_for(seed)
    rows = []
    vitals: dict[int, list[tuple[float, float]]] = {}
    notes: dict[int, str] = {}
    transfers: list[tuple[int, str, str]] = []
    for pid in range(1, num_patients + 1):
        age = int(rng.integers(18, 95))
        num_procedures = int(rng.poisson(2))
        prior_admissions = int(rng.poisson(1))
        acuity = (
            0.02 * (age - 50)
            + 0.5 * num_procedures
            + 0.4 * prior_admissions
            + rng.normal(0.0, 1.0)
        )
        long_stay = int(acuity > 1.5)
        diagnosis = _DIAGNOSES[int(rng.integers(len(_DIAGNOSES)))]
        rows.append((
            pid, age, "F" if rng.random() < 0.5 else "M",
            float(rng.uniform(0, 365 * 24 * 3600)), num_procedures, prior_admissions,
            diagnosis, long_stay,
        ))
        base_hr = 75.0 + (18.0 if long_stay else 0.0) + rng.normal(0, 4)
        vitals[pid] = vital_sign_series(rng, n_points=points_per_patient, base=base_hr,
                                        spread=6.0 if long_stay else 3.0,
                                        trend=0.05 if long_stay else 0.0)
        notes[pid] = clinical_note(rng, acute=bool(long_stay))
        path_length = int(rng.integers(2, 5))
        wards = ["emergency"] + [
            _WARDS[int(rng.integers(1, len(_WARDS)))] for _ in range(path_length)
        ]
        for src, dst in zip(wards[:-1], wards[1:]):
            transfers.append((pid, src, dst))
    return MimicDataset(Table(ADMISSIONS_SCHEMA, rows), vitals, notes, transfers)


def load_mimic(dataset: MimicDataset, *, relational: RelationalEngine,
               timeseries: TimeseriesEngine, text: TextEngine,
               graph: GraphEngine | None = None) -> None:
    """Load a generated dataset into its engines (one store per data model)."""
    relational.load_table("admissions", dataset.admissions)
    relational.create_index("admissions", "pid", kind="hash")
    for pid, points in dataset.vitals.items():
        timeseries.append_many(f"hr/{pid}", points)
    text.add_documents([
        {"doc_id": f"note/{pid}", "text": note, "metadata": {"pid": pid}}
        for pid, note in dataset.notes.items()
    ])
    if graph is not None:
        for ward in _WARDS:
            if not graph.graph.has_node(ward):
                graph.add_node(ward, "ward", {"name": ward})
        for pid, src, dst in dataset.transfers:
            graph.add_edge(src, dst, "transfer", {"pid": pid})


def build_mimic_program(*, relational: str = "clinical-db", timeseries: str = "monitors",
                        text: str = "notes-db", ml: str = "dnn-engine",
                        min_age: int | None = None,
                        keywords: tuple[str, ...] = ("sepsis", "ventilator", "stable"),
                        epochs: int = 3) -> HeterogeneousProgram:
    """The Figure 2 heterogeneous program: will the patient stay > 5 days.

    P (admissions, relational) ⋈ S (vital-sign summaries, stream) ⋈ notes
    features (text) -> feature vector -> neural-network training.
    """
    program = HeterogeneousProgram("mimic-icu-stay")
    where = f" WHERE age >= {min_age}" if min_age is not None else ""
    program.sql(
        "admissions",
        "SELECT pid, age, num_procedures, prior_admissions, long_stay "
        f"FROM admissions{where}",
        engine=relational,
    )
    program.timeseries_summary("vitals", series_prefix="hr/", engine=timeseries)
    program.text_features("note_features", keywords=keywords, doc_prefix="note/",
                          id_column="pid", engine=text)
    program.join("clinical", left="admissions", right="vitals", on="pid")
    program.join("features", left="clinical", right="note_features", on="pid")
    program.train("stay_model", features="features", label_column="long_stay",
                  hidden_dims=(32, 16), epochs=epochs, engine=ml)
    program.output("stay_model")
    return program


def build_admission_history_program(pid: int, *, relational: str = "clinical-db"
                                    ) -> HeterogeneousProgram:
    """The §III walk-through query: a patient's admissions sorted by date."""
    program = HeterogeneousProgram("mimic-admission-history")
    program.sql(
        "history",
        f"SELECT pid, admit_date, diagnosis FROM admissions WHERE pid = {pid} "
        "ORDER BY admit_date",
        engine=relational,
    )
    program.output("history")
    return program
