"""Synthetic retail recommendation workload (paper Figure 1).

An enterprise keeps customers and transactions in an RDBMS, user profiles
and external events in a key/value store, and clickstreams in a timeseries
store.  The recommendation program joins all three to predict which
customers will convert on the next best offer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datamodel.schema import Column, DataType, Schema
from repro.datamodel.table import Table
from repro.eide.program import HeterogeneousProgram
from repro.stores.keyvalue.engine import KeyValueEngine
from repro.stores.relational.engine import RelationalEngine
from repro.stores.timeseries.engine import TimeseriesEngine
from repro.workloads.generator import random_name, rng_for

CUSTOMERS_SCHEMA = Schema([
    Column("customer_id", DataType.INT),
    Column("name", DataType.STRING),
    Column("region", DataType.STRING),
    Column("tenure_years", DataType.INT),
])

TRANSACTIONS_SCHEMA = Schema([
    Column("txn_id", DataType.INT),
    Column("customer_id", DataType.INT),
    Column("amount", DataType.FLOAT),
    Column("category", DataType.STRING),
    Column("timestamp", DataType.FLOAT),
])

_REGIONS = ("north", "south", "east", "west")
_CATEGORIES = ("grocery", "electronics", "travel", "apparel", "home")


@dataclass
class RecommendationDataset:
    """The generated retail dataset, one field per data store."""

    customers: Table
    transactions: Table
    profiles: dict[str, dict[str, object]]
    clickstreams: dict[int, list[tuple[float, float]]]

    @property
    def num_customers(self) -> int:
        """Number of generated customers."""
        return len(self.customers)


def generate_recommendation(num_customers: int = 500, *, transactions_per_customer: int = 8,
                            clicks_per_customer: int = 30, seed: int = 11
                            ) -> RecommendationDataset:
    """Generate a synthetic retail dataset with a learnable conversion label."""
    rng = rng_for(seed)
    customer_rows = []
    transaction_rows = []
    profiles: dict[str, dict[str, object]] = {}
    clickstreams: dict[int, list[tuple[float, float]]] = {}
    txn_id = 0
    for customer_id in range(1, num_customers + 1):
        tenure = int(rng.integers(0, 15))
        region = _REGIONS[int(rng.integers(len(_REGIONS)))]
        customer_rows.append((customer_id, random_name(rng), region, tenure))
        n_txns = max(1, int(rng.poisson(transactions_per_customer)))
        total_spend = 0.0
        for _ in range(n_txns):
            txn_id += 1
            amount = float(rng.gamma(2.0, 40.0))
            total_spend += amount
            transaction_rows.append((
                txn_id, customer_id, amount,
                _CATEGORIES[int(rng.integers(len(_CATEGORIES)))],
                float(rng.uniform(0, 90 * 24 * 3600)),
            ))
        click_rate = rng.uniform(0.5, 5.0)
        clicks = [(float(i * 3600), float(rng.poisson(click_rate)))
                  for i in range(clicks_per_customer)]
        clickstreams[customer_id] = clicks
        engagement = click_rate / 5.0 + tenure / 15.0 + min(total_spend, 2000.0) / 2000.0
        converted = int(engagement + rng.normal(0, 0.35) > 1.2)
        profiles[f"customer/{customer_id}"] = {
            "customer_id": customer_id,
            "loyalty_tier": int(min(3, tenure // 5)),
            "email_opt_in": bool(rng.random() < 0.6),
            "converted": converted,
        }
    return RecommendationDataset(
        customers=Table(CUSTOMERS_SCHEMA, customer_rows),
        transactions=Table(TRANSACTIONS_SCHEMA, transaction_rows),
        profiles=profiles,
        clickstreams=clickstreams,
    )


def load_recommendation(dataset: RecommendationDataset, *, relational: RelationalEngine,
                        keyvalue: KeyValueEngine, timeseries: TimeseriesEngine) -> None:
    """Load the retail dataset into its engines."""
    relational.load_table("customers", dataset.customers)
    relational.load_table("transactions", dataset.transactions)
    relational.create_index("transactions", "customer_id", kind="hash")
    keyvalue.put_many(dataset.profiles)
    for customer_id, clicks in dataset.clickstreams.items():
        timeseries.append_many(f"clicks/{customer_id}", clicks)


def build_recommendation_program(*, relational: str = "sales-db", keyvalue: str = "profiles",
                                 timeseries: str = "clickstream", ml: str = "reco-ml",
                                 epochs: int = 3) -> HeterogeneousProgram:
    """The Figure 1 recommendation program across RDBMS, KV and timeseries stores."""
    program = HeterogeneousProgram("next-best-offer")
    program.sql(
        "spend",
        "SELECT customer_id, sum(amount) AS total_spend, count(*) AS n_orders "
        "FROM transactions GROUP BY customer_id",
        engine=relational,
    )
    program.kv_lookup("profiles", key_prefix="customer/", engine=keyvalue)
    program.timeseries_summary("engagement", series_prefix="clicks/",
                               engine=timeseries)
    program.join("behaviour", left="spend", right="engagement",
                 left_key="customer_id", right_key="pid")
    program.join("features", left="behaviour", right="profiles",
                 left_key="customer_id", right_key="customer_id")
    program.train("offer_model", features="features", label_column="converted",
                  epochs=epochs, engine=ml)
    program.output("offer_model")
    return program


def build_top_spenders_program(k: int = 10, *, relational: str = "sales-db"
                               ) -> HeterogeneousProgram:
    """A reporting query: the top-k customers by total spend."""
    program = HeterogeneousProgram("top-spenders")
    program.sql(
        "top",
        "SELECT customer_id, sum(amount) AS total_spend FROM transactions "
        f"GROUP BY customer_id ORDER BY total_spend DESC LIMIT {k}",
        engine=relational,
    )
    program.output("top")
    return program
