"""Snorkel-style SQL-in-the-training-loop workload (paper Figure 3).

The paper's Figure 3 shows a weak-supervision pipeline where ``load_data``
SQL calls are interspersed in the mini-batch SGD loop — the tight SQL/ML
integration Polystore++ wants to identify and accelerate.  This module
provides:

* a generator for an unlabeled-documents table plus labeling functions,
* :func:`run_labeling_pipeline` — the epoch/batch loop issuing a SQL query
  per batch, applying labeling functions, and taking SGD steps,
* a heterogeneous-program builder expressing the same pipeline so the
  Polystore++ compiler can see (and deduplicate/accelerate) the repeated
  ``load_data`` scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.datamodel.schema import Column, DataType, Schema
from repro.datamodel.table import Table
from repro.eide.program import HeterogeneousProgram
from repro.stores.ml.logistic import LogisticRegression
from repro.stores.relational.engine import RelationalEngine
from repro.workloads.generator import rng_for

DOCUMENTS_SCHEMA = Schema([
    Column("doc_id", DataType.INT),
    Column("length", DataType.INT),
    Column("num_tables", DataType.INT),
    Column("num_figures", DataType.INT),
    Column("caption_overlap", DataType.FLOAT),
    Column("header_score", DataType.FLOAT),
    Column("true_label", DataType.INT),
])

#: Labeling functions: heuristic votes of -1 (abstain), 0 or 1.
LabelingFunction = Callable[[dict[str, object]], int]


def _lf_many_tables(row: dict[str, object]) -> int:
    return 1 if int(row["num_tables"]) >= 3 else -1


def _lf_caption_overlap(row: dict[str, object]) -> int:
    return 1 if float(row["caption_overlap"]) > 0.6 else -1


def _lf_short_document(row: dict[str, object]) -> int:
    return 0 if int(row["length"]) < 400 else -1


def _lf_header_score(row: dict[str, object]) -> int:
    score = float(row["header_score"])
    if score > 0.7:
        return 1
    if score < 0.2:
        return 0
    return -1


DEFAULT_LABELING_FUNCTIONS: tuple[LabelingFunction, ...] = (
    _lf_many_tables, _lf_caption_overlap, _lf_short_document, _lf_header_score,
)


def generate_documents(num_documents: int = 2000, *, seed: int = 23) -> Table:
    """Generate the unlabeled-documents table stored in the RDBMS."""
    rng = rng_for(seed)
    rows = []
    for doc_id in range(1, num_documents + 1):
        is_rich = rng.random() < 0.45          # documents with extractable tables
        num_tables = int(rng.poisson(4 if is_rich else 1))
        num_figures = int(rng.poisson(2))
        length = int(rng.integers(100, 3000))
        caption_overlap = float(np.clip(rng.normal(0.7 if is_rich else 0.3, 0.15), 0, 1))
        header_score = float(np.clip(rng.normal(0.75 if is_rich else 0.25, 0.2), 0, 1))
        rows.append((doc_id, length, num_tables, num_figures, caption_overlap,
                     header_score, int(is_rich)))
    return Table(DOCUMENTS_SCHEMA, rows)


def load_documents(table: Table, relational: RelationalEngine,
                   *, table_name: str = "documents") -> None:
    """Load the documents table into the relational engine."""
    relational.load_table(table_name, table)


def weak_labels(rows: list[dict[str, object]],
                labeling_functions: tuple[LabelingFunction, ...] = DEFAULT_LABELING_FUNCTIONS
                ) -> np.ndarray:
    """Majority-vote labels from the labeling functions (abstains excluded)."""
    labels = []
    for row in rows:
        votes = [lf(row) for lf in labeling_functions]
        votes = [v for v in votes if v >= 0]
        labels.append(round(sum(votes) / len(votes)) if votes else 0)
    return np.array(labels, dtype=np.float64)


@dataclass
class LabelingPipelineResult:
    """Outcome of one run of the Snorkel-style loop."""

    epochs: int
    batches: int
    sql_queries_issued: int
    rows_loaded: int
    losses: list[float] = field(default_factory=list)
    accuracy_vs_true: float = 0.0


def run_labeling_pipeline(relational: RelationalEngine, *, table_name: str = "documents",
                          epochs: int = 3, batch_size: int = 128,
                          learning_rate: float = 0.2,
                          seed: int = 0) -> LabelingPipelineResult:
    """The Figure 3 loop: per batch, load data with SQL, weak-label it, SGD-step.

    Every batch issues a fresh SQL query against the relational engine (as the
    paper's ``load_data(offset=batch, limit=batch_size)`` does), which is why
    the data-access path is such a large fraction of the pipeline's time.
    """
    total = relational.table_statistics(table_name)["rows"]
    feature_columns = ("length", "num_tables", "num_figures", "caption_overlap",
                       "header_score")
    model = LogisticRegression(len(feature_columns), learning_rate=learning_rate)
    sql_queries = 0
    rows_loaded = 0
    losses: list[float] = []
    batches = 0
    for _ in range(epochs):
        for offset in range(0, total, batch_size):
            query = (
                f"SELECT doc_id, length, num_tables, num_figures, caption_overlap, "
                f"header_score FROM {table_name} WHERE doc_id > {offset} "
                f"AND doc_id <= {offset + batch_size}"
            )
            batch = relational.execute_sql(query)
            sql_queries += 1
            rows_loaded += len(batch)
            if not len(batch):
                continue
            rows = batch.to_dicts()
            labels = weak_labels(rows)
            features = np.array([[float(r[c]) for c in feature_columns] for r in rows])
            # Normalize the length feature so SGD stays well conditioned.
            features[:, 0] = features[:, 0] / 3000.0
            losses.extend(model.fit(features, labels, epochs=1, batch_size=len(rows),
                                    seed=seed))
            batches += 1
    # Accuracy against the hidden true label, evaluated on the full table.
    full = relational.execute_sql(
        f"SELECT length, num_tables, num_figures, caption_overlap, header_score, "
        f"true_label FROM {table_name}")
    rows = full.to_dicts()
    features = np.array([[float(r[c]) for c in feature_columns] for r in rows])
    features[:, 0] = features[:, 0] / 3000.0
    truth = np.array([float(r["true_label"]) for r in rows])
    predictions = model.predict(features)
    accuracy = float(np.mean(predictions == truth)) if len(truth) else 0.0
    return LabelingPipelineResult(
        epochs=epochs,
        batches=batches,
        sql_queries_issued=sql_queries,
        rows_loaded=rows_loaded,
        losses=losses,
        accuracy_vs_true=accuracy,
    )


def build_snorkel_program(*, relational: str = "corpus-db", ml: str = "label-ml",
                          epochs: int = 3) -> HeterogeneousProgram:
    """The same pipeline as one declarative heterogeneous program.

    Expressed this way, the Polystore++ compiler sees a single ``load_data``
    scan feeding training (instead of one SQL round trip per batch), so CSE
    and data-access offload apply.
    """
    program = HeterogeneousProgram("snorkel-labeling")
    program.sql(
        "load_data",
        "SELECT doc_id, length, num_tables, num_figures, caption_overlap, header_score, "
        "true_label FROM documents",
        engine=relational,
    )
    program.train("label_model", features="load_data", label_column="true_label",
                  model_type="logistic", epochs=epochs, engine=ml)
    program.output("label_model")
    return program
