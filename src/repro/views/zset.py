"""Z-sets: the weighted-record algebra incremental maintenance computes in.

A Z-set (DBSP's generalized multiset) maps records to integer weights: a
weight of ``+2`` means the record appears twice, ``-1`` cancels one earlier
appearance, and a record whose weights sum to zero is *annihilated* —
physically removed, exactly as if it was never inserted.  Both base-table
deltas and operator outputs are Z-sets, which is what makes the delta
operators composable: addition is associative and commutative, so batches
may be applied in any order and still converge to the same state.

Records are row dictionaries; they are *frozen* to sorted item tuples for
hashing, and thawed back on the way out.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

#: A hashable row: ``((column, value), ...)`` sorted by column name.
FrozenRow = tuple


def freeze_row(row: dict[str, Any]) -> FrozenRow:
    """A hashable, order-independent form of a row dictionary."""
    return tuple(sorted(row.items()))


def thaw_row(frozen: FrozenRow) -> dict[str, Any]:
    """The row dictionary back from its frozen form."""
    return dict(frozen)


class ZSet:
    """A mapping of frozen records to non-zero integer weights."""

    __slots__ = ("_weights",)

    def __init__(self) -> None:
        self._weights: dict[FrozenRow, int] = {}

    # -- construction -------------------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Iterable[dict[str, Any]], weight: int = 1) -> "ZSet":
        """A Z-set with ``weight`` per row (rows may repeat)."""
        zset = cls()
        for row in rows:
            zset.add(freeze_row(row), weight)
        return zset

    @classmethod
    def from_entries(cls, entries: Iterable[tuple[dict[str, Any], int]]) -> "ZSet":
        """A Z-set from ``(row_dict, weight)`` pairs."""
        zset = cls()
        for row, weight in entries:
            zset.add(freeze_row(row), weight)
        return zset

    # -- algebra ------------------------------------------------------------------------

    def add(self, frozen: FrozenRow, weight: int) -> None:
        """Sum ``weight`` into a record, annihilating at zero."""
        if weight == 0:
            return
        total = self._weights.get(frozen, 0) + weight
        if total == 0:
            self._weights.pop(frozen, None)
        else:
            self._weights[frozen] = total

    def update(self, other: "ZSet") -> None:
        """Sum another Z-set into this one (in-place addition)."""
        for frozen, weight in other._weights.items():
            self.add(frozen, weight)

    def negated(self) -> "ZSet":
        """A new Z-set with every weight negated."""
        out = ZSet()
        out._weights = {frozen: -weight for frozen, weight in self._weights.items()}
        return out

    @staticmethod
    def diff(new: "ZSet", old: "ZSet") -> "ZSet":
        """``new - old``: the delta that turns ``old`` into ``new``."""
        out = ZSet()
        for frozen, weight in new._weights.items():
            out.add(frozen, weight - old.weight(frozen))
        for frozen, weight in old._weights.items():
            if frozen not in new._weights:
                out.add(frozen, -weight)
        return out

    # -- access -------------------------------------------------------------------------

    def weight(self, frozen: FrozenRow) -> int:
        """The weight of one record (0 when absent)."""
        return self._weights.get(frozen, 0)

    def items(self) -> Iterator[tuple[FrozenRow, int]]:
        """``(frozen_row, weight)`` pairs (weights never zero)."""
        return iter(self._weights.items())

    def to_rows(self) -> list[dict[str, Any]]:
        """Rows with multiplicity expanded; raises on negative weights.

        A negative weight surviving in a *state* Z-set means more deletions
        than insertions were observed for a record — the delta stream and
        the base diverged, and the caller must resync from the base data.
        """
        rows: list[dict[str, Any]] = []
        for frozen, weight in self._weights.items():
            if weight < 0:
                raise ValueError(
                    f"record {dict(frozen)!r} has negative weight {weight}; "
                    f"delta state diverged from the base data"
                )
            rows.extend(thaw_row(frozen) for _ in range(weight))
        return rows

    @property
    def is_empty(self) -> bool:
        """Whether no record has a non-zero weight."""
        return not self._weights

    @property
    def total_weight(self) -> int:
        """Sum of absolute weights (the delta's size in rows)."""
        return sum(abs(w) for w in self._weights.values())

    def __len__(self) -> int:
        return len(self._weights)

    def __repr__(self) -> str:
        return f"ZSet(records={len(self._weights)}, rows={self.total_weight})"
