"""Materialized views: registered dataflow queries kept fresh from deltas.

A :class:`MaterializedView` is a named :class:`~repro.eide.dataflow.Dataset`
expression registered on the system.  Its **initial run** goes through the
ordinary compile/execute pipeline (plan cache, scatter-gather, accelerator
placement — everything a normal program gets) and establishes the view's
schema and full-recompute cost baseline.  After that, the incremental
compiler pass (:mod:`repro.views.incremental`) maintains the materialized
state from the engines' scoped changelogs: a refresh costs time proportional
to the *delta*, not the base data.

Maintenance policies (:class:`MaintenancePolicy`):

* ``eager`` — refresh synchronously on every source write (the registry
  subscribes to the source engines' changelogs),
* ``deferred`` — refresh on read, at most once per ``staleness_s``,
* ``manual`` — refresh only when :meth:`MaterializedView.refresh` is called,
* ``auto`` — eager while the *observed* delta sizes (EWMA, recorded in the
  system's runtime feedback store) stay small, deferred once write batches
  grow past ``auto_delta_rows`` — large bursts are better absorbed into one
  refresh at read time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.datamodel.table import Table
from repro.eide.dataflow import DataflowProgram, Dataset
from repro.exceptions import ConfigurationError
from repro.middleware.executor import Executor
from repro.stores.changelog import DeltaBatch
from repro.views.incremental import DeltaProgram, ResyncRequired, compile_incremental
from repro.views.zset import ZSet

if TYPE_CHECKING:  # runtime import would cycle through the system facade
    from repro.core.system import PolystorePlusPlus

#: Prefix marking a view's own maintenance program; the registry never
#: rewrites these against the view registry (a view must not read itself).
VIEW_PROGRAM_PREFIX = "view::"


@dataclass(frozen=True)
class MaintenancePolicy:
    """When a materialized view's state is brought up to date."""

    mode: str = "deferred"
    #: ``deferred``/``auto``: refresh-on-read at most once per this many
    #: seconds of staleness (0 = every stale read refreshes).
    staleness_s: float = 0.0
    #: ``auto``: stay eager while the EWMA of observed delta rows per
    #: refresh is at or below this; defer above it.
    auto_delta_rows: int = 4096

    _MODES = ("eager", "deferred", "manual", "auto")

    def __post_init__(self) -> None:
        if self.mode not in self._MODES:
            raise ConfigurationError(
                f"unknown maintenance mode {self.mode!r}; choose one of {self._MODES}"
            )


@dataclass
class RefreshOutcome:
    """What one :meth:`MaterializedView.refresh` call did."""

    kind: str                  # "incremental" | "full" | "noop"
    charged_time_s: float = 0.0
    #: Total multiplicity of the *output* delta (rows the state changed by).
    delta_rows: int = 0
    #: Total multiplicity pulled from the sources (the write volume this
    #: refresh absorbed) — what the auto policy's EWMA is steered by.
    input_rows: int = 0
    details: dict[str, Any] = field(default_factory=dict)


class MaterializedView:
    """One registered view: definition, materialized state, refresh machinery."""

    def __init__(self, system: "PolystorePlusPlus", name: str, dataset: Dataset,
                 policy: MaintenancePolicy) -> None:
        if not isinstance(dataset, Dataset):
            raise ConfigurationError(
                f"view {name!r} must be defined from a Dataset expression"
            )
        self.system = system
        self.name = name
        self.policy = policy
        self.root = dataset.node
        self._program = DataflowProgram(f"{VIEW_PROGRAM_PREFIX}{name}")
        self._program.output(name, Dataset(self.root))
        if self._program.declared_params():
            raise ConfigurationError(
                f"view {name!r} must not contain runtime Param placeholders"
            )
        if any(node.kind == "view_read" for node in self.root.walk()):
            # A view over a view has no engine sources to watch: staleness
            # tracking and changelog subscriptions would both be empty and
            # the outer view would silently serve its creation-time
            # snapshot forever.  Register the composed expression over the
            # base tables instead (it still shares the inner view's cached
            # plan via subtree rewriting at compile time).
            raise ConfigurationError(
                f"view {name!r} reads another materialized view; register "
                f"the composed expression over the base tables instead"
            )
        self._lock = threading.RLock()
        self._ready = False
        self._delta: DeltaProgram | None = None
        self._state = ZSet()
        self._ordered_rows: list[dict[str, Any]] | None = None
        self._schema = None
        self._columns: list[str] = []
        #: engine name -> data_version watched by the full-recompute path.
        self._watched: dict[str, int] = {}
        self._version = 0
        self._last_refresh_monotonic = 0.0
        #: ``(state version, materialized table)`` — reads of a fresh view
        #: must not re-expand and re-sort the whole state every poll.
        self._materialized: tuple[int, Table] | None = None
        #: Source engines, resolved once (the expression tree is immutable).
        self._source_engines: set[str] | None = None
        # accounting ---------------------------------------------------------
        self.initial_charged_s = 0.0
        self.refreshes = 0
        self.incremental_refreshes = 0
        self.full_recomputes = 0
        self.skipped_refreshes = 0
        self.last_refresh_charged_s = 0.0
        self.total_refresh_charged_s = 0.0
        self.last_delta_rows = 0
        #: Last exception a write-triggered (eager/auto) refresh swallowed;
        #: cleared by the next successful refresh.
        self.last_error: Exception | None = None

    # -- identity ------------------------------------------------------------------------

    @property
    def canonical(self) -> str:
        """Canonical form of the view's root — the registry's rewrite key."""
        return self.root.canonical()

    @property
    def incremental(self) -> bool:
        """Whether the view maintains state from deltas (vs full recompute)."""
        return self._delta is not None

    @property
    def version(self) -> int:
        """Bumped whenever a refresh changed the materialized state."""
        return self._version

    def source_engines(self) -> set[str]:
        """Names of the engines the view's leaf reads touch.

        Resolved once and memoized: the expression tree is immutable, and
        this runs on the write hot path (the registry consults it for every
        changelog batch once any eager/auto view exists).
        """
        if self._source_engines is None:
            from repro.eide.dataflow import resolve_node_engine

            engines: set[str] = set()
            for node in self.root.walk():
                if node.inputs:
                    continue
                name = resolve_node_engine(node, self.system.catalog)
                if name is not None:
                    engines.add(name)
            self._source_engines = engines
        return set(self._source_engines)

    # -- initialization ------------------------------------------------------------------

    def initialize(self) -> None:
        """Materialize the view through the normal compile/execute pipeline.

        The full run establishes the output schema and the recompute cost
        baseline; when the tree is delta-composable, the incremental plan is
        then compiled and seeded so subsequent refreshes consume changelogs.
        """
        with self._lock:
            session = self.system.default_session()
            prepared = session.prepare(self._program, freeze=False)
            # Watched versions are captured before the run (used only by the
            # non-incremental path): a write landing mid-run must leave the
            # view stale, not be marked as seen.
            self._snapshot_watched()
            result = prepared.run(reuse_scans=False)
            value = result.output(self.name)
            table = self._as_table(value)
            self.initial_charged_s = result.total_time_s
            self._schema = table.schema
            self._columns = list(table.schema.names)
            self._delta = compile_incremental(self.name, self.root,
                                              self.system.catalog)
            if self._delta is not None:
                charged, delta, _ = self._run_delta(seed=True)
                self._apply_output(delta)
                self.initial_charged_s += charged
            else:
                # Non-incremental views materialize the program's own rows
                # verbatim — including whatever order a trailing sort/top_k
                # produced, which a Z-set expansion would destroy.  The
                # watched versions were captured *before* the run: a write
                # landing mid-recompute keeps the view stale (one spare
                # refresh) instead of being silently marked as seen.
                self._state = ZSet.from_rows(table.to_dicts())
                self._ordered_rows = table.to_dicts()
            self._last_refresh_monotonic = time.monotonic()
            self._version += 1
            self._ready = True

    @staticmethod
    def _as_table(value: Any) -> Table:
        if isinstance(value, Table):
            return value
        if (isinstance(value, list) and value
                and all(isinstance(r, dict) for r in value)):
            return Table.from_dicts(value)
        raise ConfigurationError(
            f"materialized views require tabular results; the program "
            f"produced {type(value).__name__}"
        )

    # -- refresh -------------------------------------------------------------------------

    def refresh(self, *, force_full: bool = False) -> RefreshOutcome:
        """Bring the materialized state up to date; returns what was done."""
        obs = self.system.obs
        if not obs.enabled:
            return self._refresh_locked(force_full=force_full)
        with obs.tracer.span(f"view_refresh:{self.name}", "view",
                             view=self.name) as span:
            outcome = self._refresh_locked(force_full=force_full)
            if span is not None:
                span.set(kind=outcome.kind, delta_rows=outcome.delta_rows,
                         input_rows=outcome.input_rows)
                reason = outcome.details.get("resync_reason")
                if reason is not None:
                    span.set(resync_reason=reason)
        obs.view_refreshes_total.inc(view=self.name, kind=outcome.kind)
        if outcome.kind != "noop":
            obs.view_refresh_seconds.observe(outcome.charged_time_s,
                                             view=self.name)
            obs.view_delta_rows.observe(outcome.delta_rows, view=self.name)
        resync_reason = outcome.details.get("resync_reason")
        if resync_reason is not None:
            obs.logger("views").warning(
                "view_resync", view=self.name, cause=resync_reason,
                delta_rows=outcome.delta_rows)
        return outcome

    def _refresh_locked(self, *, force_full: bool) -> RefreshOutcome:
        with self._lock:
            if self._delta is not None and not force_full:
                if not self._delta.any_source_changed(self.system.catalog):
                    self.skipped_refreshes += 1
                    return RefreshOutcome(kind="noop")
                try:
                    charged, delta, pulled = self._run_delta(seed=False)
                    outcome = RefreshOutcome(kind="incremental",
                                             charged_time_s=charged,
                                             delta_rows=delta.total_weight,
                                             input_rows=pulled)
                    self._apply_output(delta)
                    self.incremental_refreshes += 1
                except Exception as exc:  # noqa: BLE001 - state may be torn
                    # Gap, truncation, divergence — or ANY mid-apply failure:
                    # source cursors advance and operator state mutates
                    # before downstream stages run, so a partial refresh can
                    # never be retried from deltas; rebuild from the base.
                    outcome = self._full_refresh()
                    outcome.details["resync_reason"] = repr(exc)
            else:
                outcome = self._full_refresh()
            self._finish_refresh(outcome)
            return outcome

    def _full_refresh(self) -> RefreshOutcome:
        """Rebuild state from the base data (charged as the work it does)."""
        # Rebuild the delta program with fresh operator state and seed it
        # from a full base read: the seed's output delta IS the new content,
        # so the base is scanned exactly once.
        self._delta = compile_incremental(self.name, self.root,
                                          self.system.catalog)
        if self._delta is not None:
            self._state = ZSet()
            self._ordered_rows = None
            charged, delta, pulled = self._run_delta(seed=True)
            self._apply_output(delta)
            return RefreshOutcome(kind="full", charged_time_s=charged,
                                  delta_rows=delta.total_weight,
                                  input_rows=pulled)
        session = self.system.default_session()
        prepared = session.prepare(self._program, freeze=False)
        self._snapshot_watched()  # before the run: mid-run writes stay stale
        result = prepared.run(reuse_scans=False)
        table = self._as_table(result.output(self.name))
        self._state = ZSet.from_rows(table.to_dicts())
        self._ordered_rows = table.to_dicts()  # keep the program's own order
        return RefreshOutcome(kind="full", charged_time_s=result.total_time_s,
                              delta_rows=len(table), input_rows=len(table))

    def _run_delta(self, *, seed: bool) -> tuple[float, ZSet, int]:
        """Execute the delta program through the ordinary executor.

        Returns ``(charged_s, output_delta, pulled_rows)`` where
        ``pulled_rows`` is the total multiplicity the sources emitted.
        """
        assert self._delta is not None
        executor = Executor(self.system.catalog, max_workers=1,
                            runtime_stats=self.system.feedback_stats,
                            obs=self.system.obs)
        self._delta.set_seed(seed)
        try:
            outputs, report = executor.execute(self._delta.graph,
                                               mode="view_maintenance")
        finally:
            self._delta.set_seed(False)
        delta = next(iter(outputs.values()))
        if not isinstance(delta, ZSet):
            raise ResyncRequired(
                f"delta program of view {self.name!r} produced "
                f"{type(delta).__name__}, expected a ZSet"
            )
        source_ids = {node.op_id for node in self._delta.graph.nodes()
                      if not node.inputs}
        pulled = sum(record.rows_out for record in report.records
                     if record.op_id in source_ids)
        return report.total_time_s, delta, pulled

    def _apply_output(self, delta: ZSet) -> None:
        self._state.update(delta)
        if self._delta is not None and self._delta.ordered_root:
            self._ordered_rows = self._delta.ordered_rows()

    def _finish_refresh(self, outcome: RefreshOutcome) -> None:
        if outcome.kind == "noop":
            return
        self.refreshes += 1
        if outcome.kind == "full":
            self.full_recomputes += 1
        self.last_refresh_charged_s = outcome.charged_time_s
        self.total_refresh_charged_s += outcome.charged_time_s
        self.last_delta_rows = outcome.delta_rows
        self._last_refresh_monotonic = time.monotonic()
        if outcome.delta_rows or outcome.kind == "full":
            # A full rebuild replaces the state wholesale — the cached
            # materialization must drop even when the new content happens to
            # be empty (delta_rows == 0).
            self._version += 1
        stats = self.system.feedback_stats
        if stats is not None:
            # Observed delta sizes steer the auto policy's eager/deferred
            # choice (and land in describe() like any other observation).
            stats.record(self.stats_fingerprint, kind="view_refresh",
                         target="views", time_s=outcome.charged_time_s,
                         rows_out=outcome.delta_rows,
                         rows_in=outcome.input_rows)

    @property
    def stats_fingerprint(self) -> str:
        """The runtime-stats key refresh observations are recorded under."""
        return f"view::{self.name}"

    # -- staleness -----------------------------------------------------------------------

    @property
    def stale(self) -> bool:
        """Whether source data changed since the last refresh."""
        with self._lock:
            if self._delta is not None:
                return self._delta.any_source_changed(self.system.catalog)
            return self._watched_changed()

    def _snapshot_watched(self) -> None:
        self._watched = {
            name: self.system.catalog.engine(name).data_version
            for name in self.source_engines()
            if self.system.catalog.has_engine(name)
        }

    def _watched_changed(self) -> bool:
        for name, version in self._watched.items():
            if not self.system.catalog.has_engine(name):
                return True
            if self.system.catalog.engine(name).data_version != version:
                return True
        return False

    # -- reads ---------------------------------------------------------------------------

    def read(self) -> tuple[Table, float, float]:
        """The maintained state under this view's policy.

        Returns ``(table, refresh_charged_s, refresh_wall_s)``: the charged
        time of any refresh this read triggered and the wall time it spent
        doing so (0.0 when the state was already fresh).  The executor
        charges the ``view_read`` operator ``wall - refresh_wall +
        refresh_charged`` — substituting the refresh's *charged* cost for
        its measured one, without double-counting it.
        """
        with self._lock:
            charged = 0.0
            wall = 0.0
            if self._should_refresh_on_read() and self.stale:
                started = time.perf_counter()
                charged = self.refresh().charged_time_s
                wall = time.perf_counter() - started
            try:
                return self._materialize(), charged, wall
            except ValueError:
                # Negative weights surfacing at materialization mean the
                # delta stream and the base diverged after the last refresh
                # check; rebuild from the base instead of staying wedged.
                started = time.perf_counter()
                charged += self.refresh(force_full=True).charged_time_s
                wall += time.perf_counter() - started
                return self._materialize(), charged, wall

    def _should_refresh_on_read(self) -> bool:
        mode = self.policy.mode
        if mode == "manual":
            return False
        if mode in ("eager",):
            # Eager state is maintained on write; re-checking here covers
            # writes that raced initialization or bypassed the facade.
            return True
        age = time.monotonic() - self._last_refresh_monotonic
        return age >= self.policy.staleness_s

    def _materialize(self) -> Table:
        cached = self._materialized
        if cached is not None and cached[0] == self._version:
            table = cached[1]
        else:
            rows = (self._ordered_rows if self._ordered_rows is not None
                    else _canonical_rows(self._state, self._columns))
            if not rows and self._schema is not None:
                table = Table(self._schema, [])
            else:
                ordered = [{name: row.get(name) for name in self._columns}
                           for row in rows]
                table = Table.from_dicts(ordered)
            self._materialized = (self._version, table)
        # Hand out a container-level copy: callers own their results and may
        # mutate them, which must never reach the cached materialization.
        return Table(table.schema, list(table.rows))

    # -- write notifications (registry-dispatched) ---------------------------------------

    def on_write(self, engine_name: str, batch: DeltaBatch) -> None:
        """React to one source-engine changelog batch under the policy.

        Runs synchronously inside the writer's mutator call, so failures
        are contained here: a refresh that cannot complete (the write was a
        DDL gap dropping a source table, a resync could not quiesce) must
        not make the *committed* mutation appear to fail.  The error is
        kept for introspection and the view stays stale; the next read
        retries the refresh and surfaces the problem to the reader.
        """
        if not self._ready:
            return
        mode = self.policy.mode
        if mode != "eager" and not (mode == "auto" and self._auto_prefers_eager()):
            return
        try:
            self.refresh()
            self.last_error = None
        except Exception as exc:  # noqa: BLE001 - contained, surfaced on read
            self.last_error = exc
            self.system.obs.logger("views").error(
                "view_refresh_error", view=self.name, cause=repr(exc))

    def _auto_prefers_eager(self) -> bool:
        """Eager while observed delta sizes stay small (feedback-steered)."""
        stats = self.system.feedback_stats
        if stats is None:
            return True
        observed = stats.observed(self.stats_fingerprint)
        if observed is None:
            return True
        return observed.rows_in <= self.policy.auto_delta_rows

    # -- introspection -------------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Counters and configuration, for the system description and tests."""
        with self._lock:
            return {
                "name": self.name,
                "policy": self.policy.mode,
                "incremental": self.incremental,
                "version": self._version,
                "rows": len(self._ordered_rows) if self._ordered_rows is not None
                        else len(self._state),
                "refreshes": self.refreshes,
                "incremental_refreshes": self.incremental_refreshes,
                "full_recomputes": self.full_recomputes,
                "skipped_refreshes": self.skipped_refreshes,
                "initial_charged_s": self.initial_charged_s,
                "last_refresh_charged_s": self.last_refresh_charged_s,
                "total_refresh_charged_s": self.total_refresh_charged_s,
                "last_delta_rows": self.last_delta_rows,
                "last_error": (repr(self.last_error)
                               if self.last_error is not None else None),
                "source_engines": sorted(self.source_engines()),
            }

    def __repr__(self) -> str:
        return (f"MaterializedView(name={self.name!r}, "
                f"policy={self.policy.mode!r}, incremental={self.incremental})")


def _canonical_rows(state: ZSet, columns: list[str]) -> list[dict[str, Any]]:
    """Expand a state Z-set into deterministically ordered rows."""
    rows = state.to_rows()

    def part(value: Any) -> tuple:
        if value is None:
            return (0,)
        if isinstance(value, bool):
            return (1, int(value))
        if isinstance(value, (int, float)):
            return (2, float(value))
        if isinstance(value, str):
            return (3, value)
        return (4, repr(value))

    rows.sort(key=lambda row: tuple(part(row.get(name)) for name in columns))
    return rows
