"""The view registry: registration, changelog subscriptions, plan rewriting.

The registry is the system-side home of every
:class:`~repro.views.view.MaterializedView`:

* :meth:`ViewRegistry.create` initializes and registers a view, subscribes
  it to its source engines' changelogs (eager/auto maintenance) and bumps
  the deployment's plan generation so cached plans recompile against the
  new registry.
* :meth:`ViewRegistry.rewrite` is the compiler hook: any subtree of a
  program that is *structurally identical* (same canonical form) to a
  registered view's definition is replaced by a ``view_read`` operator, so
  prepared programs transparently read maintained state — the plan cache
  and scan-snapshot machinery now *refresh* instead of recompute.
* :meth:`ViewRegistry.serve` is the executor hook backing ``view_read``.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable

from repro.datamodel.table import Table
from repro.eide.dataflow import DataflowNode, DataflowProgram, Dataset, to_dataflow
from repro.eide.program import HeterogeneousProgram
from repro.exceptions import ConfigurationError
from repro.stores.changelog import DeltaBatch
from repro.views.view import (
    VIEW_PROGRAM_PREFIX,
    MaintenancePolicy,
    MaterializedView,
)

if TYPE_CHECKING:  # runtime import would cycle through the system facade
    from repro.core.system import PolystorePlusPlus


class ViewRegistry:
    """All materialized views registered on one deployment."""

    def __init__(self, system: "PolystorePlusPlus") -> None:
        self.system = system
        self._lock = threading.RLock()
        self._views: dict[str, MaterializedView] = {}
        self._by_canonical: dict[str, str] = {}
        #: Names/canonicals reserved by in-flight creates.  Reservations keep
        #: concurrent creates from colliding but are invisible to
        #: rewrite/serve — a half-initialized view must never be read.
        self._pending_names: set[str] = set()
        self._pending_canonicals: set[str] = set()
        #: engine name -> subscribed listener (one per engine, fans out).
        self._listeners: dict[str, Callable[[DeltaBatch], None]] = {}

    # -- registration --------------------------------------------------------------------

    def create(self, name: str, dataset: Dataset, *,
               policy: MaintenancePolicy | str = "deferred",
               staleness_s: float = 0.0,
               auto_delta_rows: int = 4096) -> MaterializedView:
        """Register, initialize and subscribe a new materialized view."""
        if isinstance(policy, str):
            policy = MaintenancePolicy(mode=policy, staleness_s=staleness_s,
                                       auto_delta_rows=auto_delta_rows)
        view = MaterializedView(self.system, name, dataset, policy)
        canonical = view.canonical
        with self._lock:
            if name in self._views or name in self._pending_names:
                raise ConfigurationError(f"view {name!r} already exists")
            existing = self._by_canonical.get(canonical)
            if existing is not None or canonical in self._pending_canonicals:
                raise ConfigurationError(
                    f"view {existing or '<being created>'!r} already "
                    f"materializes this expression"
                )
            self._pending_names.add(name)
            self._pending_canonicals.add(canonical)
        try:
            # Initialization compiles and runs the view's program through a
            # session, which takes the session's prepare lock — and prepare
            # itself takes this registry's lock (the rewrite hook).  Holding
            # the registry lock across initialize() would deadlock ABBA
            # against any concurrent prepare, so it runs on a reservation.
            view.initialize()
        except BaseException:
            with self._lock:
                self._pending_names.discard(name)
                self._pending_canonicals.discard(canonical)
            raise
        with self._lock:
            self._pending_names.discard(name)
            self._pending_canonicals.discard(canonical)
            self._views[name] = view
            self._by_canonical[canonical] = name
            self._subscribe(view)
        # Cached plans were compiled against the old registry; recompile so
        # matching subtrees start reading the view.
        self.system._invalidate_plans()
        if self.system.durability is not None:
            self.system.durability.save_view(view)
        return view

    def drop(self, name: str) -> None:
        """Unregister a view (its subscriptions are released)."""
        with self._lock:
            view = self._views.pop(name, None)
            if view is None:
                raise ConfigurationError(f"no view named {name!r}")
            self._by_canonical.pop(view.canonical, None)
            self._resubscribe_all()
        self.system._invalidate_plans()
        if self.system.durability is not None:
            self.system.durability.forget_view(name)

    def get(self, name: str) -> MaterializedView:
        """A registered view by name."""
        with self._lock:
            try:
                return self._views[name]
            except KeyError as exc:
                raise ConfigurationError(f"no view named {name!r}") from exc

    def names(self) -> list[str]:
        """Names of all registered views."""
        with self._lock:
            return sorted(self._views)

    def __len__(self) -> int:
        with self._lock:
            return len(self._views)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._views

    # -- changelog subscriptions ---------------------------------------------------------

    @staticmethod
    def _wants_notifications(view: MaterializedView) -> bool:
        """Only eager/auto views react to writes; deferred/manual refresh on
        read — subscribing them would tax every mutation for nothing."""
        return view.policy.mode in ("eager", "auto")

    def _subscribe(self, view: MaterializedView) -> None:
        if not self._wants_notifications(view):
            return
        for engine_name in view.source_engines():
            if engine_name in self._listeners:
                continue
            if not self.system.catalog.has_engine(engine_name):
                continue

            def listener(batch: DeltaBatch, _engine: str = engine_name) -> None:
                self._dispatch(_engine, batch)

            self.system.catalog.engine(engine_name).changelog.subscribe(listener)
            self._listeners[engine_name] = listener

    def _resubscribe_all(self) -> None:
        """Drop listeners no remaining view needs (called under the lock)."""
        needed: set[str] = set()
        for view in self._views.values():
            if self._wants_notifications(view):
                needed.update(view.source_engines())
        for engine_name in list(self._listeners):
            if engine_name in needed:
                continue
            listener = self._listeners.pop(engine_name)
            if self.system.catalog.has_engine(engine_name):
                self.system.catalog.engine(engine_name).changelog.unsubscribe(listener)

    def _dispatch(self, engine_name: str, batch: DeltaBatch) -> None:
        with self._lock:
            views = [view for view in self._views.values()
                     if self._wants_notifications(view)
                     and engine_name in view.source_engines()]
        for view in views:
            view.on_write(engine_name, batch)

    # -- executor hook -------------------------------------------------------------------

    def serve(self, name: str) -> tuple[Table, float, float, dict[str, Any]]:
        """Read a view for a ``view_read`` operator.

        Returns ``(table, refresh_charged_s, refresh_wall_s, details)``;
        the charge covers any policy-triggered refresh this read performed,
        and the wall figure lets the executor avoid double-counting it.
        """
        view = self.get(name)
        table, charged, wall = view.read()
        details = {"view": name, "view_version": view.version,
                   "incremental": view.incremental}
        return table, charged, wall, details

    # -- compiler hook -------------------------------------------------------------------

    @property
    def rewritable(self) -> bool:
        """Whether any registered view could match a program subtree."""
        with self._lock:
            return bool(self._by_canonical)

    def rewrite(self, program: "DataflowProgram | HeterogeneousProgram"
                ) -> "DataflowProgram | HeterogeneousProgram":
        """Substitute registered-view subtrees with ``view_read`` operators.

        Matching is by canonical structural form, largest subtree first.
        Programs named with the view-maintenance prefix are returned
        untouched (a view's own refresh must read the base engines).
        """
        if program.name.startswith(VIEW_PROGRAM_PREFIX):
            return program
        with self._lock:
            by_canonical = dict(self._by_canonical)
        if not by_canonical:
            return program
        flow = (program if isinstance(program, DataflowProgram)
                else to_dataflow(program))
        converted: dict[int, DataflowNode] = {}
        changed = False

        def convert(node: DataflowNode) -> DataflowNode:
            nonlocal changed
            if id(node) in converted:
                return converted[id(node)]
            name = by_canonical.get(node.canonical())
            if name is not None:
                replacement = DataflowNode("view_read", {"view": name}, (),
                                           None, node.label)
                converted[id(node)] = replacement
                changed = True
                return replacement
            children = tuple(convert(child) for child in node.inputs)
            if all(child is original for child, original
                   in zip(children, node.inputs)):
                converted[id(node)] = node
                return node
            rebuilt = DataflowNode(node.kind, node.params, children,
                                   node.engine, node.label)
            converted[id(node)] = rebuilt
            return rebuilt

        rewritten = DataflowProgram(flow.name)
        for output_name, root in flow.output_items():
            rewritten.output(output_name, Dataset(convert(root)))
        return rewritten if changed else program

    # -- introspection -------------------------------------------------------------------

    def describe(self) -> list[dict[str, Any]]:
        """Per-view counters for :meth:`PolystorePlusPlus.describe`."""
        with self._lock:
            views = list(self._views.values())
        return [view.describe() for view in views]
