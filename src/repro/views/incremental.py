"""The incremental compiler pass: dataflow trees to executable delta programs.

:func:`compile_incremental` walks a view's :class:`~repro.eide.dataflow`
expression tree and lowers every operator into its delta form
(:mod:`repro.views.delta_ops`).  Sources come in two flavours:

* a relational ``scan`` becomes a :class:`ChangelogSource` — a cursor into
  the engine's scoped changelog, pulling exactly the typed delta batches
  appended since the last refresh (cost proportional to the change);
* every other leaf read becomes a :class:`SnapshotDiffSource` — it watches
  the leaf's *scoped* data version and, only when that changed, re-reads the
  leaf through the engine's adapter and diffs against the previous snapshot.
  The cost is O(that leaf), which keeps small side inputs (KV profiles, a
  timeseries summary) cheap next to a large relational base.

The lowered :class:`DeltaProgram` is *itself* an IR graph of ``python_udf``
operators executed through the ordinary
:class:`~repro.middleware.executor.Executor`, so every refresh produces the
same :class:`~repro.middleware.executor.report.TaskRecord` charged-time
accounting as any other program — views don't get a parallel bookkeeping
path.

Kinds outside filter/project/inner-join/aggregate (+ the bounded-recompute
set) make the view non-incremental: :func:`compile_incremental` returns
``None`` and the view falls back to full recomputation on every refresh.
"""

from __future__ import annotations

from typing import Any

from repro.catalog import Catalog
from repro.datamodel.table import Table
from repro.eide.dataflow import DataflowNode, resolve_node_engine
from repro.exceptions import ExecutionError
from repro.ir.graph import IRGraph
from repro.ir.nodes import Operator
from repro.stores.changelog import leaf_read_scope, table_scope
from repro.stores.base import DataModel
from repro.stores.relational.expressions import Expression
from repro.stores.relational.operators import AggregateSpec
from repro.views.delta_ops import (
    DeltaAggregate,
    DeltaFilter,
    DeltaJoin,
    DeltaOperator,
    DeltaProject,
    DeltaRecompute,
)
from repro.views.zset import ZSet, freeze_row


class ResyncRequired(ExecutionError):
    """A source can no longer maintain its state from deltas (gap/truncation)."""


class ChangelogSource:
    """Delta source over a relational table's scoped changelog."""

    def __init__(self, engine_name: str, table: str,
                 columns: list[str] | None) -> None:
        self.engine_name = engine_name
        self.table = table
        self.columns = list(columns) if columns else None
        self.cursor = 0
        #: Scoped data version at the last pull/resync.  Cross-checked so a
        #: mutation that bumped the scope *without* logging a batch (a write
        #: applied directly to a shard instance, bypassing the facade log)
        #: is detected in a quiet window instead of being served stale.
        self._scoped_version: int | None = None

    def _probe(self, catalog: Catalog) -> tuple[list, bool, int]:
        """Atomically read ``(batches, trustworthy, head)`` for this table.

        ``trustworthy`` is ``False`` when the log has a gap/truncation *or*
        the engine's off-log evidence shows the scope's version moved past
        its last log mark — a write applied directly to a shard instance,
        which no delta batch describes.  The mark comparison is sound even
        with logged batches in the same window, because the facade records
        the mark under the same lock as every append (and refreshes it at
        rebalance cutover, which moves versions without changing data).
        """
        engine = catalog.engine(self.engine_name)
        scope = table_scope(self.table)
        pull_changes = getattr(engine, "pull_changes", None)
        if callable(pull_changes):
            batches, complete, head, version, mark = pull_changes(
                self.cursor, scope)
            # Trust whichever baseline is newest: the writer-side log mark,
            # or this source's own resync snapshot (a resync taken *after*
            # an off-log write absorbs it — scoped versions only increase,
            # so max() picks the state the consumer actually reflects).
            candidates = [v for v in (mark, self._scoped_version)
                          if v is not None]
            reference = max(candidates) if candidates else None
            if reference is not None and version != reference:
                return batches, False, head
            self._scoped_version = version
            return batches, complete, head
        # Single-node engines log every mutation themselves: the log alone
        # is authoritative, no off-log writes are possible.
        batches, complete, head = engine.changelog.pull(self.cursor, scope)
        return batches, complete, head

    def pull(self, catalog: Catalog) -> ZSet:
        """The table's delta since the cursor; raises :class:`ResyncRequired`."""
        engine = catalog.engine(self.engine_name)
        batches, trustworthy, head = self._probe(catalog)
        if not trustworthy:
            raise ResyncRequired(
                f"changelog for {self.engine_name}.{self.table} has a gap, "
                f"fell out of retention past cursor {self.cursor}, or the "
                f"table changed outside the log"
            )
        delta = ZSet()
        if batches:
            names = engine.table_schema(self.table).names
            for batch in batches:
                for record, weight in batch.entries:
                    row = dict(zip(names, record))
                    if self.columns is not None:
                        row = {name: row.get(name) for name in self.columns}
                    delta.add(freeze_row(row), weight)
        # Advance to the head even when nothing matched: a complete
        # scope-filtered read provably missed nothing, and a lagging cursor
        # would let heavy writes to *other* scopes trim the log past it.
        self.cursor = head
        return delta

    #: Resync re-read attempts before giving up on a quiescent snapshot.
    RESYNC_ATTEMPTS = 8

    def resync(self, catalog: Catalog) -> ZSet:
        """Reposition the cursor at the log head and re-read the full base.

        Engines whose writes and log appends share a lock expose
        ``snapshot_scan`` (``ShardedEngine`` does), which hands back an
        atomic ``(data, head)`` pair.  Bare engines have no write lock at
        all, so the read retries until no batch landed *during* the scan:
        accepting a dirty snapshot would either replay a write the scan
        already contains (double-count) or drop one it missed.  Persistent
        write churn makes the resync fail loudly instead of corrupting
        state.
        """
        engine = catalog.engine(self.engine_name)
        snapshot_scan = getattr(engine, "snapshot_scan", None)
        if callable(snapshot_scan):
            table, head, version = snapshot_scan(self.table, self.columns)
            self.cursor = head
            # The fresh off-log baseline: a direct-shard write after this
            # snapshot moves the version past the (unchanged) log mark.
            self._scoped_version = version
            return ZSet.from_rows(table.to_dicts())
        for _ in range(self.RESYNC_ATTEMPTS):
            before = engine.changelog.latest_seq
            table = engine.scan(self.table, self.columns)
            if engine.changelog.latest_seq == before:
                self.cursor = before
                return ZSet.from_rows(table.to_dicts())
        raise ResyncRequired(
            f"could not capture a quiescent snapshot of "
            f"{self.engine_name}.{self.table}: writes kept landing during "
            f"{self.RESYNC_ATTEMPTS} re-read attempts"
        )

    def changed(self, catalog: Catalog) -> bool:
        """Whether the table changed (logged or off-log) past the cursor.

        A probe that finds only *other* scopes' batches advances the cursor
        to the head as a side effect (a complete scope-filtered read missed
        nothing) — otherwise a view refreshed only when its own table
        changes would let unrelated churn trim the log past its cursor and
        be forced into a spurious full resync.
        """
        batches, trustworthy, head = self._probe(catalog)
        if trustworthy and not batches:
            self.cursor = head
            return False
        return True

    def describe(self) -> str:
        return f"changelog({self.engine_name}.{self.table})"


class SnapshotDiffSource:
    """Delta source that re-reads a non-relational leaf and diffs snapshots.

    Only re-reads when the leaf's *scoped* data version moved, so an
    untouched side input costs nothing per refresh.
    """

    def __init__(self, kind: str, params: dict[str, Any], engine_name: str) -> None:
        self.kind = kind
        self.params = dict(params)
        self.engine_name = engine_name
        self.scope = leaf_read_scope(kind, params)
        self._version: int | None = None
        self._previous = ZSet()

    def pull(self, catalog: Catalog) -> ZSet:
        engine = catalog.engine(self.engine_name)
        version = engine.data_version_for(self.scope)
        if version == self._version:
            return ZSet()
        snapshot = self._read(catalog)
        delta = ZSet.diff(snapshot, self._previous)
        self._previous = snapshot
        self._version = version
        return delta

    def resync(self, catalog: Catalog) -> ZSet:
        """Forget the previous snapshot and re-read from scratch."""
        self._previous = ZSet()
        self._version = None
        return self.pull(catalog)

    def changed(self, catalog: Catalog) -> bool:
        engine = catalog.engine(self.engine_name)
        return engine.data_version_for(self.scope) != self._version

    def _read(self, catalog: Catalog) -> ZSet:
        """Execute the leaf as a one-node program through the executor.

        Going through the executor (not an adapter directly) matters for
        sharded engines: the scatter-gather path fans the read out across
        every shard and merges exactly like a normal program would, where
        the primary-shard fallback adapter would silently read one shard.
        """
        from repro.middleware.executor import Executor

        graph = IRGraph(f"view-source::{self.kind}")
        node = graph.add(Operator(self.kind, dict(self.params), [],
                                  self.engine_name))
        graph.mark_output(node.op_id)
        outputs, _ = Executor(catalog, max_workers=1).execute(
            graph, mode="view_maintenance")
        value = next(iter(outputs.values()))
        if isinstance(value, Table):
            return ZSet.from_rows(value.to_dicts())
        if isinstance(value, list) and all(isinstance(r, dict) for r in value):
            return ZSet.from_rows(value)
        raise ResyncRequired(
            f"leaf {self.kind!r} on {self.engine_name!r} produced "
            f"{type(value).__name__}, not rows; it cannot be maintained"
        )

    def describe(self) -> str:
        return f"snapshot-diff({self.engine_name}:{self.kind})"


Source = ChangelogSource | SnapshotDiffSource

#: Leaf kinds a SnapshotDiffSource can maintain (tabular adapter outputs).
_DIFFABLE_LEAVES = frozenset({
    "scan", "index_seek", "kv_get", "kv_range", "ts_range", "ts_summarize",
    "window_aggregate", "keyword_features", "text_search", "graph_nodes",
})


class DeltaProgram:
    """A compiled delta pipeline, executed through the ordinary executor."""

    def __init__(self, name: str, graph: IRGraph, sources: list[Source],
                 mode: dict[str, bool], root_op: DeltaOperator | None) -> None:
        self.name = name
        #: ``python_udf`` IR graph; leaf udfs pull their source deltas.
        self.graph = graph
        self.sources = sources
        #: Shared cell the leaf udf closures consult: ``seed=True`` makes the
        #: next execution read the *full* base (positioning cursors at the
        #: log head) instead of pulling deltas — the seeding pass after a
        #: (re)build, whose output delta IS the full view content.
        self._mode = mode
        #: The root delta operator (``None`` when the root is a source).
        self.root_op = root_op

    def set_seed(self, seed: bool) -> None:
        """Switch the next execution between seeding and delta pulling."""
        self._mode["seed"] = seed

    @property
    def ordered_root(self) -> bool:
        """Whether the root recomputes an ordered result (sort/top-k/limit)."""
        return (isinstance(self.root_op, DeltaRecompute)
                and self.root_op.kind in DeltaRecompute.ORDERED_KINDS)

    def ordered_rows(self) -> list[dict[str, Any]]:
        """The root's most recent ordered output (ordered roots only)."""
        assert isinstance(self.root_op, DeltaRecompute)
        return list(self.root_op.ordered_rows)

    def any_source_changed(self, catalog: Catalog) -> bool:
        """Cheap staleness probe: did any source move past its cursor?"""
        return any(source.changed(catalog) for source in self.sources)


def compile_incremental(name: str, root: DataflowNode,
                        catalog: Catalog) -> DeltaProgram | None:
    """Lower a view's dataflow tree to a delta program, or ``None``.

    ``None`` means the tree contains an operator with no delta form (ML
    heads, UDFs, unions, graph traversals as interior nodes, ...); the view
    then refreshes by full recomputation only.
    """
    graph = IRGraph(f"delta::{name}")
    sources: list[Source] = []
    mode = {"seed": False}
    lowered: dict[int, str] = {}
    root_ops: dict[str, DeltaOperator] = {}

    def lower(node: DataflowNode) -> str | None:
        if id(node) in lowered:
            return lowered[id(node)]
        op_id = _lower_uncached(node)
        if op_id is not None:
            lowered[id(node)] = op_id
        return op_id

    def _lower_uncached(node: DataflowNode) -> str | None:
        if not node.inputs:
            engine = resolve_node_engine(node, catalog)
            if engine is None:
                return None
            source = _source_for(node, engine, catalog)
            if source is None:
                return None
            fn = _source_fn(source, catalog, mode)
            operator = graph.add(Operator("python_udf", {"fn": fn}, []))
            operator.annotations["fragment"] = f"δ:{source.describe()}"
            sources.append(source)
            return operator.op_id
        label = node.kind
        if node.kind in DeltaRecompute.ORDERED_KINDS:
            # A contiguous sort/limit/top_k run recomputes as ONE unit: the
            # ordering a sort establishes would not survive a Z-set
            # boundary, so a downstream limit would cut arbitrary rows.
            stages: list[tuple[str, dict[str, Any]]] = []
            current = node
            while (current.kind in DeltaRecompute.ORDERED_KINDS
                   and len(current.inputs) == 1):
                stages.append((current.kind, dict(current.params)))
                current = current.inputs[0]
            stages.reverse()
            for index, (kind, _) in enumerate(stages):
                if kind == "limit" and not any(
                        earlier in ("sort", "top_k")
                        for earlier, _ in stages[:index]):
                    # A limit means "the first n of the upstream ORDER", but
                    # only an ordering producer inside the same recompute
                    # unit can supply one — Z-sets are unordered, so a limit
                    # over a scan, an aggregate, or a sort separated by a
                    # linear operator would cut arbitrary rows.  Such views
                    # refresh by full recomputation instead.
                    return None
            delta_op: DeltaOperator | None = DeltaRecompute(stages, n_inputs=1)
            children: tuple[DataflowNode, ...] = (current,)
            label = "/".join(kind for kind, _ in stages)
        else:
            delta_op = _operator_for(node)
            children = node.inputs
        if delta_op is None:
            return None
        input_ids = []
        for child in children:
            child_id = lower(child)
            if child_id is None:
                return None
            input_ids.append(child_id)
        operator = graph.add(Operator("python_udf", {"fn": delta_op.apply},
                                      input_ids))
        operator.annotations["fragment"] = f"δ:{label}"
        root_ops[operator.op_id] = delta_op
        return operator.op_id

    root_id = lower(root)
    if root_id is None:
        return None
    graph.mark_output(root_id)
    return DeltaProgram(name, graph, sources, mode, root_ops.get(root_id))


def _source_for(node: DataflowNode, engine_name: str,
                catalog: Catalog) -> Source | None:
    engine = catalog.engine(engine_name)
    if node.kind == "scan" and engine.data_model is DataModel.RELATIONAL:
        return ChangelogSource(engine_name, str(node.params["table"]),
                               node.params.get("columns"))
    if node.kind in _DIFFABLE_LEAVES:
        return SnapshotDiffSource(node.kind, node.params, engine_name)
    return None


def _source_fn(source: Source, catalog: Catalog, mode: dict[str, bool]):
    def pull() -> ZSet:
        if mode["seed"]:
            return source.resync(catalog)
        return source.pull(catalog)
    return pull


def _operator_for(node: DataflowNode) -> DeltaOperator | None:
    kind = node.kind
    params = node.params
    if kind == "filter":
        predicate = params.get("predicate")
        if not isinstance(predicate, Expression):
            return None
        return DeltaFilter(predicate)
    if kind == "project":
        return DeltaProject(list(params.get("columns") or []))
    if kind == "join":
        if params.get("how", "inner") == "inner":
            return DeltaJoin(str(params["left_key"]), str(params["right_key"]))
        return DeltaRecompute([("join", params)], n_inputs=2)
    if kind == "aggregate":
        specs = [spec if isinstance(spec, AggregateSpec) else AggregateSpec(*spec)
                 for spec in params.get("aggregates") or []]
        return DeltaAggregate(list(params.get("group_by") or []), specs)
    return None
