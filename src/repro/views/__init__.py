"""Incremental materialized views over the cross-engine changelog.

See DESIGN.md ("Materialized views and the changelog") for the architecture:
engines emit scoped Z-set delta batches (:mod:`repro.stores.changelog`),
:func:`~repro.views.incremental.compile_incremental` lowers a view's
dataflow tree into delta operators, and the
:class:`~repro.views.registry.ViewRegistry` keeps registered views fresh
under eager/deferred/manual/auto maintenance policies while rewriting
matching program subtrees to read the maintained state.
"""

from repro.views.incremental import DeltaProgram, ResyncRequired, compile_incremental
from repro.views.registry import ViewRegistry
from repro.views.view import MaintenancePolicy, MaterializedView, RefreshOutcome
from repro.views.zset import ZSet, freeze_row, thaw_row

__all__ = [
    "DeltaProgram",
    "MaintenancePolicy",
    "MaterializedView",
    "RefreshOutcome",
    "ResyncRequired",
    "ViewRegistry",
    "ZSet",
    "compile_incremental",
    "freeze_row",
    "thaw_row",
]
