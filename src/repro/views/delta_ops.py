"""Stateful delta operators: the lowered form of a view's dataflow tree.

Each operator consumes one Z-set delta per input and emits the Z-set delta
of its output — the DBSP "lifted" form of the corresponding batch operator:

* ``filter``/``project`` are *linear*: the output delta is just the operator
  applied to the input delta, no state needed.
* inner ``join`` is *bilinear*: ``δ(A ⋈ B) = δA ⋈ B ∪ A' ⋈ δB`` (with
  ``A' = A + δA``, which folds the ``δA ⋈ δB`` cross term in); both sides'
  key-indexed Z-sets are maintained as state.
* group ``aggregate`` keeps per-group accumulators.  ``sum``/``count``/
  ``avg`` are fully delta-composable; ``min``/``max`` keep a per-group value
  multiset and recompute *only the touched groups* — the bounded-recompute
  fallback, O(group) not O(base).
* ``sort``/``limit``/``top_k`` and non-inner joins are not delta-composable
  at all; :class:`DeltaRecompute` maintains the operator's input Z-set and
  recomputes the full (small, post-aggregation) output on change, emitting
  the output *diff* so downstream operators stay incremental.

Semantics deliberately mirror the relational engine's volcano operators
(:mod:`repro.stores.relational.operators`) — the differential tests assert
refresh-equals-recompute across randomized mutation streams.
"""

from __future__ import annotations

import abc
from collections import Counter
from typing import Any, Sequence

from repro.stores.relational.expressions import Expression
from repro.stores.relational.operators import (
    AggregateSpec,
    HashJoin,
    Limit,
    Sort,
    TableScan,
    TopK,
)
from repro.views.zset import ZSet, freeze_row, thaw_row


class DeltaOperator(abc.ABC):
    """One lifted operator: Z-set deltas in, Z-set delta out (stateful)."""

    @abc.abstractmethod
    def apply(self, *deltas: ZSet) -> ZSet:
        """Advance the operator's state by the input deltas; returns δout."""


class DeltaFilter(DeltaOperator):
    """Linear: ``δout = σ(δin)``."""

    def __init__(self, predicate: Expression) -> None:
        self.predicate = predicate

    def apply(self, *deltas: ZSet) -> ZSet:
        (delta,) = deltas
        out = ZSet()
        for frozen, weight in delta.items():
            if self.predicate.evaluate(thaw_row(frozen)):
                out.add(frozen, weight)
        return out


class DeltaProject(DeltaOperator):
    """Linear (bag projection): ``δout = π(δin)``; weights merge on collision."""

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = list(columns)

    def apply(self, *deltas: ZSet) -> ZSet:
        (delta,) = deltas
        out = ZSet()
        for frozen, weight in delta.items():
            row = thaw_row(frozen)
            projected = {name: row.get(name) for name in self.columns}
            out.add(freeze_row(projected), weight)
        return out


def _join_merge(left_row: dict[str, Any], right_row: dict[str, Any]) -> dict[str, Any]:
    """Merge join sides the way :class:`HashJoin` does (left columns win)."""
    merged = dict(left_row)
    for name, value in right_row.items():
        if name not in merged:
            merged[name] = value
    return merged


class DeltaJoin(DeltaOperator):
    """Bilinear inner equi-join over maintained key-indexed Z-sets."""

    def __init__(self, left_key: str, right_key: str) -> None:
        self.left_key = left_key
        self.right_key = right_key
        #: key value -> {frozen_row: weight}; rows with NULL keys are dropped
        #: on the way in, matching ``HashJoin``.
        self._left: dict[Any, dict[tuple, int]] = {}
        self._right: dict[Any, dict[tuple, int]] = {}

    @staticmethod
    def _absorb(index: dict[Any, dict[tuple, int]], key: Any,
                frozen: tuple, weight: int) -> None:
        bucket = index.setdefault(key, {})
        total = bucket.get(frozen, 0) + weight
        if total == 0:
            bucket.pop(frozen, None)
            if not bucket:
                index.pop(key, None)
        else:
            bucket[frozen] = total

    def apply(self, *deltas: ZSet) -> ZSet:
        delta_left, delta_right = deltas
        out = ZSet()
        # δA ⋈ B (old right state)
        for frozen, weight in delta_left.items():
            row = thaw_row(frozen)
            key = row.get(self.left_key)
            if key is None:
                continue
            for right_frozen, right_weight in self._right.get(key, {}).items():
                merged = _join_merge(row, thaw_row(right_frozen))
                out.add(freeze_row(merged), weight * right_weight)
            self._absorb(self._left, key, frozen, weight)
        # A' ⋈ δB (left state already advanced: covers the δA ⋈ δB term)
        for frozen, weight in delta_right.items():
            row = thaw_row(frozen)
            key = row.get(self.right_key)
            if key is None:
                continue
            for left_frozen, left_weight in self._left.get(key, {}).items():
                merged = _join_merge(thaw_row(left_frozen), row)
                out.add(freeze_row(merged), left_weight * weight)
            self._absorb(self._right, key, frozen, weight)
        return out


class _GroupState:
    """Accumulators for one group across every aggregate of the operator."""

    __slots__ = ("weight", "nonnull", "sums", "values")

    def __init__(self, n_specs: int) -> None:
        #: Total row multiplicity of the group.
        self.weight = 0
        #: Per spec: multiplicity of rows whose aggregated column is non-NULL.
        self.nonnull = [0] * n_specs
        #: Per spec: weighted sum of non-NULL values (sum/avg).
        self.sums: list[Any] = [0] * n_specs
        #: Per spec: value multiset for the bounded min/max recompute.
        self.values: list[Counter] = [Counter() for _ in range(n_specs)]


class DeltaAggregate(DeltaOperator):
    """Group-by aggregation over per-group accumulators.

    Emits ``(old_output_row, -1), (new_output_row, +1)`` for every touched
    group; a group whose total weight reaches zero only retracts.  With no
    grouping columns the single global group always exists (aggregates over
    an empty input still produce one row, like ``GroupByAggregate``).
    """

    def __init__(self, group_by: Sequence[str],
                 aggregates: Sequence[AggregateSpec]) -> None:
        self.group_by = list(group_by)
        self.specs = list(aggregates)
        self._groups: dict[tuple, _GroupState] = {}
        #: Whether the global group's time-zero row was emitted yet (global
        #: aggregates produce one row even over an empty input).
        self._genesis_done = bool(self.group_by)

    def apply(self, *deltas: ZSet) -> ZSet:
        (delta,) = deltas
        touched: dict[tuple, ZSet] = {}
        for frozen, weight in delta.items():
            row = thaw_row(frozen)
            key = tuple(row.get(name) for name in self.group_by)
            if key not in touched:
                touched[key] = ZSet()
            touched[key].add(frozen, weight)
        if not self._genesis_done:
            # First application (the seed pass, over an empty view state):
            # force the global group through so its row is emitted even when
            # the seed itself is empty — ``GroupByAggregate`` yields one row
            # for aggregates over zero input rows.
            touched.setdefault((), ZSet())
            self._genesis_done = True
        out = ZSet()
        for key, group_delta in touched.items():
            before = self._output_row(key)
            self._advance(key, group_delta)
            after = self._output_row(key)
            if before is not None:
                out.add(freeze_row(before), -1)
            if after is not None:
                out.add(freeze_row(after), 1)
        return out

    def _advance(self, key: tuple, group_delta: ZSet) -> None:
        state = self._groups.get(key)
        if state is None:
            state = self._groups[key] = _GroupState(len(self.specs))
        for frozen, weight in group_delta.items():
            row = thaw_row(frozen)
            state.weight += weight
            for i, spec in enumerate(self.specs):
                if spec.column is None:
                    continue
                value = row.get(spec.column)
                if value is None:
                    continue
                state.nonnull[i] += weight
                if spec.function in ("sum", "avg"):
                    state.sums[i] += value * weight
                elif spec.function in ("min", "max"):
                    state.values[i][value] += weight
                    if state.values[i][value] == 0:
                        del state.values[i][value]
        if state.weight < 0 or any(n < 0 for n in state.nonnull):
            raise ValueError(
                f"group {key!r} reached negative multiplicity; "
                f"delta state diverged from the base data"
            )
        if state.weight == 0 and self.group_by:
            del self._groups[key]

    def _output_row(self, key: tuple) -> dict[str, Any] | None:
        """The group's current output row (``None`` when the group is absent)."""
        state = self._groups.get(key)
        if state is None:
            return None
        if state.weight == 0 and self.group_by:
            return None
        row: dict[str, Any] = dict(zip(self.group_by, key))
        for i, spec in enumerate(self.specs):
            row[spec.alias] = self._aggregate_value(state, i, spec)
        return row

    @staticmethod
    def _aggregate_value(state: _GroupState, i: int, spec: AggregateSpec) -> Any:
        if spec.function == "count":
            return state.weight if spec.column is None else state.nonnull[i]
        if state.nonnull[i] == 0:
            return None  # sum/avg/min/max over zero non-NULL rows
        if spec.function == "sum":
            return state.sums[i]
        if spec.function == "avg":
            return state.sums[i] / state.nonnull[i]
        if spec.function == "min":
            return min(state.values[i])
        return max(state.values[i])


class DeltaRecompute(DeltaOperator):
    """Bounded-recompute fallback for operators with no delta form.

    Maintains each input's full Z-set and re-executes the underlying volcano
    operator *chain* over the expanded rows when any delta arrives, emitting
    the output diff.  Used for ``sort``/``limit``/``top_k`` (whose outputs
    are order- or cutoff-sensitive) and non-inner joins; these typically sit
    at the top of a view, over already-aggregated (small) inputs, so the
    recompute is bounded by the operator's input, not the base tables.

    ``stages`` composes contiguous order-sensitive operators into **one**
    recompute: ``.sort(by).limit(n)`` must re-run as a unit, because the
    sort's ordering would be destroyed at a Z-set boundary between two
    separate recompute operators and the limit would cut arbitrary rows.
    """

    #: Kinds whose recomputed output is meaningfully ordered; a view rooted
    #: on one of these materializes the operator's row order verbatim.
    ORDERED_KINDS = frozenset({"sort", "top_k", "limit"})

    def __init__(self, stages: Sequence[tuple[str, dict[str, Any]]],
                 n_inputs: int) -> None:
        if not stages:
            raise ValueError("DeltaRecompute needs at least one stage")
        #: ``(kind, params)`` pairs, bottom-most first.
        self.stages = [(kind, dict(params)) for kind, params in stages]
        self._inputs = [ZSet() for _ in range(n_inputs)]
        self._last_output = ZSet()
        #: The most recent recomputed rows, in operator order.
        self.ordered_rows: list[dict[str, Any]] = []

    @property
    def kind(self) -> str:
        """The top-most (output-shaping) stage's kind."""
        return self.stages[-1][0]

    def apply(self, *deltas: ZSet) -> ZSet:
        for state, delta in zip(self._inputs, deltas):
            state.update(delta)
        if all(delta.is_empty for delta in deltas):
            return ZSet()
        self.ordered_rows = self._recompute()
        new_output = ZSet.from_rows(self.ordered_rows)
        diff = ZSet.diff(new_output, self._last_output)
        self._last_output = new_output
        return diff

    def _recompute(self) -> list[dict[str, Any]]:
        rows = [state.to_rows() for state in self._inputs]
        bottom_kind, bottom_params = self.stages[0]
        if bottom_kind == "join":
            operator = HashJoin(TableScan(rows[0]), TableScan(rows[1]),
                                str(bottom_params["left_key"]),
                                str(bottom_params["right_key"]),
                                how=str(bottom_params.get("how", "inner")))
        else:
            operator = self._stage_operator(bottom_kind, bottom_params,
                                            TableScan(rows[0]))
        for kind, params in self.stages[1:]:
            operator = self._stage_operator(kind, params, operator)
        return operator.execute()

    @staticmethod
    def _stage_operator(kind: str, params: dict[str, Any], child):
        if kind == "sort":
            return Sort(child, [str(params["by"])],
                        descending=bool(params.get("descending", False)))
        if kind == "limit":
            return Limit(child, int(params["n"]))
        if kind == "top_k":
            return TopK(child, str(params["by"]), int(params["k"]),
                        descending=bool(params.get("descending", True)))
        raise ValueError(f"DeltaRecompute cannot re-execute kind {kind!r}")
