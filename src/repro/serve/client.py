"""Client transports for the serving tier.

Two clients speak the same message protocol:

* :class:`InProcessClient` — obtained from
  :meth:`~repro.serve.server.PolystoreServer.connect`; enqueues message
  dictionaries straight onto the server's event loop and waits on a
  per-request future.  No sockets, no serialization — the transport the
  tests and benchmarks use to drive hundreds of concurrent clients cheaply.
* :class:`TcpClient` — a blocking socket client speaking the
  length-prefixed JSON frames of :mod:`repro.serve.protocol`, demonstrating
  that the wire protocol round-trips for real.

Both are thread-compatible for the send/await pattern used here: sends are
serialized by a lock and responses are parked in a pending map, so one
thread may wait on a slow ``execute`` while another issues the ``cancel``
that unblocks it.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from concurrent.futures import Future
from typing import Any

from repro.serve import protocol
from repro.serve.protocol import encode_frame


class ServeError(Exception):
    """An error response surfaced to a client call.

    Carries the protocol ``code``, whether the request is ``retryable``,
    and the server's ``retry_after_s`` hint when one was given.
    """

    def __init__(self, error: dict[str, Any]) -> None:
        super().__init__(f"{error.get('code')}: {error.get('message')}")
        self.code = error.get("code")
        self.retryable = bool(error.get("retryable"))
        self.retry_after_s = error.get("retry_after_s")


def _unwrap(response: dict[str, Any]) -> dict[str, Any]:
    if not response.get("ok"):
        raise ServeError(response.get("error") or {})
    return response


class _ClientOps:
    """The op vocabulary shared by both transports."""

    _ids = itertools.count(1)
    _prefix = "c"

    def _next_id(self) -> str:
        return f"{self._prefix}-{next(self._ids)}"

    def request(self, message: dict[str, Any],
                timeout: float | None = None) -> dict[str, Any]:
        raise NotImplementedError

    def execute(self, program: str, params: dict[str, Any] | None = None, *,
                tenant: str | None = None, deadline_s: float | None = None,
                request_id: Any = None,
                timeout: float | None = None) -> dict[str, Any]:
        """Run a registered program; returns the ok-response dictionary.

        Raises :class:`ServeError` on any error response (inspect
        ``.code``/``.retryable``/``.retry_after_s`` for backoff decisions).
        """
        message: dict[str, Any] = {
            "op": "execute",
            "id": request_id if request_id is not None else self._next_id(),
            "program": program,
            "params": params or {},
        }
        if tenant is not None:
            message["tenant"] = tenant
        if deadline_s is not None:
            message["deadline_s"] = deadline_s
        return _unwrap(self.request(message, timeout))

    def cancel(self, target: Any, *, tenant: str | None = None,
               timeout: float | None = None) -> bool:
        """Cancel an in-flight request by its id; True if it was found."""
        message: dict[str, Any] = {"op": "cancel", "id": self._next_id(),
                                   "target": target}
        if tenant is not None:
            message["tenant"] = tenant
        return bool(_unwrap(self.request(message, timeout)).get("found"))

    def metrics(self, timeout: float | None = None) -> str:
        """The server's Prometheus scrape text."""
        message = {"op": "metrics", "id": self._next_id()}
        return _unwrap(self.request(message, timeout))["metrics"]

    def programs(self, timeout: float | None = None) -> list[str]:
        message = {"op": "programs", "id": self._next_id()}
        return list(_unwrap(self.request(message, timeout))["programs"])

    def stats(self, timeout: float | None = None) -> dict[str, Any]:
        message = {"op": "stats", "id": self._next_id()}
        return _unwrap(self.request(message, timeout))["stats"]

    def health(self, timeout: float | None = None) -> dict[str, Any]:
        """The system's rolled-up health document (load-balancer probe).

        Returns ``{"status": "ok"|"warn"|"fail", "checks": [...],
        "slos": [...], "burning_slos": [...]}`` from
        :meth:`repro.core.system.PolystorePlusPlus.health`.
        """
        message = {"op": "health", "id": self._next_id()}
        return _unwrap(self.request(message, timeout))["health"]

    def ping(self, timeout: float | None = None) -> bool:
        message = {"op": "ping", "id": self._next_id()}
        return bool(_unwrap(self.request(message, timeout)).get("pong"))


class InProcessClient(_ClientOps):
    """Drives a server on this process's event loop, no bytes involved."""

    def __init__(self, server: Any) -> None:
        self._server = server

    def submit(self, message: dict[str, Any]) -> "Future[dict[str, Any]]":
        """Fire one message; the future resolves to the raw response."""
        future: "Future[dict[str, Any]]" = Future()
        self._server._submit(message, future.set_result)
        return future

    def submit_execute(self, program: str,
                       params: dict[str, Any] | None = None, *,
                       tenant: str | None = None,
                       deadline_s: float | None = None,
                       request_id: Any = None) -> "Future[dict[str, Any]]":
        """Non-blocking execute; the future resolves to the raw response."""
        message: dict[str, Any] = {
            "op": "execute",
            "id": request_id if request_id is not None else self._next_id(),
            "program": program,
            "params": params or {},
        }
        if tenant is not None:
            message["tenant"] = tenant
        if deadline_s is not None:
            message["deadline_s"] = deadline_s
        return self.submit(message)

    def request(self, message: dict[str, Any],
                timeout: float | None = None) -> dict[str, Any]:
        return self.submit(message).result(timeout)

    def close(self) -> None:
        """Nothing to release; present for transport symmetry."""


class TcpClient(_ClientOps):
    """Blocking TCP client for the length-prefixed JSON wire protocol.

    Timeouts never desynchronize the stream: frame bytes are accumulated in
    a buffer owned by the receive lock, so a read that times out mid-frame
    leaves the partial frame buffered and the next reader resumes it — the
    late response is then parked for its waiter (or dropped with its
    request), never misparsed as a fresh length prefix.
    """

    _prefix = "t"

    def __init__(self, host: str, port: int, *,
                 connect_timeout: float = 5.0) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=connect_timeout)
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._recv_buf = bytearray()  # partial frame; _recv_lock guards it
        self._pending: dict[Any, dict[str, Any]] = {}

    def request(self, message: dict[str, Any],
                timeout: float | None = None) -> dict[str, Any]:
        request_id = message.get("id")
        with self._send_lock:
            self._sock.sendall(encode_frame(message))
        return self._await(request_id, timeout)

    def _await(self, request_id: Any,
               timeout: float | None) -> dict[str, Any]:
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            response = self._pending.pop(request_id, None)
            if response is not None:
                return response
            if not self._acquire_recv(deadline):
                raise TimeoutError(
                    f"timed out waiting for response {request_id!r}")
            try:
                # Re-check: another waiter may have parked ours meanwhile.
                response = self._pending.pop(request_id, None)
                if response is not None:
                    return response
                frame = self._read_frame(deadline)
            finally:
                self._recv_lock.release()
            if frame is None:
                raise protocol.ProtocolError(
                    "server closed the connection mid-request")
            if frame.get("id") == request_id:
                return frame
            self._pending[frame.get("id")] = frame

    def _acquire_recv(self, deadline: float | None) -> bool:
        if deadline is None:
            self._recv_lock.acquire()
            return True
        remaining = deadline - time.monotonic()
        return self._recv_lock.acquire(timeout=max(0.0, remaining))

    def _read_frame(self, deadline: float | None) -> dict[str, Any] | None:
        """One frame via the resumable buffer; ``None`` on a clean EOF.

        Caller holds ``_recv_lock``.  Raises :class:`TimeoutError` past the
        deadline, leaving any partially received frame in ``_recv_buf``.
        """
        prefix_size = protocol.FRAME_PREFIX_BYTES
        try:
            if not self._fill_buf(prefix_size, deadline):
                if self._recv_buf:
                    raise protocol.ProtocolError(
                        "connection closed mid-frame")
                return None
            length = protocol.frame_length(bytes(self._recv_buf[:prefix_size]))
            if not self._fill_buf(prefix_size + length, deadline):
                raise protocol.ProtocolError("connection closed mid-frame")
        finally:
            self._sock.settimeout(None)
        body = bytes(self._recv_buf[prefix_size:prefix_size + length])
        del self._recv_buf[:prefix_size + length]
        return protocol.decode_body(body)

    def _fill_buf(self, need: int, deadline: float | None) -> bool:
        """Grow ``_recv_buf`` to ``need`` bytes; ``False`` on EOF."""
        while len(self._recv_buf) < need:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("timed out mid-frame")
                self._sock.settimeout(remaining)
            else:
                self._sock.settimeout(None)
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:  # alias of TimeoutError on 3.10+
                raise TimeoutError("timed out mid-frame") from None
            if not chunk:
                return False
            self._recv_buf += chunk
        return True

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "TcpClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
