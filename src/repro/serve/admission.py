"""Admission control: bounded execution slots, bounded queues, stride fairness.

The controller front-ends the server's session pool.  ``slots`` mirrors the
pool size: an admitted request immediately occupies one execution slot; when
all slots are busy the request is *queued* per tenant, and when its tenant
queue (or the global bound) is full it is *rejected* with ``OVERLOADED`` —
overload is always an explicit, retryable signal, never silent unbounded
queueing.

Dequeue order across tenants is `stride scheduling
<https://doi.org/10.5555/1267638.1267639>`_: each tenant carries a *pass*
value advanced by ``STRIDE / weight`` per dispatched request, and the
non-empty tenant with the smallest pass runs next.  A weight-4 tenant
therefore drains four requests for every one of a weight-1 tenant under
contention, while an idle tenant's pass is re-synced on arrival so it
cannot hoard credit.  The ``retry_after_s`` hint on rejection is derived
from an EWMA of observed service times and the queue backlog.

All state here is intentionally *not* locked: every method must be called
from the server's event-loop thread only.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any

from repro.exceptions import ConfigurationError

#: Stride numerator; pass values advance by ``STRIDE / weight`` per dispatch.
STRIDE = 1 << 20

#: EWMA smoothing factor for the observed service time.
_EWMA_ALPHA = 0.2

#: Fallback service-time estimate before any request completes.
_DEFAULT_SERVICE_S = 0.05


class AdmissionController:
    """Slot/queue bookkeeping for one server.  Event-loop thread only."""

    def __init__(self, *, slots: int, max_queue: int,
                 max_queue_per_tenant: int) -> None:
        if slots < 1:
            raise ConfigurationError("admission slots must be positive")
        if max_queue < 0 or max_queue_per_tenant < 0:
            raise ConfigurationError("admission queue bounds must be >= 0")
        self.slots = slots
        self.max_queue = max_queue
        self.max_queue_per_tenant = max_queue_per_tenant
        self._busy = 0
        self._queued = 0
        # Tenant -> FIFO of queued items; ordered dict keeps iteration stable.
        self._queues: "OrderedDict[str, deque[Any]]" = OrderedDict()
        self._pass: dict[str, float] = {}
        self._global_pass = 0.0
        self._service_ewma_s = _DEFAULT_SERVICE_S
        self.admitted_total = 0
        self.queued_total = 0
        self.rejected_total = 0

    # -- admission -----------------------------------------------------------------------

    def try_admit(self, tenant: str, item: Any, *,
                  weight: float = 1.0) -> tuple[str, float]:
        """Admit, queue, or reject one request.

        Returns ``("run", 0.0)`` when an execution slot was taken,
        ``("queued", 0.0)`` when the request joined its tenant queue, or
        ``("reject", retry_after_s)`` when both the slots and the bounded
        queues are full.
        """
        if self._busy < self.slots and self._queued == 0:
            self._busy += 1
            self._charge(tenant, weight)
            self.admitted_total += 1
            return "run", 0.0
        queue = self._queues.get(tenant)
        depth = len(queue) if queue is not None else 0
        if self._queued >= self.max_queue or depth >= self.max_queue_per_tenant:
            self.rejected_total += 1
            return "reject", self.retry_after_hint()
        if queue is None:
            queue = deque()
            self._queues[tenant] = queue
            # Re-sync an idle tenant's pass so it cannot spend banked credit
            # accumulated while it had nothing queued.
            self._pass[tenant] = max(self._pass.get(tenant, 0.0),
                                     self._global_pass)
        queue.append(item)
        self._queued += 1
        self.queued_total += 1
        return "queued", 0.0

    def on_release(self, weights: dict[str, float] | Any = None) -> Any | None:
        """Free one execution slot; dispatch the next queued item if any.

        ``weights`` maps tenant -> stride weight (a callable ``tenant ->
        weight`` also works).  Returns the dequeued item now holding the
        freed slot, or ``None`` when nothing was queued.
        """
        if self._busy <= 0:
            raise RuntimeError("on_release called with no busy slot")
        if self._queued == 0:
            self._busy -= 1
            return None
        tenant = min(self._queues, key=lambda t: self._pass.get(t, 0.0))
        queue = self._queues[tenant]
        item = queue.popleft()
        if not queue:
            del self._queues[tenant]
            self._pass.pop(tenant, None)
        self._queued -= 1
        weight = 1.0
        if callable(weights):
            weight = weights(tenant)
        elif weights:
            weight = weights.get(tenant, 1.0)
        self._charge(tenant, weight)
        self.admitted_total += 1
        return item

    def _charge(self, tenant: str, weight: float) -> None:
        advanced = self._pass.get(tenant, self._global_pass) + STRIDE / weight
        self._global_pass = max(self._global_pass, advanced)
        # A pass entry only matters while the tenant has queued work (it is
        # what on_release's min-pass pick reads); storing it for queue-less
        # tenants would grow without bound with tenant-id cardinality, and
        # the arrival re-sync to >= _global_pass supersedes it anyway.
        if tenant in self._queues:
            self._pass[tenant] = advanced

    # -- cancellation / shutdown ---------------------------------------------------------

    def remove(self, tenant: str, item: Any) -> bool:
        """Remove one still-queued item (client cancel); False if absent."""
        queue = self._queues.get(tenant)
        if queue is None:
            return False
        try:
            queue.remove(item)
        except ValueError:
            return False
        self._queued -= 1
        if not queue:
            del self._queues[tenant]
            self._pass.pop(tenant, None)
        return True

    def drain(self) -> list[Any]:
        """Remove and return every queued item (shutdown path)."""
        items: list[Any] = []
        for queue in self._queues.values():
            items.extend(queue)
        self._queues.clear()
        self._pass.clear()
        self._queued = 0
        return items

    # -- feedback / introspection --------------------------------------------------------

    def observe_service_time(self, seconds: float) -> None:
        """Fold one completed request's service time into the EWMA."""
        if seconds >= 0:
            self._service_ewma_s += _EWMA_ALPHA * (seconds
                                                   - self._service_ewma_s)

    def retry_after_hint(self) -> float:
        """How long a rejected client should wait before retrying.

        The backlog ahead of a new arrival is every queued request plus the
        busy slots, serviced ``slots`` at a time at the EWMA rate.
        """
        backlog = self._queued + self._busy
        return max(0.001, backlog * self._service_ewma_s / self.slots)

    @property
    def busy(self) -> int:
        return self._busy

    @property
    def queued(self) -> int:
        return self._queued

    def queue_depth(self, tenant: str) -> int:
        queue = self._queues.get(tenant)
        return len(queue) if queue is not None else 0

    def queue_depths(self) -> dict[str, int]:
        return {tenant: len(queue) for tenant, queue in self._queues.items()}

    def snapshot(self) -> dict[str, Any]:
        return {
            "slots": self.slots,
            "max_queue": self.max_queue,
            "busy": self._busy,
            "queued": self._queued,
            "queues": self.queue_depths(),
            "admitted_total": self.admitted_total,
            "queued_total": self.queued_total,
            "rejected_total": self.rejected_total,
            "service_ewma_s": round(self._service_ewma_s, 6),
        }
