"""Per-tenant quotas: token buckets for rate, weights for priority.

Each tenant gets a :class:`TenantPolicy` — a token-bucket *rate* (requests
per second, ``None`` = unlimited), a *burst* allowance, and a scheduling
*weight* consumed by the admission controller's stride scheduler.  Tenants
never configured explicitly inherit the manager's default policy, so an
open deployment works with zero setup and a multi-tenant one tightens
per-tenant limits with :meth:`QuotaManager.set_policy`.

Quota rejection is a *pre-admission* decision: a tenant over its rate is
refused with ``QUOTA_EXCEEDED`` and a ``retry_after_s`` hint before it can
occupy a queue slot, so one chatty tenant cannot displace queued work from
the others even while the server is otherwise idle.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's limits: bucket rate/burst plus scheduling weight."""

    #: Sustained requests per second; ``None`` disables rate limiting.
    rate: float | None = None
    #: Bucket capacity: how many requests may arrive back-to-back.
    burst: float = 8.0
    #: Stride-scheduling weight; a weight-4 tenant drains its admission
    #: queue four times as often as a weight-1 tenant under contention.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ConfigurationError("quota rate must be positive (or None)")
        if self.burst < 1:
            raise ConfigurationError("quota burst must be at least 1")
        if self.weight <= 0:
            raise ConfigurationError("quota weight must be positive")


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s up to ``burst`` capacity."""

    def __init__(self, rate: float, burst: float, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._refilled_at = now

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available; else the wait until they would be.

        Returns ``0.0`` on success, otherwise the (positive) number of
        seconds after which a retry would succeed.  Never blocks.
        """
        now = self._clock()
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current token balance (after a refill to now)."""
        self._refill(self._clock())
        return self._tokens


class QuotaManager:
    """Per-tenant policies and buckets behind one thread-safe facade."""

    def __init__(self, default: TenantPolicy | None = None, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._default = default if default is not None else TenantPolicy()
        self._clock = clock
        self._policies: dict[str, TenantPolicy] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def set_policy(self, tenant: str, *, rate: float | None = None,
                   burst: float | None = None,
                   weight: float | None = None) -> TenantPolicy:
        """Set (or amend) one tenant's policy; omitted fields keep defaults.

        Resetting replaces the tenant's bucket, so a tightened rate takes
        effect immediately rather than after the old bucket drains.
        """
        with self._lock:
            base = self._policies.get(tenant, self._default)
            policy = TenantPolicy(
                rate=rate if rate is not None else base.rate,
                burst=burst if burst is not None else base.burst,
                weight=weight if weight is not None else base.weight,
            )
            self._policies[tenant] = policy
            self._buckets.pop(tenant, None)
            return policy

    def policy(self, tenant: str) -> TenantPolicy:
        """The effective policy for ``tenant`` (default when unset)."""
        with self._lock:
            return self._policies.get(tenant, self._default)

    def weight(self, tenant: str) -> float:
        """The tenant's scheduling weight (for the admission controller)."""
        return self.policy(tenant).weight

    def try_acquire(self, tenant: str, tokens: float = 1.0) -> float:
        """Charge one request against the tenant's bucket.

        Returns ``0.0`` when admitted, else the ``retry_after_s`` hint.
        Unlimited tenants (``rate=None``) always pass.
        """
        with self._lock:
            policy = self._policies.get(tenant, self._default)
            if policy.rate is None:
                return 0.0
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(policy.rate, policy.burst,
                                     clock=self._clock)
                self._buckets[tenant] = bucket
            return bucket.try_acquire(tokens)

    def describe(self) -> dict[str, Any]:
        """Configured policies plus live bucket balances."""
        with self._lock:
            return {
                "default": {"rate": self._default.rate,
                            "burst": self._default.burst,
                            "weight": self._default.weight},
                "tenants": {
                    tenant: {
                        "rate": policy.rate,
                        "burst": policy.burst,
                        "weight": policy.weight,
                        "tokens": (self._buckets[tenant].tokens
                                   if tenant in self._buckets else policy.burst),
                    }
                    for tenant, policy in sorted(self._policies.items())
                },
            }
