"""Serving tier: async front-end, admission control, quotas, coalescing.

Entry point: :meth:`PolystorePlusPlus.serve` builds and starts a
:class:`PolystoreServer` over the deployment.  See ``DESIGN.md`` ("Serving
tier") for the protocol, admission state machine and cancellation
checkpoints.
"""

from repro.serve.admission import AdmissionController
from repro.serve.client import InProcessClient, ServeError, TcpClient
from repro.serve.coalesce import Coalescer, coalesce_key
from repro.serve.protocol import RETRYABLE_CODES, ProtocolError
from repro.serve.quotas import QuotaManager, TenantPolicy, TokenBucket
from repro.serve.server import PolystoreServer, RegisteredProgram, ServeConfig

__all__ = [
    "PolystoreServer",
    "ServeConfig",
    "RegisteredProgram",
    "InProcessClient",
    "TcpClient",
    "ServeError",
    "ProtocolError",
    "RETRYABLE_CODES",
    "AdmissionController",
    "QuotaManager",
    "TenantPolicy",
    "TokenBucket",
    "Coalescer",
    "coalesce_key",
]
