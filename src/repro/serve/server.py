"""The serving tier: one asyncio front-end over a bounded session pool.

:class:`PolystoreServer` multiplexes many client connections onto
``pool_size`` worker sessions.  Clients execute *registered* programs by
name (prepared-statement style: the server owns plan caching, clients send
parameters), over either a TCP transport speaking the length-prefixed JSON
protocol of :mod:`repro.serve.protocol` or an in-process transport
(:meth:`PolystoreServer.connect`) that passes the same dictionaries without
bytes.

Threading model — three kinds of threads, one owner per piece of state:

* the **event-loop thread** owns every coordination structure (admission
  queues, coalescing groups, the in-flight registry).  Requests, cancels
  and completions are all funneled here via ``call_soon_threadsafe``, so
  none of it needs locks;
* **worker threads** (exactly ``pool_size``) each check a session out of a
  queue, run the prepared program, and post the outcome back to the loop.
  A busy worker is exactly one busy admission slot, so admission-control
  saturation *is* session-pool saturation;
* **client threads** only enqueue messages onto the loop and wait on
  per-request futures.

Overload is always explicit: a request beyond the bounded queues is
rejected with a retryable ``OVERLOADED`` error and a ``retry_after_s``
hint — the server never queues unboundedly and never blocks a client
silently.  Cancellation (client ``cancel`` op, queued-deadline expiry, or
disconnect) is cooperative end-to-end: a queued request is unlinked before
it ever runs, a running one has its :class:`CancellationToken` tripped and
stops at the executor's next checkpoint.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.cancellation import CancellationToken
from repro.exceptions import CancelledError, ConfigurationError, DeadlineExceededError
from repro.serve import protocol
from repro.serve.admission import AdmissionController
from repro.serve.coalesce import Coalescer, coalesce_key
from repro.serve.protocol import (
    encode_frame,
    error_response,
    ok_response,
    read_frame,
    serialize_outputs,
)
from repro.serve.quotas import QuotaManager

#: How often the loop sweeps queued/waiting requests for expired deadlines.
_SWEEP_INTERVAL_S = 0.025


@dataclass(frozen=True)
class ServeConfig:
    """Front-end configuration (defaults come from ``SystemConfig``)."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Worker sessions = execution slots = admission-control capacity.
    pool_size: int = 4
    #: Total queued requests across tenants before rejecting OVERLOADED.
    max_queue: int = 64
    #: Queued requests any single tenant may hold.
    max_queue_per_tenant: int = 32
    #: Deadline applied to requests that do not send their own.
    default_deadline_s: float | None = None
    #: Tenant attributed to requests that do not send one.
    default_tenant: str = "default"

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ConfigurationError("serve pool_size must be positive")
        if self.max_queue < 0 or self.max_queue_per_tenant < 0:
            raise ConfigurationError("serve queue bounds must be >= 0")


@dataclass(frozen=True)
class RegisteredProgram:
    """One name a client may execute, bound to its compile-time choices."""

    name: str
    program: Any
    mode: str
    options: Any
    #: Whether identical concurrent requests may share one execution.
    #: Register write programs with ``coalesce=False``.
    coalesce: bool


class _Request:
    """One in-flight execute request (loop-owned coordination record)."""

    __slots__ = ("id", "tenant", "name", "params", "token", "deliver",
                 "enqueued_at", "started_at", "state", "group", "key",
                 "tracker")

    def __init__(self, request_id: Any, tenant: str, name: str,
                 params: dict[str, Any], token: CancellationToken,
                 deliver: Any, enqueued_at: float,
                 tracker: set | None) -> None:
        self.id = request_id
        self.tenant = tenant
        self.name = name
        self.params = params
        self.token = token
        self.deliver = deliver
        self.enqueued_at = enqueued_at
        self.started_at = enqueued_at
        self.state = "new"  # queued | running | follower
        self.group = None
        self.key: str | None = None
        self.tracker = tracker


class _SessionSlot:
    """One pooled session plus its prepared-program cache."""

    __slots__ = ("session", "prepared")

    def __init__(self, session: Any) -> None:
        self.session = session
        self.prepared: dict[str, Any] = {}


class PolystoreServer:
    """Async serving front-end over one Polystore++ deployment."""

    def __init__(self, system: Any, config: ServeConfig | None = None) -> None:
        self._system = system
        self._config = config if config is not None else ServeConfig()
        self._obs = system.obs
        self._log = system.obs.logger("serve")
        self._programs: dict[str, RegisteredProgram] = {}
        self._quotas = QuotaManager()
        self._admission = AdmissionController(
            slots=self._config.pool_size,
            max_queue=self._config.max_queue,
            max_queue_per_tenant=self._config.max_queue_per_tenant)
        self._coalescer = Coalescer()
        self._inflight: dict[tuple[str, Any], _Request] = {}
        self._gauge_tenants: set[str] = set()
        self._gauge_stale: set[str] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._tcp_server: asyncio.AbstractServer | None = None
        self._sweeper: "asyncio.Task | None" = None
        self._address: tuple[str, int] | None = None
        self._slots: "queue.Queue[_SessionSlot]" = queue.Queue()
        self._workers: ThreadPoolExecutor | None = None
        self._running = False
        self._shutting_down = False
        self._loop_stopping = False

    # -- registration --------------------------------------------------------------------

    def register(self, name: str, program: Any, *, mode: str = "polystore++",
                 options: Any = None, coalesce: bool = True
                 ) -> RegisteredProgram:
        """Expose ``program`` to clients under ``name``.

        Every request re-reads the live engines (``reuse_scans=False``): a
        serving read must observe concurrent writes, so pinned-scan replay
        is deliberately not used here.
        """
        registered = RegisteredProgram(name=name, program=program, mode=mode,
                                       options=options, coalesce=coalesce)
        self._programs[name] = registered
        return registered

    def set_tenant(self, tenant: str, *, rate: float | None = None,
                   burst: float | None = None,
                   weight: float | None = None) -> None:
        """Configure one tenant's quota rate/burst and scheduling weight."""
        self._quotas.set_policy(tenant, rate=rate, burst=burst, weight=weight)

    # -- lifecycle -----------------------------------------------------------------------

    def start(self) -> "PolystoreServer":
        """Spin up the loop thread, session pool and TCP listener."""
        if self._running:
            raise ConfigurationError("server already started")
        self._running = True
        for index in range(self._config.pool_size):
            self._slots.put(_SessionSlot(
                self._system.session(name=f"serve-{index}")))
        self._workers = ThreadPoolExecutor(
            max_workers=self._config.pool_size,
            thread_name_prefix="polystore-serve")
        ready = threading.Event()
        self._loop_thread = threading.Thread(
            target=self._run_loop, args=(ready,), name="polystore-serve-loop",
            daemon=True)
        self._loop_thread.start()
        ready.wait()
        future = asyncio.run_coroutine_threadsafe(self._start_tcp(),
                                                  self._loop)
        self._address = future.result(timeout=10)
        return self

    def _run_loop(self, ready: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        loop.call_soon(ready.set)
        try:
            loop.run_forever()
        finally:
            loop.close()

    async def _start_tcp(self) -> tuple[str, int]:
        self._tcp_server = await asyncio.start_server(
            self._serve_connection, self._config.host, self._config.port)
        self._sweeper = asyncio.get_running_loop().create_task(
            self._sweep_deadlines())
        host, port = self._tcp_server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def running(self) -> bool:
        """Whether the server is started and has not completed a stop()."""
        return self._running

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` of the TCP listener."""
        if self._address is None:
            raise ConfigurationError("server is not started")
        return self._address

    def stop(self) -> None:
        """Graceful shutdown: reject queued work, drain running requests."""
        if not self._running:
            return
        asyncio.run_coroutine_threadsafe(self._begin_shutdown(),
                                         self._loop).result(timeout=10)
        # Workers finish their in-flight requests; completions still flow
        # through the live loop, so clients get real responses, not EOF.
        self._workers.shutdown(wait=True)
        # From here until the loop closes, call_soon_threadsafe would accept
        # callbacks the loop will never run; _submit checks this flag.
        self._loop_stopping = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._loop_thread.join(timeout=10)
        while not self._slots.empty():
            self._slots.get_nowait().session.close()
        self._running = False
        self._log.info("server_stop")

    async def _begin_shutdown(self) -> None:
        self._shutting_down = True
        self._log.info("server_drain", inflight=len(self._inflight))
        if self._sweeper is not None:
            self._sweeper.cancel()
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for request in self._admission.drain():
            self._finish_rejected(request, protocol.SHUTTING_DOWN,
                                  "server is shutting down",
                                  reason="shutdown")

    def __enter__(self) -> "PolystoreServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- transports ----------------------------------------------------------------------

    def connect(self):
        """An in-process client speaking the message protocol sans bytes."""
        from repro.serve.client import InProcessClient

        return InProcessClient(self)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        tracker: set[tuple[str, Any]] = set()

        def deliver(response: dict[str, Any]) -> None:
            try:
                writer.write(encode_frame(response))
            # repro: allow(cancellation-safety): sync write; only transport errors surface
            except Exception:
                pass  # client went away; the request already ran its course

        try:
            while True:
                try:
                    message = await read_frame(reader)
                except protocol.ProtocolError as exc:
                    deliver(error_response(None, protocol.BAD_REQUEST,
                                           str(exc)))
                    break
                if message is None:
                    break
                self._handle_message(message, deliver, tracker)
        finally:
            # A dropped connection cancels whatever it still had in flight.
            for key in list(tracker):
                self._cancel_inflight(key, reason="client disconnected")
            writer.close()

    def _submit(self, message: dict[str, Any], deliver: Any) -> None:
        """Thread-safe entry point used by the in-process transport."""
        # The loop callback and the stop-race fallback below can both try to
        # respond; the client's future must be resolved exactly once.
        once = threading.Lock()
        done = [False]

        def deliver_once(response: dict[str, Any]) -> None:
            with once:
                if done[0]:
                    return
                done[0] = True
            deliver(response)

        def refuse() -> None:
            deliver_once(error_response(message.get("id"),
                                        protocol.SHUTTING_DOWN,
                                        "server is stopped"))

        if self._loop is None or self._loop_stopping:
            refuse()
            return
        try:
            self._loop.call_soon_threadsafe(self._handle_message, message,
                                            deliver_once, None)
        except RuntimeError:
            # The loop is closed: the server was stopped after this client
            # grabbed its handle.  Same contract as a drained queue entry.
            refuse()
            return
        if self._loop_stopping:
            # stop() raced us between the check above and the post: the loop
            # may halt without ever running the callback.  Refuse directly so
            # the client cannot hang; deliver_once drops the duplicate if the
            # callback did run.
            refuse()

    # -- message handling (event-loop thread only) ---------------------------------------

    def _handle_message(self, message: dict[str, Any], deliver: Any,
                        tracker: set | None) -> None:
        request_id = message.get("id")
        try:
            op = message.get("op")
            if op == "execute":
                self._handle_execute(message, deliver, tracker)
            elif op == "cancel":
                self._handle_cancel(message, deliver)
            elif op == "metrics":
                deliver(ok_response(request_id,
                                    metrics=self._system.export_prometheus()))
            elif op == "programs":
                deliver(ok_response(request_id, programs=sorted(self._programs)))
            elif op == "stats":
                deliver(ok_response(request_id, stats=self._stats_locked()))
            elif op == "ping":
                deliver(ok_response(request_id, pong=True))
            elif op == "health":
                # Load-balancer probe: component checks + SLO burn rates.
                # Safe on the loop thread — this server's stats resolve
                # directly (no cross-thread hop) inside system.health().
                deliver(ok_response(request_id, health=self._system.health()))
            else:
                deliver(error_response(request_id, protocol.BAD_REQUEST,
                                       f"unknown op {op!r}"))
        except DeadlineExceededError as exc:
            deliver(error_response(request_id, protocol.DEADLINE_EXCEEDED,
                                   str(exc)))
        except CancelledError as exc:
            deliver(error_response(request_id, protocol.CANCELLED, str(exc)))
        except Exception as exc:  # never leave a client waiting forever
            deliver(error_response(request_id, protocol.INTERNAL,
                                   f"{type(exc).__name__}: {exc}"))

    def _handle_execute(self, message: dict[str, Any], deliver: Any,
                        tracker: set | None) -> None:
        request_id = message.get("id")
        tenant = str(message.get("tenant") or self._config.default_tenant)
        name = message.get("program")
        registered = self._programs.get(name) if isinstance(name, str) else None
        if registered is None:
            deliver(error_response(
                request_id, protocol.UNKNOWN_PROGRAM,
                f"no program registered as {name!r}"))
            return
        params = message.get("params") or {}
        if not isinstance(params, dict):
            deliver(error_response(request_id, protocol.BAD_REQUEST,
                                   "params must be an object"))
            return
        if self._shutting_down:
            self._obs.serve_rejects_total.inc(tenant=tenant, reason="shutdown")
            self._log.warning("admission_reject", tenant=tenant,
                              program=name, reason="shutdown")
            deliver(error_response(request_id, protocol.SHUTTING_DOWN,
                                   "server is shutting down"))
            return
        retry_after = self._quotas.try_acquire(tenant)
        if retry_after > 0:
            self._obs.serve_rejects_total.inc(tenant=tenant, reason="quota")
            self._log.warning("admission_reject", tenant=tenant,
                              program=name, reason="quota",
                              retry_after_s=retry_after)
            deliver(error_response(request_id, protocol.QUOTA_EXCEEDED,
                                   f"tenant {tenant!r} is over its rate",
                                   retry_after_s=retry_after))
            return
        deadline_s = message.get("deadline_s", self._config.default_deadline_s)
        token = CancellationToken(deadline_s=deadline_s)
        request = _Request(request_id, tenant, name, params, token, deliver,
                           time.monotonic(), tracker)
        inflight_key = (tenant, request_id)

        if registered.coalesce:
            request.key = coalesce_key(tenant, name, registered.mode, params)
        if request.key is not None:
            group = self._coalescer.lookup(request.key)
            if group is not None:
                request.state = "follower"
                request.group = group
                self._coalescer.attach(group, request_id, request)
                self._track(inflight_key, request)
                return

        decision, hint = self._admission.try_admit(
            tenant, request, weight=self._quotas.weight(tenant))
        if decision == "reject":
            self._obs.serve_rejects_total.inc(tenant=tenant,
                                              reason="overloaded")
            self._log.warning("admission_reject", tenant=tenant,
                              program=name, reason="overloaded",
                              retry_after_s=hint)
            deliver(error_response(
                request_id, protocol.OVERLOADED,
                "admission queues are full", retry_after_s=hint))
            return
        self._track(inflight_key, request)
        if request.key is not None:
            request.group = self._coalescer.create(request.key, request_id)
        if decision == "run":
            self._dispatch(request)
        else:
            request.state = "queued"
            self._gauge_tenants.add(tenant)
            self._log.info("admission_queue", tenant=tenant, program=name)

    def _track(self, key: tuple[str, Any], request: _Request) -> None:
        self._inflight[key] = request
        if request.tracker is not None:
            request.tracker.add(key)

    def _untrack(self, request: _Request) -> None:
        key = (request.tenant, request.id)
        self._inflight.pop(key, None)
        if request.tracker is not None:
            request.tracker.discard(key)

    def _handle_cancel(self, message: dict[str, Any], deliver: Any) -> None:
        request_id = message.get("id")
        tenant = str(message.get("tenant") or self._config.default_tenant)
        target = message.get("target")
        found = self._cancel_inflight((tenant, target),
                                      reason="cancelled by client")
        deliver(ok_response(request_id, found=found))

    def _cancel_inflight(self, key: tuple[str, Any], *, reason: str) -> bool:
        request = self._inflight.get(key)
        if request is None:
            return False
        if request.state == "queued":
            if self._admission.remove(request.tenant, request):
                if request.group is not None:
                    # The group dies with its queued leader: followers get
                    # the same cancellation (they can simply retry).
                    self._coalescer.pop(request.group.key)
                    for follower in list(request.group.waiters.values()):
                        self._finish_cancelled(follower, reason)
                self._finish_cancelled(request, reason)
                return True
            return False  # raced a dispatch; caller may retry as running
        if request.state == "follower":
            self._coalescer.detach(request.group, request.id)
            self._finish_cancelled(request, reason)
            return True
        # Running: trip the token; the executor stops at its next checkpoint
        # and the completion path delivers the CANCELLED response.
        request.token.cancel(reason)
        return True

    def _finish_cancelled(self, request: _Request, reason: str) -> None:
        self._untrack(request)
        self._obs.serve_requests_total.inc(tenant=request.tenant,
                                           outcome="cancelled")
        request.deliver(error_response(request.id, protocol.CANCELLED, reason))

    def _finish_rejected(self, request: _Request, code: str, message: str, *,
                         reason: str) -> None:
        """Fail one queued *leader* — and with it its whole coalescing group.

        Never call this for a follower: the group's execution keeps running,
        so the other waiters must stay attached for its completion.
        """
        self._untrack(request)
        if request.group is not None:
            self._coalescer.pop(request.group.key)
            for follower in list(request.group.waiters.values()):
                self._untrack(follower)
                self._obs.serve_rejects_total.inc(tenant=follower.tenant,
                                                  reason=reason)
                follower.deliver(error_response(follower.id, code, message))
        self._obs.serve_rejects_total.inc(tenant=request.tenant, reason=reason)
        request.deliver(error_response(request.id, code, message))

    # -- dispatch and completion ---------------------------------------------------------

    def _dispatch(self, request: _Request) -> None:
        now = time.monotonic()
        if request.state == "queued":
            self._obs.serve_queue_wait_seconds.observe(
                now - request.enqueued_at, tenant=request.tenant)
        request.state = "running"
        request.started_at = now
        self._workers.submit(self._run_request, request)

    def _run_request(self, request: _Request) -> None:
        """Worker thread: run the prepared program on a pooled session."""
        registered = self._programs[request.name]
        slot = self._slots.get()
        try:
            outcome = self._run_on_slot(slot, registered, request)
        finally:
            self._slots.put(slot)
        self._loop.call_soon_threadsafe(self._on_complete, request, outcome)

    def _run_on_slot(self, slot: _SessionSlot, registered: RegisteredProgram,
                     request: _Request) -> tuple[str, Any, str]:
        try:
            request.token.check()  # cancelled while queued-to-worker
            with self._obs.tracer.request(
                    f"serve:{request.name}", tenant=request.tenant,
                    program=request.name) as span:
                prepared = slot.prepared.get(request.name)
                if prepared is None:
                    prepared = slot.session.prepare(
                        registered.program, mode=registered.mode,
                        options=registered.options)
                    slot.prepared[request.name] = prepared
                result = prepared.run(reuse_scans=False,
                                      cancellation=request.token,
                                      **request.params)
                if span is not None:
                    span.set(operators=len(result.report.records))
        except DeadlineExceededError as exc:
            return "deadline", None, str(exc)
        except CancelledError as exc:
            return "cancelled", None, str(exc)
        except Exception as exc:
            return "error", None, f"{type(exc).__name__}: {exc}"
        payload = {
            "outputs": serialize_outputs(result.outputs),
            "mode": result.mode,
            "charged_time_s": result.total_time_s,
        }
        return "ok", payload, ""

    def _on_complete(self, request: _Request,
                     outcome: tuple[str, Any, str]) -> None:
        kind, payload, message = outcome
        now = time.monotonic()
        self._admission.observe_service_time(now - request.started_at)
        self._deliver_outcome(request, kind, payload, message, now,
                              coalesced=False)
        if request.group is not None:
            self._coalescer.pop(request.group.key)
            for follower in list(request.group.waiters.values()):
                self._deliver_outcome(follower, kind, payload, message, now,
                                      coalesced=True)
        self._release_slot()

    def _deliver_outcome(self, request: _Request, kind: str, payload: Any,
                         message: str, now: float, *,
                         coalesced: bool) -> None:
        self._untrack(request)
        outcome = "coalesced" if (coalesced and kind == "ok") else kind
        self._obs.serve_requests_total.inc(tenant=request.tenant,
                                           outcome=outcome)
        self._obs.serve_request_seconds.observe(now - request.enqueued_at,
                                                tenant=request.tenant)
        if coalesced and kind == "ok":
            self._obs.serve_coalesced_total.inc(tenant=request.tenant)
        if kind == "ok":
            request.deliver(ok_response(request.id, coalesced=coalesced,
                                        **payload))
        elif kind == "deadline":
            request.deliver(error_response(
                request.id, protocol.DEADLINE_EXCEEDED, message))
        elif kind == "cancelled":
            request.deliver(error_response(
                request.id, protocol.CANCELLED, message))
        else:
            request.deliver(error_response(
                request.id, protocol.INTERNAL, message))

    def _release_slot(self) -> None:
        while True:
            request = self._admission.on_release(self._quotas.weight)
            if request is None:
                return
            if request.token.aborted():
                # Expired (or cancel raced the sweep) while queued: the slot
                # stays held, loop to hand it to the next live request.
                if request.token.cancelled:
                    self._finish_cancelled(request, "cancelled while queued")
                else:
                    self._finish_rejected(
                        request, protocol.DEADLINE_EXCEEDED,
                        "deadline expired while queued", reason="deadline")
                continue
            self._dispatch(request)
            return

    async def _sweep_deadlines(self) -> None:
        """Expire queued/waiting requests whose deadline passed pre-run."""
        while not self._shutting_down:
            await asyncio.sleep(_SWEEP_INTERVAL_S)
            for request in list(self._inflight.values()):
                if not request.token.aborted():
                    continue
                if request.state == "queued":
                    if self._admission.remove(request.tenant, request):
                        self._finish_rejected(
                            request, protocol.DEADLINE_EXCEEDED,
                            "deadline expired while queued",
                            reason="deadline")
                elif request.state == "follower":
                    # Only this waiter expires: detach it and leave the group
                    # (leader and other followers) running.  _finish_rejected
                    # would fail the whole group and then double-deliver when
                    # the still-running leader completes.
                    self._coalescer.detach(request.group, request.id)
                    self._untrack(request)
                    self._obs.serve_rejects_total.inc(tenant=request.tenant,
                                                      reason="deadline")
                    request.deliver(error_response(
                        request.id, protocol.DEADLINE_EXCEEDED,
                        "deadline expired while coalesced"))

    # -- introspection -------------------------------------------------------------------

    def _stats_locked(self) -> dict[str, Any]:
        """Live server state; event-loop thread only."""
        return {
            "admission": self._admission.snapshot(),
            "quotas": self._quotas.describe(),
            "coalesced_groups": self._coalescer.depth(),
            "coalesced_attached_total": self._coalescer.attached_total,
            "inflight": len(self._inflight),
            "programs": sorted(self._programs),
            "address": list(self._address) if self._address else None,
        }

    def stats(self) -> dict[str, Any]:
        """Thread-safe server state snapshot (admission, quotas, groups)."""
        return self._call_on_loop(self._stats_locked)

    def _call_on_loop(self, fn: Any) -> Any:
        if self._loop is None or not self._loop.is_running():
            return fn()
        if threading.get_ident() == getattr(self._loop_thread, "ident", None):
            return fn()
        done: "queue.Queue[Any]" = queue.Queue(maxsize=1)
        self._loop.call_soon_threadsafe(lambda: done.put(fn()))
        return done.get(timeout=10)

    def refresh_gauges(self) -> None:
        """Sample queue depths and busy slots into the serve gauges.

        Called by ``PolystorePlusPlus.refresh_gauges`` before every metrics
        export, from whichever thread scrapes.
        """
        if not self._obs.enabled:
            return
        snapshot = self._call_on_loop(self._gauge_payload)
        for tenant, depth in snapshot["queues"].items():
            self._obs.serve_queue_depth.set(depth, tenant=tenant)
        for tenant in snapshot["stale"]:
            self._obs.serve_queue_depth.remove(tenant=tenant)
        self._obs.serve_sessions_busy.set(snapshot["busy"])

    def _gauge_payload(self) -> dict[str, Any]:
        depths = self._admission.queue_depths()
        live = set(depths)
        # A tenant whose queue drained must scrape as zero once, not vanish
        # mid-series; after that zero sample its series is dropped so gauge
        # label cardinality stays bounded (tenant ids are client-supplied).
        queues = {tenant: depths.get(tenant, 0)
                  for tenant in self._gauge_tenants | live}
        stale = sorted(self._gauge_stale - set(queues))
        self._gauge_stale = {tenant for tenant in queues
                             if tenant not in live}
        self._gauge_tenants = live
        return {"queues": queues, "busy": self._admission.busy,
                "stale": stale}
