"""Wire protocol for the serving tier: length-prefixed JSON frames.

Every message — request or response — is one *frame*: a 4-byte big-endian
unsigned length followed by that many bytes of UTF-8 JSON.  The framing is
deliberately minimal (no versioned header, no compression): it keeps the
protocol implementable from any language in a few lines while still giving
clean message boundaries over TCP.  The in-process transport skips the
bytes entirely and passes the same dictionaries.

Requests carry ``op`` (``execute``, ``cancel``, ``metrics``, ``programs``,
``ping``), a client-chosen ``id`` echoed on the response, and an optional
``tenant``.  Responses are ``{"id", "ok": true, ...}`` or ``{"id", "ok":
false, "error": {"code", "message", "retryable", "retry_after_s"?}}``.
Overload and quota rejections are *retryable* — the client is told to back
off and retry rather than silently queued; everything else is not.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from repro.datamodel.table import Table
from repro.exceptions import PolystoreError

#: Frames larger than this are refused (a corrupt length prefix must not
#: make the server try to allocate gigabytes).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: Size of the length prefix that starts every frame.
FRAME_PREFIX_BYTES = _LENGTH.size

# -- error codes ----------------------------------------------------------------------

#: Admission control rejected the request: queues are at their bound.
OVERLOADED = "OVERLOADED"
#: The tenant's token bucket is empty; retry after ``retry_after_s``.
QUOTA_EXCEEDED = "QUOTA_EXCEEDED"
#: The request was cancelled (client ``cancel`` op or disconnect).
CANCELLED = "CANCELLED"
#: The request's deadline passed before it completed (or before it ran).
DEADLINE_EXCEEDED = "DEADLINE_EXCEEDED"
#: The request was malformed (unknown op, missing fields, bad params).
BAD_REQUEST = "BAD_REQUEST"
#: ``execute`` named a program the server has not registered.
UNKNOWN_PROGRAM = "UNKNOWN_PROGRAM"
#: The execution failed inside the engine stack.
INTERNAL = "INTERNAL"
#: The server is stopping and no longer admits work.
SHUTTING_DOWN = "SHUTTING_DOWN"

#: Codes a well-behaved client may retry (with backoff / after the hint).
RETRYABLE_CODES = frozenset({OVERLOADED, QUOTA_EXCEEDED, SHUTTING_DOWN})


class ProtocolError(PolystoreError):
    """A frame or message violated the wire protocol."""


# -- framing --------------------------------------------------------------------------


def encode_frame(message: dict[str, Any]) -> bytes:
    """One message as length-prefixed JSON bytes."""
    body = json.dumps(message, separators=(",", ":"), default=str).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> dict[str, Any]:
    """Parse one frame body; the message must be a JSON object."""
    try:
        message = json.loads(body)
    except ValueError as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame body must be a JSON object")
    return message


def frame_length(prefix: bytes) -> int:
    """Decode and bound-check a 4-byte length prefix."""
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared frame length {length} exceeds MAX_FRAME_BYTES")
    return length


async def read_frame(reader) -> dict[str, Any] | None:
    """Read one frame from an asyncio stream; ``None`` on a clean EOF."""
    import asyncio

    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from None
    body = await reader.readexactly(frame_length(prefix))
    return decode_body(body)


def read_frame_sync(sock: socket.socket) -> dict[str, Any] | None:
    """Blocking frame read from a plain socket; ``None`` on a clean EOF."""
    prefix = _recv_exact(sock, _LENGTH.size)
    if prefix is None:
        return None
    body = _recv_exact(sock, frame_length(prefix))
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_body(body)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Exactly ``n`` bytes, ``None`` on EOF before the first byte."""
    if n == 0:
        return b""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- responses ------------------------------------------------------------------------


def ok_response(request_id: Any, **fields: Any) -> dict[str, Any]:
    """A success response echoing the request id."""
    return {"id": request_id, "ok": True, **fields}


def error_response(request_id: Any, code: str, message: str, *,
                   retry_after_s: float | None = None) -> dict[str, Any]:
    """A failure response; ``retryable`` is derived from the code."""
    error: dict[str, Any] = {
        "code": code,
        "message": message,
        "retryable": code in RETRYABLE_CODES,
    }
    if retry_after_s is not None:
        error["retry_after_s"] = round(retry_after_s, 6)
    return {"id": request_id, "ok": False, "error": error}


# -- value serialization --------------------------------------------------------------


def serialize_value(value: Any) -> Any:
    """One execution output as a JSON-friendly value.

    Tables become ``{"kind": "table", "columns": [...], "rows": [[...]]}``
    (row-major, column order preserved); everything else is passed through
    and left to ``json.dumps(default=str)`` — model summaries and plain
    dicts survive, exotic handles degrade to their string form.
    """
    if isinstance(value, Table):
        columns = list(value.schema.names)
        return {
            "kind": "table",
            "columns": columns,
            "rows": [[row.get(name) for name in columns]
                     for row in value.to_dicts()],
        }
    return value


def serialize_outputs(outputs: dict[str, Any]) -> dict[str, Any]:
    """Every named output serialized via :func:`serialize_value`."""
    return {name: serialize_value(value) for name, value in outputs.items()}
