"""Request coalescing: identical concurrent reads share one execution.

Two clients asking for the same registered read program with the same
parameters at the same moment do not need two executions — the first
becomes the *leader* and runs; later arrivals become *followers* that
attach to the leader's in-flight group and receive a copy of its response.

The coalescing key is the canonical JSON of ``(tenant, program, mode,
params)`` (sorted keys, so parameter dict ordering does not defeat
sharing).  The tenant is part of the identity on purpose: sharing across
tenants would let one tenant's cancellations fail another's requests and
leak its traffic pattern via ``coalesced: true`` responses.  Only programs
registered as coalescable — reads — participate; writes and
non-JSON-serializable parameters opt out by returning ``None`` from
:func:`coalesce_key`.

Cancellation interacts per-waiter: a follower that cancels simply detaches
(the leader keeps running for the others).  Cancelling the *leader* ends
the whole group — the shared execution stops at its next checkpoint and
every remaining waiter receives the cancellation (and can simply retry,
becoming a fresh leader).  All state is event-loop-thread only.
"""

from __future__ import annotations

import json
from typing import Any


def coalesce_key(tenant: str, program: str, mode: str,
                 params: dict[str, Any]) -> str | None:
    """Canonical identity of one read request, or ``None`` to opt out."""
    try:
        encoded = json.dumps(params, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        return None
    return f"{tenant}\x1f{program}\x1f{mode}\x1f{encoded}"


class InflightGroup:
    """One running execution plus every request waiting on its result."""

    __slots__ = ("key", "leader_id", "waiters")

    def __init__(self, key: str, leader_id: Any) -> None:
        self.key = key
        self.leader_id = leader_id
        # request_id -> per-waiter completion callback (set by the server).
        self.waiters: dict[Any, Any] = {}

    def __len__(self) -> int:
        return len(self.waiters)


class Coalescer:
    """Registry of in-flight groups keyed by request identity."""

    def __init__(self) -> None:
        self._groups: dict[str, InflightGroup] = {}
        self.attached_total = 0

    def lookup(self, key: str) -> InflightGroup | None:
        return self._groups.get(key)

    def create(self, key: str, leader_id: Any) -> InflightGroup:
        group = InflightGroup(key, leader_id)
        self._groups[key] = group
        return group

    def attach(self, group: InflightGroup, request_id: Any,
               deliver: Any) -> None:
        """Register one follower's completion callback on the group."""
        group.waiters[request_id] = deliver
        self.attached_total += 1

    def detach(self, group: InflightGroup, request_id: Any) -> bool:
        """Drop one waiter (follower cancel); False if it was not waiting."""
        return group.waiters.pop(request_id, None) is not None

    def pop(self, key: str) -> InflightGroup | None:
        """Remove and return the group once its execution finished."""
        return self._groups.pop(key, None)

    def depth(self) -> int:
        return len(self._groups)
