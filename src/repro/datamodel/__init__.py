"""Shared data model: schemas, tables, serialization and cross-model conversion."""

from repro.datamodel.schema import Column, DataType, Schema
from repro.datamodel.serialization import (
    BinarySerializer,
    CsvSerializer,
    SerializationReport,
)
from repro.datamodel.table import Table, make_schema

__all__ = [
    "Column",
    "DataType",
    "Schema",
    "Table",
    "make_schema",
    "CsvSerializer",
    "BinarySerializer",
    "SerializationReport",
]
