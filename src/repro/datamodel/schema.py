"""Schemas and data types shared by every engine in the polystore.

The paper's engines each work with their own data model (relational rows,
key/value pairs, timeseries points, graph nodes, dense arrays, documents).
All of them, however, describe *fields* with *types*; this module provides
that common vocabulary so the compiler and the data migrator can reason
about cross-engine data movement without knowing engine internals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import SchemaError


class DataType(enum.Enum):
    """Logical column types understood by every engine and migrator."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"
    TIMESTAMP = "timestamp"
    BYTES = "bytes"

    @property
    def python_type(self) -> type:
        """The Python type used to store values of this logical type."""
        return _PYTHON_TYPES[self]

    @property
    def fixed_width(self) -> int | None:
        """Serialized width in bytes, or ``None`` for variable-width types."""
        return _FIXED_WIDTHS[self]

    def coerce(self, value: Any) -> Any:
        """Convert ``value`` to this type, raising :class:`SchemaError` on failure."""
        if value is None:
            return None
        try:
            return _COERCERS[self](value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"cannot coerce {value!r} to {self.value}") from exc

    def validate(self, value: Any) -> bool:
        """Return ``True`` when ``value`` already has this logical type."""
        if value is None:
            return True
        expected = self.python_type
        if self is DataType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is DataType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        return isinstance(value, expected)


def _coerce_timestamp(value: Any) -> float:
    if isinstance(value, datetime):
        return value.timestamp()
    return float(value)


_PYTHON_TYPES: dict[DataType, type] = {
    DataType.INT: int,
    DataType.FLOAT: float,
    DataType.STRING: str,
    DataType.BOOL: bool,
    DataType.TIMESTAMP: float,
    DataType.BYTES: bytes,
}

_FIXED_WIDTHS: dict[DataType, int | None] = {
    DataType.INT: 8,
    DataType.FLOAT: 8,
    DataType.STRING: None,
    DataType.BOOL: 1,
    DataType.TIMESTAMP: 8,
    DataType.BYTES: None,
}

_COERCERS: dict[DataType, Any] = {
    DataType.INT: int,
    DataType.FLOAT: float,
    DataType.STRING: str,
    DataType.BOOL: bool,
    DataType.TIMESTAMP: _coerce_timestamp,
    DataType.BYTES: bytes,
}


@dataclass(frozen=True)
class Column:
    """A named, typed field in a schema.

    Attributes:
        name: Column name, unique within its schema.
        dtype: Logical type of the column.
        nullable: Whether ``None`` values are allowed.
    """

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if not isinstance(self.dtype, DataType):
            raise SchemaError(f"column {self.name!r} has invalid dtype {self.dtype!r}")

    def validate(self, value: Any) -> None:
        """Raise :class:`SchemaError` when ``value`` violates this column."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return
        if not self.dtype.validate(value):
            raise SchemaError(
                f"column {self.name!r} expects {self.dtype.value}, got {type(value).__name__}"
            )

    def estimated_width(self) -> int:
        """Rough serialized width in bytes, used by cost models."""
        width = self.dtype.fixed_width
        if width is not None:
            return width
        return 24  # average payload assumed for variable-width values


class Schema:
    """An ordered collection of :class:`Column` objects.

    Schemas are immutable; operations such as :meth:`project`, :meth:`rename`
    and :meth:`concat` return new schemas.
    """

    def __init__(self, columns: Iterable[Column]) -> None:
        self._columns: tuple[Column, ...] = tuple(columns)
        names = [c.name for c in self._columns]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {dupes}")
        self._index: dict[str, int] = {c.name: i for i, c in enumerate(self._columns)}

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Sequence[tuple[str, DataType]]) -> "Schema":
        """Build a schema from ``(name, dtype)`` pairs."""
        return cls(Column(name, dtype) for name, dtype in pairs)

    @classmethod
    def infer(cls, rows: Sequence[Mapping[str, Any]]) -> "Schema":
        """Infer a schema from a sample of dictionaries.

        The first non-null value seen for each key determines its type;
        keys that are always null become nullable strings.
        """
        if not rows:
            raise SchemaError("cannot infer schema from an empty sample")
        order: list[str] = []
        seen: dict[str, DataType | None] = {}
        for row in rows:
            for key, value in row.items():
                if key not in seen:
                    seen[key] = None
                    order.append(key)
                if seen[key] is None and value is not None:
                    seen[key] = _infer_dtype(value)
        columns = [Column(name, seen[name] or DataType.STRING) for name in order]
        return cls(columns)

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, key: int | str) -> Column:
        if isinstance(key, str):
            try:
                return self._columns[self._index[key]]
            except KeyError as exc:
                raise SchemaError(f"no column named {key!r}") from exc
        return self._columns[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.dtype.value}" for c in self._columns)
        return f"Schema({cols})"

    # -- accessors --------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(c.name for c in self._columns)

    @property
    def dtypes(self) -> tuple[DataType, ...]:
        """Column types in declaration order."""
        return tuple(c.dtype for c in self._columns)

    def index_of(self, name: str) -> int:
        """Position of ``name`` within the schema."""
        try:
            return self._index[name]
        except KeyError as exc:
            raise SchemaError(f"no column named {name!r}") from exc

    def row_width(self) -> int:
        """Estimated serialized row width in bytes (used by cost models)."""
        return sum(c.estimated_width() for c in self._columns)

    # -- derivation --------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a schema containing only ``names``, in the given order."""
        return Schema(self[name] for name in names)

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        """Return a schema with columns renamed according to ``mapping``."""
        return Schema(
            Column(mapping.get(c.name, c.name), c.dtype, c.nullable) for c in self._columns
        )

    def prefix(self, prefix: str) -> "Schema":
        """Return a schema whose column names are ``prefix + name``."""
        return self.rename({c.name: f"{prefix}{c.name}" for c in self._columns})

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (used by join outputs)."""
        return Schema(tuple(self._columns) + tuple(other._columns))

    def with_column(self, column: Column) -> "Schema":
        """Return a schema with ``column`` appended."""
        return Schema(tuple(self._columns) + (column,))

    def drop(self, names: Sequence[str]) -> "Schema":
        """Return a schema without the named columns."""
        missing = [n for n in names if n not in self._index]
        if missing:
            raise SchemaError(f"cannot drop unknown columns {missing}")
        dropset = set(names)
        return Schema(c for c in self._columns if c.name not in dropset)

    def validate_row(self, row: Sequence[Any]) -> None:
        """Validate a positional row against this schema."""
        if len(row) != len(self._columns):
            raise SchemaError(
                f"row has {len(row)} values but schema has {len(self._columns)} columns"
            )
        for column, value in zip(self._columns, row):
            column.validate(value)

    def coerce_row(self, row: Sequence[Any]) -> tuple[Any, ...]:
        """Coerce each value of a positional row to its column type."""
        if len(row) != len(self._columns):
            raise SchemaError(
                f"row has {len(row)} values but schema has {len(self._columns)} columns"
            )
        return tuple(c.dtype.coerce(v) for c, v in zip(self._columns, row))


def _infer_dtype(value: Any) -> DataType:
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, bytes):
        return DataType.BYTES
    if isinstance(value, datetime):
        return DataType.TIMESTAMP
    return DataType.STRING
