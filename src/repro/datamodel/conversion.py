"""Cross-data-model conversions.

A polystore moves data between engines whose native models differ (paper
§IV-A-b: "how to transform same data across different data models").  This
module provides the lossless conversions the data migrator and the adapters
rely on:

* relational table <-> dense feature matrix (for the array/ML engines),
* relational table <-> property-graph nodes/edges,
* relational table <-> documents (for the text store),
* relational table <-> key/value pairs,
* relational table <-> timeseries points.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.datamodel.schema import Column, DataType, Schema
from repro.datamodel.table import Table
from repro.exceptions import DataModelError


# -- table <-> matrix ---------------------------------------------------------------


def table_to_matrix(table: Table, feature_columns: Sequence[str] | None = None) -> np.ndarray:
    """Convert numeric columns of ``table`` into a dense float64 matrix.

    Args:
        table: Source table.
        feature_columns: Columns to include; defaults to every INT/FLOAT/BOOL/
            TIMESTAMP column in schema order.

    Returns:
        An array of shape ``(num_rows, num_features)``.  ``None`` values become
        ``nan``.
    """
    if feature_columns is None:
        feature_columns = [
            c.name for c in table.schema
            if c.dtype in (DataType.INT, DataType.FLOAT, DataType.BOOL, DataType.TIMESTAMP)
        ]
    if not feature_columns:
        raise DataModelError("no numeric columns available for matrix conversion")
    columns = []
    for name in feature_columns:
        column = table.schema[name]
        if column.dtype is DataType.STRING or column.dtype is DataType.BYTES:
            raise DataModelError(f"column {name!r} is not numeric")
        values = [float(v) if v is not None else float("nan") for v in table.column(name)]
        columns.append(values)
    if not columns:
        return np.zeros((len(table), 0), dtype=np.float64)
    return np.array(columns, dtype=np.float64).T


def matrix_to_table(matrix: np.ndarray, column_names: Sequence[str] | None = None) -> Table:
    """Convert a 2-D array into a table of FLOAT columns."""
    array = np.asarray(matrix, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise DataModelError(f"expected a 2-D matrix, got {array.ndim}-D")
    n_cols = array.shape[1]
    if column_names is None:
        column_names = [f"f{i}" for i in range(n_cols)]
    if len(column_names) != n_cols:
        raise DataModelError(
            f"matrix has {n_cols} columns but {len(column_names)} names were given"
        )
    schema = Schema(Column(name, DataType.FLOAT) for name in column_names)
    rows = [tuple(float(x) for x in row) for row in array]
    return Table(schema, rows)


# -- table <-> documents -------------------------------------------------------------


def table_to_documents(table: Table, *, id_column: str,
                       text_columns: Sequence[str]) -> list[dict[str, Any]]:
    """Convert rows into documents ``{"doc_id", "text", "metadata"}``.

    The text store ingests these documents directly; metadata keeps the other
    columns so the conversion is reversible for the retained fields.
    """
    for name in (id_column, *text_columns):
        if name not in table.schema:
            raise DataModelError(f"column {name!r} not in table schema")
    docs = []
    names = table.schema.names
    for row in table:
        record = dict(zip(names, row))
        text = " ".join(str(record[name]) for name in text_columns if record[name] is not None)
        metadata = {k: v for k, v in record.items() if k != id_column and k not in text_columns}
        docs.append({"doc_id": record[id_column], "text": text, "metadata": metadata})
    return docs


def documents_to_table(documents: Sequence[Mapping[str, Any]]) -> Table:
    """Convert documents back into a ``(doc_id, text)`` table."""
    schema = Schema([Column("doc_id", DataType.STRING), Column("text", DataType.STRING)])
    rows = [(str(doc["doc_id"]), str(doc.get("text", ""))) for doc in documents]
    return Table(schema, rows)


# -- table <-> key/value ----------------------------------------------------------------


def table_to_kv_pairs(table: Table, *, key_column: str) -> list[tuple[str, dict[str, Any]]]:
    """Convert rows into ``(key, value_dict)`` pairs keyed by ``key_column``."""
    if key_column not in table.schema:
        raise DataModelError(f"column {key_column!r} not in table schema")
    names = table.schema.names
    pairs = []
    for row in table:
        record = dict(zip(names, row))
        key = record.pop(key_column)
        if key is None:
            raise DataModelError("key column contains a null value")
        pairs.append((str(key), record))
    return pairs


def kv_pairs_to_table(pairs: Sequence[tuple[str, Mapping[str, Any]]],
                      key_column: str = "key") -> Table:
    """Convert ``(key, value_dict)`` pairs back into a table."""
    if not pairs:
        raise DataModelError("cannot build a table from zero key/value pairs")
    rows = [{key_column: key, **dict(value)} for key, value in pairs]
    return Table.from_dicts(rows)


# -- table <-> graph ---------------------------------------------------------------------


def table_to_edges(table: Table, *, source_column: str, target_column: str,
                   label: str = "related") -> list[dict[str, Any]]:
    """Convert rows into edge dictionaries for the graph store."""
    for name in (source_column, target_column):
        if name not in table.schema:
            raise DataModelError(f"column {name!r} not in table schema")
    names = table.schema.names
    edges = []
    for row in table:
        record = dict(zip(names, row))
        properties = {
            k: v for k, v in record.items() if k not in (source_column, target_column)
        }
        edges.append({
            "source": record[source_column],
            "target": record[target_column],
            "label": label,
            "properties": properties,
        })
    return edges


def nodes_to_table(nodes: Sequence[Mapping[str, Any]]) -> Table:
    """Convert graph node property dictionaries into a table."""
    if not nodes:
        raise DataModelError("cannot build a table from zero nodes")
    return Table.from_dicts([dict(node) for node in nodes])


# -- table <-> timeseries ------------------------------------------------------------------


def table_to_points(table: Table, *, time_column: str, value_column: str,
                    series_column: str | None = None) -> list[tuple[str, float, float]]:
    """Convert rows into ``(series_key, timestamp, value)`` points."""
    for name in (time_column, value_column):
        if name not in table.schema:
            raise DataModelError(f"column {name!r} not in table schema")
    names = table.schema.names
    points = []
    for row in table:
        record = dict(zip(names, row))
        if record[time_column] is None or record[value_column] is None:
            continue
        series = str(record[series_column]) if series_column else "default"
        points.append((series, float(record[time_column]), float(record[value_column])))
    return points


def points_to_table(points: Sequence[tuple[str, float, float]]) -> Table:
    """Convert ``(series_key, timestamp, value)`` points back into a table."""
    schema = Schema([
        Column("series", DataType.STRING),
        Column("timestamp", DataType.FLOAT),
        Column("value", DataType.FLOAT),
    ])
    rows = [(str(s), float(t), float(v)) for s, t, v in points]
    return Table(schema, rows)
