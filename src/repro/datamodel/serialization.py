"""Serialization formats used by the data migrator.

The paper (§III-A-3) contrasts a naive migration path — export to CSV, move
the text file, re-parse it at the destination — with Pipegen-style binary
network pipes that skip the textual round trip, and with accelerator-offloaded
serialization.  This module implements the two software formats:

* :class:`CsvSerializer` — textual, quotes strings, parses back by column type.
* :class:`BinarySerializer` — fixed-width little-endian encoding with a
  length-prefixed variable section, close to what an optimized pipe would send.

Both serializers also report *transformation cost* estimates (number of value
conversions performed), which the migration cost model and benchmarks use to
reproduce the paper's claim that transformation, not transfer, dominates the
naive path.
"""

from __future__ import annotations

import csv
import io
import struct
from dataclasses import dataclass

from repro.datamodel.schema import DataType, Schema
from repro.datamodel.table import Table
from repro.exceptions import DataModelError

_NULL_TOKEN = "\\N"


@dataclass(frozen=True)
class SerializationReport:
    """Bookkeeping returned alongside serialized bytes.

    Attributes:
        payload_bytes: Size of the produced byte stream.
        value_conversions: Number of per-value transformations performed
            (text formatting/parsing for CSV, packing for binary).
        rows: Number of rows serialized.
    """

    payload_bytes: int
    value_conversions: int
    rows: int


class CsvSerializer:
    """Round-trip tables through CSV text, as the naive migration path does."""

    def serialize(self, table: Table) -> tuple[bytes, SerializationReport]:
        """Encode ``table`` as CSV bytes (header row included)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(table.schema.names)
        conversions = 0
        for row in table:
            out = []
            for value in row:
                if value is None:
                    out.append(_NULL_TOKEN)
                else:
                    out.append(str(value))
                conversions += 1
            writer.writerow(out)
        payload = buffer.getvalue().encode("utf-8")
        return payload, SerializationReport(len(payload), conversions, len(table))

    def deserialize(self, payload: bytes, schema: Schema) -> tuple[Table, SerializationReport]:
        """Decode CSV bytes back into a :class:`Table` using ``schema`` types."""
        text = payload.decode("utf-8")
        reader = csv.reader(io.StringIO(text))
        try:
            header = next(reader)
        except StopIteration as exc:
            raise DataModelError("empty CSV payload") from exc
        if tuple(header) != schema.names:
            raise DataModelError(
                f"CSV header {header} does not match schema columns {list(schema.names)}"
            )
        rows = []
        conversions = 0
        for record in reader:
            values = []
            for column, text_value in zip(schema, record):
                if text_value == _NULL_TOKEN:
                    values.append(None)
                else:
                    values.append(_parse_text(column.dtype, text_value))
                conversions += 1
            rows.append(tuple(values))
        table = Table(schema, rows)
        return table, SerializationReport(len(payload), conversions, len(rows))


class BinarySerializer:
    """Compact binary encoding used by the Pipegen-style migration path.

    Layout per row: a null bitmap (one byte per column), then each non-null
    value either as a fixed-width little-endian field or, for variable-width
    types, a 4-byte length prefix followed by UTF-8/raw bytes.
    """

    def serialize(self, table: Table) -> tuple[bytes, SerializationReport]:
        """Encode ``table`` as binary bytes."""
        out = bytearray()
        out += struct.pack("<I", len(table))
        conversions = 0
        dtypes = table.schema.dtypes
        for row in table:
            bitmap = bytes(1 if value is None else 0 for value in row)
            out += bitmap
            for dtype, value in zip(dtypes, row):
                if value is None:
                    continue
                out += _pack_value(dtype, value)
                conversions += 1
        payload = bytes(out)
        return payload, SerializationReport(len(payload), conversions, len(table))

    def deserialize(self, payload: bytes, schema: Schema) -> tuple[Table, SerializationReport]:
        """Decode binary bytes back into a :class:`Table`."""
        view = memoryview(payload)
        if len(view) < 4:
            raise DataModelError("binary payload too short")
        (n_rows,) = struct.unpack_from("<I", view, 0)
        offset = 4
        n_cols = len(schema)
        dtypes = schema.dtypes
        rows = []
        conversions = 0
        for _ in range(n_rows):
            if offset + n_cols > len(view):
                raise DataModelError("truncated binary payload (null bitmap)")
            bitmap = view[offset:offset + n_cols]
            offset += n_cols
            values = []
            for col, dtype in enumerate(dtypes):
                if bitmap[col]:
                    values.append(None)
                    continue
                value, offset = _unpack_value(dtype, view, offset)
                values.append(value)
                conversions += 1
            rows.append(tuple(values))
        table = Table(schema, rows)
        return table, SerializationReport(len(payload), conversions, n_rows)


def _parse_text(dtype: DataType, text: str):
    if dtype is DataType.INT:
        return int(text)
    if dtype in (DataType.FLOAT, DataType.TIMESTAMP):
        return float(text)
    if dtype is DataType.BOOL:
        return text in ("True", "true", "1")
    if dtype is DataType.BYTES:
        return text.encode("utf-8")
    return text


def _pack_value(dtype: DataType, value) -> bytes:
    if dtype is DataType.INT:
        return struct.pack("<q", int(value))
    if dtype in (DataType.FLOAT, DataType.TIMESTAMP):
        return struct.pack("<d", float(value))
    if dtype is DataType.BOOL:
        return struct.pack("<?", bool(value))
    if dtype is DataType.BYTES:
        raw = bytes(value)
        return struct.pack("<I", len(raw)) + raw
    raw = str(value).encode("utf-8")
    return struct.pack("<I", len(raw)) + raw


def _unpack_value(dtype: DataType, view: memoryview, offset: int):
    try:
        if dtype is DataType.INT:
            (value,) = struct.unpack_from("<q", view, offset)
            return value, offset + 8
        if dtype in (DataType.FLOAT, DataType.TIMESTAMP):
            (value,) = struct.unpack_from("<d", view, offset)
            return value, offset + 8
        if dtype is DataType.BOOL:
            (value,) = struct.unpack_from("<?", view, offset)
            return value, offset + 1
        (length,) = struct.unpack_from("<I", view, offset)
        offset += 4
        raw = bytes(view[offset:offset + length])
        if len(raw) != length:
            raise DataModelError("truncated binary payload (varlen field)")
        if dtype is DataType.BYTES:
            return raw, offset + length
        return raw.decode("utf-8"), offset + length
    except struct.error as exc:
        raise DataModelError("truncated binary payload") from exc
