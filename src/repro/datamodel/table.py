"""In-memory tables shared across the polystore.

:class:`Table` is the exchange format between engines, adapters and the data
migrator: a schema plus a list of positional rows.  It deliberately supports
both row-wise access (what the relational engine's volcano operators want)
and column-wise access (what the array/ML engines and the serializers want).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.datamodel.schema import Column, DataType, Schema
from repro.exceptions import DataModelError, SchemaError

Row = tuple[Any, ...]


class Table:
    """A schema-typed, in-memory collection of rows.

    Rows are stored as tuples in declaration order of the schema.  The class
    is intentionally small: engines wrap it with their own storage and index
    structures; the polystore middleware uses it as the common currency for
    results and migrations.
    """

    def __init__(self, schema: Schema, rows: Iterable[Sequence[Any]] = (), *,
                 validate: bool = False) -> None:
        self._schema = schema
        self._rows: list[Row] = [tuple(row) for row in rows]
        if validate:
            for row in self._rows:
                schema.validate_row(row)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_dicts(cls, rows: Sequence[Mapping[str, Any]],
                   schema: Schema | None = None) -> "Table":
        """Build a table from dictionaries, inferring the schema if needed."""
        if schema is None:
            schema = Schema.infer(rows)
        names = schema.names
        data = [tuple(row.get(name) for name in names) for row in rows]
        return cls(schema, data)

    @classmethod
    def from_columns(cls, columns: Mapping[str, Sequence[Any]],
                     schema: Schema | None = None) -> "Table":
        """Build a table from a mapping of column name to values."""
        if not columns:
            raise DataModelError("from_columns requires at least one column")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise DataModelError(f"columns have mismatched lengths: {sorted(lengths)}")
        if schema is None:
            sample = [{name: values[0] if values else None for name, values in columns.items()}]
            schema = Schema.infer(sample)
        names = schema.names
        missing = [n for n in names if n not in columns]
        if missing:
            raise SchemaError(f"missing columns {missing}")
        n_rows = lengths.pop() if lengths else 0
        rows = [tuple(columns[name][i] for name in names) for i in range(n_rows)]
        return cls(schema, rows)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """An empty table with the given schema."""
        return cls(schema, [])

    # -- container protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __repr__(self) -> str:
        return f"Table(schema={self._schema!r}, rows={len(self._rows)})"

    # -- accessors -------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The table's schema."""
        return self._schema

    @property
    def rows(self) -> list[Row]:
        """The underlying row list (not a copy; treat as read-only)."""
        return self._rows

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return len(self._rows)

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._schema)

    def column(self, name: str) -> list[Any]:
        """All values of a single column, in row order."""
        idx = self._schema.index_of(name)
        return [row[idx] for row in self._rows]

    def columns(self) -> dict[str, list[Any]]:
        """A columnar view: ``{name: [values...]}``."""
        return {name: self.column(name) for name in self._schema.names}

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by column name."""
        names = self._schema.names
        return [dict(zip(names, row)) for row in self._rows]

    def estimated_bytes(self) -> int:
        """Approximate in-memory/serialized size, used by cost models."""
        return self._schema.row_width() * len(self._rows)

    # -- mutation ----------------------------------------------------------------------

    def append(self, row: Sequence[Any], *, validate: bool = False) -> None:
        """Append a positional row."""
        row_t = tuple(row)
        if validate:
            self._schema.validate_row(row_t)
        self._rows.append(row_t)

    def append_dict(self, row: Mapping[str, Any], *, validate: bool = False) -> None:
        """Append a row given as a dictionary."""
        self.append(tuple(row.get(name) for name in self._schema.names), validate=validate)

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many positional rows."""
        self._rows.extend(tuple(row) for row in rows)

    # -- relational-style derivations ----------------------------------------------------

    def select(self, predicate: Callable[[dict[str, Any]], bool]) -> "Table":
        """Rows for which ``predicate(row_dict)`` is true."""
        names = self._schema.names
        kept = [row for row in self._rows if predicate(dict(zip(names, row)))]
        return Table(self._schema, kept)

    def project(self, names: Sequence[str]) -> "Table":
        """A table containing only the named columns."""
        schema = self._schema.project(names)
        indexes = [self._schema.index_of(name) for name in names]
        rows = [tuple(row[i] for i in indexes) for row in self._rows]
        return Table(schema, rows)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """A table with columns renamed; data is shared."""
        return Table(self._schema.rename(mapping), self._rows)

    def sort(self, by: Sequence[str], *, descending: bool = False) -> "Table":
        """A table sorted by the named columns.

        ``None`` values sort first (last when ``descending``).
        """
        indexes = [self._schema.index_of(name) for name in by]

        def key(row: Row) -> tuple[Any, ...]:
            parts = []
            for i in indexes:
                value = row[i]
                parts.append((value is not None, value))
            return tuple(parts)

        return Table(self._schema, sorted(self._rows, key=key, reverse=descending))

    def limit(self, n: int) -> "Table":
        """The first ``n`` rows."""
        if n < 0:
            raise DataModelError("limit must be non-negative")
        return Table(self._schema, self._rows[:n])

    def concat(self, other: "Table") -> "Table":
        """Union-all of two tables with identical schemas."""
        if other.schema != self._schema:
            raise SchemaError("cannot concat tables with different schemas")
        return Table(self._schema, self._rows + other._rows)

    def distinct(self) -> "Table":
        """A table with duplicate rows removed (order-preserving)."""
        seen: set[Row] = set()
        rows: list[Row] = []
        for row in self._rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return Table(self._schema, rows)

    def with_column(self, column: Column, values: Sequence[Any]) -> "Table":
        """A table with one extra column appended."""
        if len(values) != len(self._rows):
            raise DataModelError(
                f"column has {len(values)} values but table has {len(self._rows)} rows"
            )
        schema = self._schema.with_column(column)
        rows = [row + (value,) for row, value in zip(self._rows, values)]
        return Table(schema, rows)

    def head(self, n: int = 5) -> list[dict[str, Any]]:
        """The first ``n`` rows as dictionaries, for interactive inspection."""
        return self.limit(n).to_dicts()


def make_schema(*pairs: tuple[str, DataType]) -> Schema:
    """Shorthand for building a schema from ``(name, dtype)`` pairs."""
    return Schema.from_pairs(list(pairs))
