"""Standalone baseline implementations used by the end-to-end experiments.

The paper's introduction contrasts three ways of running a heterogeneous
analytic application; this module provides helpers that build a Polystore++
deployment for each so benchmarks can compare like with like:

* :func:`build_cpu_polystore` — engines only, no accelerators.
* :func:`build_accelerated_polystore` — engines plus a default accelerator
  fleet (FPGA, GPU, TPU, migration ASIC).
* :func:`one_size_fits_all_latency` — an analytic estimate of the
  copy-everything-into-one-store approach: every non-relational dataset is
  first migrated (CSV) into the relational engine, then the whole program
  runs there; the estimate combines measured migration costs with the cost
  model's single-engine operator costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerators.asic import MigrationASIC, TPUAccelerator
from repro.accelerators.fpga import FPGAAccelerator
from repro.accelerators.gpu import GPUAccelerator
from repro.core.system import PolystorePlusPlus, SystemConfig
from repro.datamodel.table import Table
from repro.middleware.migration import DataMigrator, SimulatedNetwork
from repro.middleware.optimizer import CostModel
from repro.stores.base import Engine


def build_cpu_polystore(engines: list[Engine], *,
                        config: SystemConfig | None = None) -> PolystorePlusPlus:
    """A polystore deployment with no accelerators (the CPU baseline)."""
    system = PolystorePlusPlus(config)
    for engine in engines:
        system.register_engine(engine)
    return system


def build_accelerated_polystore(engines: list[Engine], *,
                                config: SystemConfig | None = None,
                                include_fpga: bool = True,
                                include_gpu: bool = True,
                                include_tpu: bool = True,
                                include_migration_asic: bool = True
                                ) -> PolystorePlusPlus:
    """A Polystore++ deployment with the default simulated accelerator fleet."""
    system = PolystorePlusPlus(config)
    for engine in engines:
        system.register_engine(engine)
    if include_fpga:
        system.register_accelerator(FPGAAccelerator())
    if include_gpu:
        system.register_accelerator(GPUAccelerator())
    if include_tpu:
        system.register_accelerator(TPUAccelerator())
    if include_migration_asic:
        system.register_accelerator(MigrationASIC(), use_for_migration=True)
    return system


@dataclass
class OneSizeFitsAllEstimate:
    """Cost estimate for the copy-everything-to-one-store strawman."""

    migration_time_s: float
    migrated_bytes: int
    processing_time_s: float

    @property
    def total_time_s(self) -> float:
        """Migration plus single-engine processing time."""
        return self.migration_time_s + self.processing_time_s


def one_size_fits_all_latency(datasets: list[Table], *, processing_rows: int,
                              cost_model: CostModel | None = None,
                              network: SimulatedNetwork | None = None
                              ) -> OneSizeFitsAllEstimate:
    """Estimate the one-size-fits-all latency for a workload.

    Every dataset is CSV-migrated into the single store (measured), then the
    program's operators run there over ``processing_rows`` rows (estimated
    with the cost model's relational constants, no native-engine advantages).
    """
    model = cost_model if cost_model is not None else CostModel()
    migrator = DataMigrator(network if network is not None else SimulatedNetwork())
    migration_time = 0.0
    migrated_bytes = 0
    for table in datasets:
        _, report = migrator.migrate(table, strategy="csv")
        migration_time += report.total_s
        migrated_bytes += report.payload_bytes
    # On a single engine the cross-model operators degrade to generic scans,
    # joins and aggregations over the unioned data.
    per_row = (model.row_costs["scan"] + model.row_costs["join"]
               + model.row_costs["aggregate"] + model.row_costs["train"])
    processing = model.fixed_overhead_s + per_row * max(1, processing_rows)
    return OneSizeFitsAllEstimate(
        migration_time_s=migration_time,
        migrated_bytes=migrated_bytes,
        processing_time_s=processing,
    )
