"""The Polystore++ system facade.

:class:`PolystorePlusPlus` wires together the whole stack of the paper's
Figure 4: the catalog of engines and accelerators, the compiler (frontend +
L1 passes + accelerator placement), the middleware (optimizer cost model,
data migrator, executor) and returns execution results with full cost
reports.  It also exposes the three execution modes the benchmarks compare
(one-size-fits-all, CPU polystore, accelerated Polystore++).
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import Any

from repro.accelerators.base import Accelerator, HostCPU
from repro.accelerators.kernels import KernelRegistry
from repro.accelerators.simulator import Objective, OffloadPlanner
from repro.catalog import Catalog
from repro.compiler.frontend import Program
from repro.compiler.pipeline import CompilationResult, Compiler, CompilerOptions
from repro.eide.dataflow import DatasetSource
from repro.exceptions import ConfigurationError, ExecutionError
from repro.middleware.executor import ExecutionReport
from repro.middleware.feedback import RuntimeStats
from repro.middleware.migration import SimulatedNetwork
from repro.middleware.optimizer import CostModel
from repro.obs import (
    Observability,
    SloTracker,
    chrome_trace,
    prometheus_text,
    run_checks,
    worst_status,
)
from repro.stores.base import Engine
from repro.views.registry import ViewRegistry
from repro.views.view import MaintenancePolicy, MaterializedView

#: Execution modes supported by :meth:`PolystorePlusPlus.execute`.
EXECUTION_MODES = ("one_size_fits_all", "cpu_polystore", "polystore++")


@dataclass(frozen=True)
class ModePlan:
    """How one execution mode maps onto compiler and migration choices."""

    mode: str
    accelerated: bool
    compile_options: CompilerOptions
    migration_strategy: str


@dataclass
class ExecutionResult:
    """Outputs plus cost accounting for one program run."""

    outputs: dict[str, Any]
    report: ExecutionReport
    compilation: CompilationResult
    mode: str

    @property
    def total_time_s(self) -> float:
        """Sequential charged execution time."""
        return self.report.total_time_s

    @property
    def pipelined_time_s(self) -> float:
        """Stage-pipelined charged execution time."""
        return self.report.pipelined_time_s

    def output(self, name: str) -> Any:
        """One named output (fragment name)."""
        try:
            return self.outputs[name]
        except KeyError:
            available = ", ".join(sorted(self.outputs)) or "<none>"
            raise ExecutionError(
                f"no output named {name!r}; available outputs: {available}"
            ) from None

    def summary(self) -> dict[str, Any]:
        """Compact dictionary combining compile- and run-time accounting."""
        summary = self.report.summary()
        summary["compilation"] = self.compilation.summary()
        return summary


@dataclass
class SystemConfig:
    """Deployment configuration for a Polystore++ instance."""

    migration_strategy: str = "binary_pipe"
    accelerated_migration_strategy: str = "accelerated"
    objective: Objective = Objective.LATENCY
    host: HostCPU = field(default_factory=HostCPU)
    host_cores: int = 1
    compiler_options: CompilerOptions = field(default_factory=CompilerOptions)
    #: Compiled-plan LRU capacity of each session created from this system.
    plan_cache_size: int = 64
    #: Worker threads per session (batched submits and intra-stage dispatch).
    session_workers: int = 4
    #: Close the measurement loop: the executor records observed operator
    #: costs and the compiler, offload planner and plan-aging logic consume
    #: them.  Disabling freezes every plan at its a-priori estimates.
    adaptive_feedback: bool = True
    #: EWMA smoothing factor for runtime observations (higher = faster).
    feedback_smoothing: float = 0.5
    #: Estimate-vs-observation row ratio beyond which a cached plan is aged
    #: and re-compiled with fed-back statistics; ``None`` disables aging.
    reoptimize_drift_factor: float | None = 4.0
    #: Observed cardinality below which feedback never steers decisions
    #: (cardinality overrides, placement host times, plan aging).
    feedback_min_rows: int = 512
    #: Data directory for durable storage; ``None`` keeps the deployment
    #: fully in-memory (see :mod:`repro.durability`).
    data_dir: str | None = None
    #: WAL sync policy: ``"always"`` (fsync per record), ``"interval"``
    #: (fsync at most once per ``durability_sync_interval_s``) or ``"off"``.
    durability_sync: str = "interval"
    #: Maximum fsync interval for the ``"interval"`` sync policy.
    durability_sync_interval_s: float = 0.05
    #: WAL records between automatic checkpoints (snapshot + rotation).
    durability_snapshot_every: int = 512
    #: Observability master switch: metrics registry, trace spans and the
    #: slow-query log (see :mod:`repro.obs`).  Off by default — every
    #: instrumented seam then costs a single attribute check.
    obs_enabled: bool = False
    #: Fraction of session requests that open trace spans; sampled-out
    #: requests still count in every metric.  Keep small in production so
    #: tracing stays off the hot path; set to 1.0 to trace every request.
    obs_trace_sample_rate: float = 0.05
    #: Requests slower than this (measured wall ms) are captured in the
    #: ring-buffer slow-query log with their plan fingerprint and
    #: per-stage breakdown.
    obs_slow_query_ms: float = 250.0
    #: Finished spans retained for export (ring buffer).
    obs_span_buffer: int = 8192
    #: Start the background sampling profiler with the deployment.  Off by
    #: default — with it off the profiler thread never exists and the
    #: prepared hot path is byte-identical to PR 7's.
    obs_profile_enabled: bool = False
    #: Profiler sweep rate (stack samples per second across all threads).
    obs_profile_hz: float = 67.0
    #: Structured-log ring buffer capacity (records retained).
    obs_log_capacity: int = 2048
    #: Minimum structured-log level retained ("debug", "info", "warning",
    #: "error").
    obs_log_level: str = "info"
    #: Serving tier (:meth:`PolystorePlusPlus.serve`): worker sessions in a
    #: server's bounded pool — also its admission-control slot count.
    serve_pool_size: int = 4
    #: Total admission-queue bound across tenants; beyond it requests are
    #: rejected with a retryable ``OVERLOADED`` error.
    serve_max_queue: int = 64
    #: Admission-queue bound for any single tenant.
    serve_queue_per_tenant: int = 32
    #: Deadline applied to served requests that do not send their own;
    #: ``None`` leaves them unbounded.
    serve_default_deadline_s: float | None = None


class PolystorePlusPlus:
    """The accelerated polystore system."""

    def __init__(self, config: SystemConfig | None = None, *,
                 data_dir: str | None = None) -> None:
        self.config = config if config is not None else SystemConfig()
        if data_dir is not None:
            self.config.data_dir = data_dir
        self.catalog = Catalog()
        self.cost_model = CostModel()
        #: The observability hub (metrics, traces, slow-query log); inert
        #: unless ``config.obs_enabled`` is set.
        self.obs = (Observability(
            sample_rate=self.config.obs_trace_sample_rate,
            slow_query_ms=self.config.obs_slow_query_ms,
            span_buffer=self.config.obs_span_buffer,
            profile_hz=self.config.obs_profile_hz,
            log_capacity=self.config.obs_log_capacity,
            log_level=self.config.obs_log_level,
        ) if self.config.obs_enabled else Observability.disabled())
        if self.config.obs_enabled and self.config.obs_profile_enabled:
            self.obs.profiler.start()
        #: Observed per-operator runtime statistics (populated by executors).
        self.runtime_stats = RuntimeStats(
            smoothing=self.config.feedback_smoothing,
            min_actionable_rows=self.config.feedback_min_rows,
        )
        self._network = SimulatedNetwork()
        self._serializer_accelerator: Accelerator | None = None
        #: Whether the serializer was pinned by an explicit
        #: ``use_for_migration=True`` (explicit pins are never displaced by
        #: implicit serialize-capable registrations).
        self._serializer_explicit = False
        #: Bumped whenever the deployment changes; part of every plan-cache
        #: key, so stale compiled plans are unreachable.
        self._plan_generation = 0
        self._sessions: "weakref.WeakSet" = weakref.WeakSet()
        self._servers: "weakref.WeakSet" = weakref.WeakSet()
        self._default_session = None
        self._default_session_lock = threading.Lock()
        #: Materialized views registered on this deployment (see repro.views).
        self.views = ViewRegistry(self)
        #: Durability manager when a data directory is configured.
        self._durability = None
        if self.config.data_dir is not None:
            self.open(self.config.data_dir)

    # -- durability -----------------------------------------------------------------------

    @property
    def durability(self):
        """The active :class:`~repro.durability.DurabilityManager`, if any."""
        return self._durability

    def open(self, path: str | None = None) -> "PolystorePlusPlus":
        """Open (or create) a durable data directory at ``path``.

        Every supported engine registered now or later is restored from its
        latest valid snapshot plus the WAL tail, then persisted from there
        on; persisted view definitions re-register once their source
        engines are back.  Returns ``self`` for chaining.
        """
        from repro.durability import DurabilityManager

        if self._durability is not None:
            raise ConfigurationError(
                f"system already open at {self._durability.root}"
            )
        target = path if path is not None else self.config.data_dir
        if target is None:
            raise ConfigurationError("open() needs a path or config.data_dir")
        self.config.data_dir = target
        self._durability = DurabilityManager(
            self, target,
            sync=self.config.durability_sync,
            sync_interval_s=self.config.durability_sync_interval_s,
            snapshot_every=self.config.durability_snapshot_every,
        )
        for engine in self.catalog.engines():
            self._durability.attach(engine)
        self._invalidate_plans()
        return self

    def close(self) -> None:
        """Checkpoint and detach durable storage (a clean shutdown).

        The system keeps working in memory afterwards; :meth:`open` the
        same directory (usually from a fresh process) to recover.
        """
        if self._durability is None:
            return
        self._durability.close()
        self._durability = None

    # -- deployment -----------------------------------------------------------------------

    def register_engine(self, engine: Engine) -> Engine:
        """Attach a data-processing engine (invalidates cached plans)."""
        self.catalog.register_engine(engine)
        if self._durability is not None:
            self._durability.attach(engine)
        self._invalidate_plans()
        return engine

    def register_sharded_engine(self, name: str, shard_factory,
                                num_shards: int | None = None, *,
                                partitioner=None):
        """Build and attach a :class:`~repro.cluster.ShardedEngine`.

        ``shard_factory`` is either an :class:`Engine` subclass (shards are
        named ``{name}-s{i}``) or a callable ``index -> Engine``.  The
        executor scatter-gathers partitionable operators across the shards;
        see :mod:`repro.cluster`.
        """
        from repro.cluster import ShardedEngine

        engine = ShardedEngine(name, shard_factory, num_shards,
                               partitioner=partitioner)
        self.register_engine(engine)
        return engine

    def rebalance_sharded_engine(self, name: str, num_shards: int | None = None, *,
                                 partitioner=None, strategy: str | None = None):
        """Online-repartition a registered sharded engine (e.g. 4 -> 8 shards).

        Data moves through this deployment's migrator (charging real
        serialization plus simulated transfer on :attr:`network`); queries
        keep answering against the old shard map until cutover.  Pinned scan
        snapshots revalidate automatically because the engine's
        ``data_version`` bumps at cutover.  Returns the
        :class:`~repro.cluster.RebalanceReport`.

        Supported for relational, key/value and timeseries shards; sharded
        *document* (text) engines scatter-gather queries but cannot be
        rebalanced yet (see DESIGN.md) — attempting it raises
        :class:`~repro.exceptions.ConfigurationError`.
        """
        from repro.cluster import ShardedEngine, ShardRebalancer
        from repro.middleware.migration import DataMigrator

        engine = self.engine(name)
        if not isinstance(engine, ShardedEngine):
            raise ConfigurationError(
                f"engine {name!r} is not a ShardedEngine; cannot rebalance"
            )
        migrator = DataMigrator(
            self._network,
            serializer_accelerator=self._serializer_accelerator,
            default_strategy=(strategy or self.config.migration_strategy),
        )
        rebalancer = ShardRebalancer(engine, migrator=migrator)
        report = rebalancer.rebalance(num_shards, partitioner=partitioner)
        self.obs.logger("cluster").info(
            "rebalance_cutover", engine=name,
            shards_before=report.old_shards, shards_after=report.new_shards,
            moved_rows=report.moved_rows, duration_s=report.duration_s)
        return report

    def register_accelerator(self, accelerator: Accelerator, *,
                             use_for_migration: bool = False) -> Accelerator:
        """Attach a hardware accelerator (optionally used for migrations).

        ``use_for_migration=True`` pins the accelerator as the migration
        serializer; the *last* explicit pin wins.  Without an explicit pin,
        the first serialize-capable accelerator is used.
        """
        if use_for_migration and not accelerator.supports("serialize"):
            raise ConfigurationError(
                f"accelerator {accelerator.profile.name!r} cannot serve as the "
                f"migration serializer: it has no 'serialize' kernel"
            )
        self.catalog.register_accelerator(accelerator)
        if use_for_migration:
            self._serializer_accelerator = accelerator
            self._serializer_explicit = True
        elif (self._serializer_accelerator is None
              and accelerator.supports("serialize")):
            self._serializer_accelerator = accelerator
        self._invalidate_plans()
        return accelerator

    def engine(self, name: str) -> Engine:
        """A registered engine by name."""
        return self.catalog.engine(name)

    def dataset(self, engine: str) -> DatasetSource:
        """Scans over a registered engine, as dataflow :class:`Dataset` handles.

        The entry point of the composable dataflow API::

            orders = system.dataset("ordersdb").table("orders")
            seniors = orders.filter(col("age") > 60).project("pid", "age")

        The returned trees are lazy; wrap them in a
        :class:`~repro.eide.dataflow.DataflowProgram` and hand that to
        :meth:`execute` or :meth:`~repro.client.Session.prepare`.
        """
        if not self.catalog.has_engine(engine):
            raise ConfigurationError(f"no engine named {engine!r}")
        return DatasetSource(engine)

    @property
    def network(self) -> SimulatedNetwork:
        """The simulated interconnect migrations travel over."""
        return self._network

    @property
    def serializer_accelerator(self) -> Accelerator | None:
        """The accelerator accelerated migrations serialize through."""
        return self._serializer_accelerator

    @property
    def plan_generation(self) -> int:
        """Deployment generation; changes invalidate every cached plan."""
        return self._plan_generation

    @property
    def feedback_stats(self) -> RuntimeStats | None:
        """The runtime statistics store, or ``None`` when feedback is off."""
        return self.runtime_stats if self.config.adaptive_feedback else None

    def _invalidate_plans(self) -> None:
        self._plan_generation += 1
        for session in list(self._sessions):
            session.invalidate_plans()

    def describe(self) -> dict[str, Any]:
        """The deployment description (engines, accelerators, config)."""
        description = self.catalog.describe()
        serializer = self._serializer_accelerator
        description["config"] = {
            "migration_strategy": self.config.migration_strategy,
            "objective": self.config.objective.value,
            "host_cores": self.config.host_cores,
            "migration_serializer": serializer.profile.name if serializer else None,
            "migration_serializer_explicit": self._serializer_explicit,
            "plan_generation": self._plan_generation,
            "adaptive_feedback": self.config.adaptive_feedback,
            "reoptimize_drift_factor": self.config.reoptimize_drift_factor,
        }
        description["feedback"] = self.runtime_stats.stats()
        description["views"] = self.views.describe()
        description["durability"] = (self._durability.describe()
                                     if self._durability is not None else None)
        # Changelog retention per engine: how deep the delta log sits right
        # now (what incremental views and replicas would have to catch up).
        description["changelog"] = {
            engine.name: engine.changelog.retention_stats()
            for engine in self.catalog.engines()
        }
        description["observability"] = self.obs.describe()
        if self.obs.enabled:
            self.refresh_gauges()
            description["metrics"] = self.obs.registry.snapshot()
        return description

    # -- observability exports -------------------------------------------------------------

    def refresh_gauges(self) -> None:
        """Update collection-time gauges from live state (pre-export hook).

        Counters and histograms accumulate at the instrumented seams;
        gauges describing *current* state (changelog depth, materialized
        view sizes) are sampled here so a scrape always sees fresh values
        without taxing the write path.
        """
        if not self.obs.enabled:
            return
        for engine in self.catalog.engines():
            stats = engine.changelog.retention_stats()
            self.obs.changelog_retained_batches.set(
                stats["retained_batches"], engine=engine.name)
            self.obs.changelog_retained_rows.set(
                stats["retained_rows"], engine=engine.name)
        for view in self.views.describe():
            self.obs.view_rows.set(view["rows"], view=view["name"])
        for server in list(self._servers):
            server.refresh_gauges()
        self.obs.sample_slos()

    def export_prometheus(self) -> str:
        """The metrics registry in Prometheus text exposition format."""
        self.refresh_gauges()
        return prometheus_text(self.obs.registry)

    def export_chrome_trace(self) -> dict[str, Any]:
        """Buffered trace spans as a Chrome ``trace_event`` document.

        Write it to a ``.json`` file and open it in ``about:tracing`` or
        https://ui.perfetto.dev to see requests, stages, operators,
        per-shard subtasks and WAL fsyncs on a timeline.
        """
        return chrome_trace(self.obs.tracer.spans())

    def export_profile(self, *, fmt: str = "collapsed",
                       trace_id: int | None = None) -> Any:
        """The sampling profiler's aggregate, ready for flamegraph tooling.

        ``fmt="collapsed"`` returns flamegraph.pl/inferno collapsed-stack
        text; ``fmt="speedscope"`` returns a speedscope.app JSON document.
        Pass ``trace_id`` to narrow to one sampled request's stacks.
        Requires ``obs_profile_enabled`` (or a manual
        ``system.obs.profiler.start()``) to have produced samples.
        """
        profile = self.obs.profiler.profile(trace_id)
        if fmt == "collapsed":
            return profile.collapsed()
        if fmt == "speedscope":
            return profile.speedscope()
        raise ConfigurationError(
            f"unknown profile format {fmt!r}; choose 'collapsed' or 'speedscope'"
        )

    def export_logs(self, *, level: str | None = None,
                    component: str | None = None) -> list[dict[str, Any]]:
        """The structured event-log buffer, oldest first (see repro.obs.log)."""
        return self.obs.events.records(level=level, component=component)

    def health(self) -> dict[str, Any]:
        """Component health checks plus SLO burn rates, rolled up.

        Returns ``{"status": "ok"|"warn"|"fail", "checks": [...],
        "slos": [...]}`` — the payload the serve protocol's ``health`` op
        hands to load balancers.  A sustained error-budget burn (burn rate
        above 1.0 on every trailing window of an objective) degrades an
        otherwise-ok deployment to ``warn``.
        """
        with self.obs.tracer.request("health:system"):
            checks = run_checks(self)
            slos = self.obs.sample_slos()
        status = worst_status([check["status"] for check in checks])
        burning = SloTracker.burning(slos)
        if burning and status == "ok":
            status = "warn"
        self.obs.set_health_gauges(checks)
        return {"status": status, "checks": checks, "slos": slos,
                "burning_slos": burning}

    # -- compilation -----------------------------------------------------------------------

    def compiler(self, *, accelerated: bool = True,
                 options: CompilerOptions | None = None) -> Compiler:
        """Build a compiler bound to this deployment."""
        planner = self.offload_planner() if accelerated else None
        return Compiler(self.catalog, planner=planner,
                        options=options or self.config.compiler_options,
                        stats=self.feedback_stats)

    def offload_planner(self) -> OffloadPlanner:
        """An offload planner over the registered accelerator fleet."""
        registry = KernelRegistry(self.catalog.accelerators())
        return OffloadPlanner(registry, self.config.host,
                              objective=self.config.objective,
                              host_cores=self.config.host_cores)

    def compile(self, program: Program, *,
                accelerated: bool = True,
                options: CompilerOptions | None = None) -> CompilationResult:
        """Compile a heterogeneous program against this deployment.

        Subtrees structurally matching a registered materialized view are
        first rewritten into ``view_read`` operators (unless the options
        disable ``use_views``), so the compiled plan reads maintained state
        instead of recomputing the view's pipeline.
        """
        opts = options if options is not None else self.config.compiler_options
        if opts.use_views and self.views.rewritable:
            program = self.views.rewrite(program)
        return self.compiler(accelerated=accelerated, options=options).compile(program)

    # -- execution --------------------------------------------------------------------------

    def plan_mode(self, mode: str,
                  options: CompilerOptions | None = None) -> ModePlan:
        """Resolve an execution mode to compiler and migration choices.

        * ``"polystore++"`` — federated execution with accelerator placement
          and accelerated migration (the paper's proposal).
        * ``"cpu_polystore"`` — federated execution on CPU engines only
          (BigDAWG-like baseline).
        * ``"one_size_fits_all"`` — for comparison purposes the program still
          runs federated, but with all optimizations off and the slowest
          (CSV) migration path, standing in for the copy-everything-to-one-
          store strawman of the paper's introduction.
        """
        if mode not in EXECUTION_MODES:
            raise ConfigurationError(
                f"unknown execution mode {mode!r}; choose one of {EXECUTION_MODES}"
            )
        if mode == "one_size_fits_all":
            return ModePlan(mode, False, CompilerOptions.none(), "csv")
        compile_options = options or self.config.compiler_options
        if mode == "cpu_polystore":
            return ModePlan(mode, False, compile_options,
                            self.config.migration_strategy)
        migration_strategy = (self.config.accelerated_migration_strategy
                              if self._serializer_accelerator is not None
                              else self.config.migration_strategy)
        return ModePlan(mode, True, compile_options, migration_strategy)

    def session(self, *, plan_cache_size: int | None = None,
                max_workers: int | None = None, name: str = "session"):
        """A new :class:`~repro.client.Session` bound to this deployment.

        Sessions expose ``prepare``/``submit``/``run_batch`` for plan-cached
        and concurrent execution; see :mod:`repro.client`.
        """
        from repro.client.session import Session

        session = Session(
            self,
            plan_cache_size=(self.config.plan_cache_size
                             if plan_cache_size is None else plan_cache_size),
            max_workers=(self.config.session_workers
                         if max_workers is None else max_workers),
            name=name,
        )
        self._sessions.add(session)
        return session

    def serve(self, *, host: str = "127.0.0.1", port: int = 0,
              pool_size: int | None = None, max_queue: int | None = None,
              max_queue_per_tenant: int | None = None,
              default_deadline_s: float | None = None,
              default_tenant: str = "default", start: bool = True):
        """Start a serving front-end over this deployment.

        Builds a :class:`~repro.serve.PolystoreServer`: an asyncio server
        multiplexing many clients onto a bounded pool of sessions, with
        per-tenant quotas, admission control (explicit ``OVERLOADED``
        rejections, never unbounded queues), request coalescing and
        cooperative cancellation.  Register programs with
        :meth:`~repro.serve.PolystoreServer.register`, connect in-process
        via :meth:`~repro.serve.PolystoreServer.connect` or over TCP at
        ``server.address``.  Pass ``start=False`` to configure tenants and
        programs before :meth:`~repro.serve.PolystoreServer.start`.
        """
        from repro.serve import PolystoreServer, ServeConfig

        config = ServeConfig(
            host=host, port=port,
            pool_size=(self.config.serve_pool_size
                       if pool_size is None else pool_size),
            max_queue=(self.config.serve_max_queue
                       if max_queue is None else max_queue),
            max_queue_per_tenant=(self.config.serve_queue_per_tenant
                                  if max_queue_per_tenant is None
                                  else max_queue_per_tenant),
            default_deadline_s=(self.config.serve_default_deadline_s
                                if default_deadline_s is None
                                else default_deadline_s),
            default_tenant=default_tenant,
        )
        server = PolystoreServer(self, config)
        self._servers.add(server)
        if start:
            server.start()
        return server

    def default_session(self):
        """The session backing :meth:`execute` and :meth:`compare_modes`."""
        with self._default_session_lock:  # concurrent first executes race here
            if self._default_session is None:
                self._default_session = self.session(name="default")
            return self._default_session

    def execute(self, program: Program, *, mode: str = "polystore++",
                options: CompilerOptions | None = None) -> ExecutionResult:
        """Compile (or reuse a cached plan) and run a program once.

        A thin wrapper over the default session's one-shot path: plans are
        cached across calls, but every engine is re-read on every call.  See
        :meth:`plan_mode` for what each mode means.
        """
        return self.default_session().execute(program, mode=mode, options=options)

    def compare_modes(self, program: Program,
                      modes: tuple[str, ...] = EXECUTION_MODES
                      ) -> dict[str, ExecutionResult]:
        """Run the same program under several modes (experiments E7/E8/E9)."""
        return {mode: self.execute(program, mode=mode) for mode in modes}

    # -- materialized views ----------------------------------------------------------------

    def create_view(self, name: str, dataset, *,
                    policy: "MaintenancePolicy | str" = "deferred",
                    staleness_s: float = 0.0,
                    auto_delta_rows: int = 4096) -> MaterializedView:
        """Register a materialized view over a :class:`Dataset` expression.

        The initial materialization runs through the normal compile/execute
        pipeline; afterwards the view refreshes incrementally from the source
        engines' changelogs (where the tree is delta-composable) under the
        chosen maintenance policy — ``"eager"`` (on write), ``"deferred"``
        (staleness-bounded refresh on read), ``"manual"``, or ``"auto"``
        (feedback-steered between eager and deferred).  Prepared programs
        whose subtree matches the view's expression transparently read the
        maintained state.
        """
        return self.views.create(name, dataset, policy=policy,
                                 staleness_s=staleness_s,
                                 auto_delta_rows=auto_delta_rows)

    def drop_view(self, name: str) -> None:
        """Unregister a materialized view."""
        self.views.drop(name)

    def view(self, name: str) -> MaterializedView:
        """A registered materialized view by name."""
        return self.views.get(name)

    # -- calibration ---------------------------------------------------------------------------

    def recalibrate_cost_model(self) -> int:
        """Feed every engine's recorded metrics back into the cost model."""
        metrics = []
        for engine in self.catalog.engines():
            metrics.extend(engine.metrics.records)
        return self.cost_model.calibrate(metrics)
