"""The Polystore++ system facade.

:class:`PolystorePlusPlus` wires together the whole stack of the paper's
Figure 4: the catalog of engines and accelerators, the compiler (frontend +
L1 passes + accelerator placement), the middleware (optimizer cost model,
data migrator, executor) and returns execution results with full cost
reports.  It also exposes the three execution modes the benchmarks compare
(one-size-fits-all, CPU polystore, accelerated Polystore++).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.accelerators.base import Accelerator, HostCPU
from repro.accelerators.kernels import KernelRegistry
from repro.accelerators.simulator import Objective, OffloadPlanner
from repro.catalog import Catalog
from repro.compiler.pipeline import CompilationResult, Compiler, CompilerOptions
from repro.eide.program import HeterogeneousProgram
from repro.exceptions import ConfigurationError
from repro.middleware.executor import ExecutionReport, Executor
from repro.middleware.migration import DataMigrator, SimulatedNetwork
from repro.middleware.optimizer import CostModel
from repro.stores.base import Engine

#: Execution modes supported by :meth:`PolystorePlusPlus.execute`.
EXECUTION_MODES = ("one_size_fits_all", "cpu_polystore", "polystore++")


@dataclass
class ExecutionResult:
    """Outputs plus cost accounting for one program run."""

    outputs: dict[str, Any]
    report: ExecutionReport
    compilation: CompilationResult
    mode: str

    @property
    def total_time_s(self) -> float:
        """Sequential charged execution time."""
        return self.report.total_time_s

    @property
    def pipelined_time_s(self) -> float:
        """Stage-pipelined charged execution time."""
        return self.report.pipelined_time_s

    def output(self, name: str) -> Any:
        """One named output (fragment name)."""
        return self.outputs[name]

    def summary(self) -> dict[str, Any]:
        """Compact dictionary combining compile- and run-time accounting."""
        summary = self.report.summary()
        summary["compilation"] = self.compilation.summary()
        return summary


@dataclass
class SystemConfig:
    """Deployment configuration for a Polystore++ instance."""

    migration_strategy: str = "binary_pipe"
    accelerated_migration_strategy: str = "accelerated"
    objective: Objective = Objective.LATENCY
    host: HostCPU = field(default_factory=HostCPU)
    host_cores: int = 1
    compiler_options: CompilerOptions = field(default_factory=CompilerOptions)


class PolystorePlusPlus:
    """The accelerated polystore system."""

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config if config is not None else SystemConfig()
        self.catalog = Catalog()
        self.cost_model = CostModel()
        self._network = SimulatedNetwork()
        self._serializer_accelerator: Accelerator | None = None

    # -- deployment -----------------------------------------------------------------------

    def register_engine(self, engine: Engine) -> Engine:
        """Attach a data-processing engine."""
        self.catalog.register_engine(engine)
        return engine

    def register_accelerator(self, accelerator: Accelerator, *,
                             use_for_migration: bool = False) -> Accelerator:
        """Attach a hardware accelerator (optionally used for migrations)."""
        self.catalog.register_accelerator(accelerator)
        if use_for_migration or (self._serializer_accelerator is None
                                 and accelerator.supports("serialize")):
            self._serializer_accelerator = accelerator
        return accelerator

    def engine(self, name: str) -> Engine:
        """A registered engine by name."""
        return self.catalog.engine(name)

    def describe(self) -> dict[str, Any]:
        """The deployment description (engines, accelerators, config)."""
        description = self.catalog.describe()
        description["config"] = {
            "migration_strategy": self.config.migration_strategy,
            "objective": self.config.objective.value,
            "host_cores": self.config.host_cores,
        }
        return description

    # -- compilation -----------------------------------------------------------------------

    def compiler(self, *, accelerated: bool = True,
                 options: CompilerOptions | None = None) -> Compiler:
        """Build a compiler bound to this deployment."""
        planner = self.offload_planner() if accelerated else None
        return Compiler(self.catalog, planner=planner,
                        options=options or self.config.compiler_options)

    def offload_planner(self) -> OffloadPlanner:
        """An offload planner over the registered accelerator fleet."""
        registry = KernelRegistry(self.catalog.accelerators())
        return OffloadPlanner(registry, self.config.host,
                              objective=self.config.objective,
                              host_cores=self.config.host_cores)

    def compile(self, program: HeterogeneousProgram, *,
                accelerated: bool = True,
                options: CompilerOptions | None = None) -> CompilationResult:
        """Compile a heterogeneous program against this deployment."""
        return self.compiler(accelerated=accelerated, options=options).compile(program)

    # -- execution --------------------------------------------------------------------------

    def execute(self, program: HeterogeneousProgram, *, mode: str = "polystore++",
                options: CompilerOptions | None = None) -> ExecutionResult:
        """Compile and run a program under one of the execution modes.

        * ``"polystore++"`` — federated execution with accelerator placement
          and accelerated migration (the paper's proposal).
        * ``"cpu_polystore"`` — federated execution on CPU engines only
          (BigDAWG-like baseline).
        * ``"one_size_fits_all"`` — for comparison purposes the program still
          runs federated, but with all optimizations off and the slowest
          (CSV) migration path, standing in for the copy-everything-to-one-
          store strawman of the paper's introduction.
        """
        if mode not in EXECUTION_MODES:
            raise ConfigurationError(
                f"unknown execution mode {mode!r}; choose one of {EXECUTION_MODES}"
            )
        accelerated = mode == "polystore++"
        if mode == "one_size_fits_all":
            compile_options = CompilerOptions.none()
            migration_strategy = "csv"
        elif mode == "cpu_polystore":
            compile_options = options or self.config.compiler_options
            migration_strategy = self.config.migration_strategy
        else:
            compile_options = options or self.config.compiler_options
            migration_strategy = (self.config.accelerated_migration_strategy
                                  if self._serializer_accelerator is not None
                                  else self.config.migration_strategy)
        compilation = self.compile(program, accelerated=accelerated,
                                   options=compile_options)
        migrator = DataMigrator(
            self._network,
            serializer_accelerator=self._serializer_accelerator if accelerated else None,
            default_strategy=migration_strategy,
        )
        executor = Executor(self.catalog, migrator,
                            migration_strategy=migration_strategy)
        outputs, report = executor.execute(compilation.graph, mode=mode)
        report.migration_time_s = migrator.total_time_s()
        report.migration_bytes = migrator.total_migrated_bytes()
        return ExecutionResult(outputs=outputs, report=report,
                               compilation=compilation, mode=mode)

    def compare_modes(self, program: HeterogeneousProgram,
                      modes: tuple[str, ...] = EXECUTION_MODES
                      ) -> dict[str, ExecutionResult]:
        """Run the same program under several modes (experiments E7/E8/E9)."""
        return {mode: self.execute(program, mode=mode) for mode in modes}

    # -- calibration ---------------------------------------------------------------------------

    def recalibrate_cost_model(self) -> int:
        """Feed every engine's recorded metrics back into the cost model."""
        metrics = []
        for engine in self.catalog.engines():
            metrics.extend(engine.metrics.records)
        return self.cost_model.calibrate(metrics)
