"""Core Polystore++ system: facade, execution modes and baselines."""

from repro.core.baselines import (
    OneSizeFitsAllEstimate,
    build_accelerated_polystore,
    build_cpu_polystore,
    one_size_fits_all_latency,
)
from repro.core.system import (
    EXECUTION_MODES,
    ExecutionResult,
    ModePlan,
    PolystorePlusPlus,
    SystemConfig,
)

__all__ = [
    "PolystorePlusPlus",
    "SystemConfig",
    "ExecutionResult",
    "ModePlan",
    "EXECUTION_MODES",
    "build_cpu_polystore",
    "build_accelerated_polystore",
    "one_size_fits_all_latency",
    "OneSizeFitsAllEstimate",
]
