"""Simulated FPGA accelerator.

The paper highlights FPGAs for pipeline-parallel operators: bitonic sort
(§III-A-1), streaming scan/filter/project close to the data (§III-A-2), and
serialization for data migration (§III-A-3).  The simulator charges time for
those kernels from a pipeline model — a compare-exchange network processes
one stage per clock once the pipeline is full — on top of the generic
transfer/overhead accounting in :class:`~repro.accelerators.base.Accelerator`.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.accelerators.base import Accelerator, DeploymentMode, DeviceProfile, KernelSpec
from repro.stores.relational.operators import bitonic_sort

#: Default profile loosely modelled on a mid-range PCIe FPGA card.
DEFAULT_FPGA_PROFILE = DeviceProfile(
    name="fpga0",
    peak_gflops=400.0,
    memory_bandwidth_gbs=34.0,
    transfer_bandwidth_gbs=12.0,
    dispatch_overhead_s=150e-6,
    power_w=25.0,
    idle_power_w=10.0,
    reconfiguration_s=2.0,          # partial reconfiguration, not full synthesis
    area_luts=1_200_000,
)

_ROW_BYTES = 64        # nominal serialized row width used for cost accounting
_VALUE_BYTES = 8


class FPGAAccelerator(Accelerator):
    """An FPGA card with sort, filter, project, window and serialize kernels."""

    def __init__(self, profile: DeviceProfile = DEFAULT_FPGA_PROFILE,
                 mode: DeploymentMode = DeploymentMode.COPROCESSOR, *,
                 clock_mhz: float = 250.0, pipeline_width: int = 256) -> None:
        super().__init__(profile, mode)
        self.clock_mhz = clock_mhz
        self.pipeline_width = pipeline_width
        self.register_kernel("bitonic_sort", self._kernel_bitonic_sort)
        self.register_kernel("filter", self._kernel_filter)
        self.register_kernel("project", self._kernel_project)
        self.register_kernel("window_aggregate", self._kernel_window_aggregate)
        self.register_kernel("serialize", self._kernel_serialize)

    # -- cost model ------------------------------------------------------------------

    def _compute_time(self, spec: KernelSpec) -> float:
        """Pipeline-model compute time.

        ``spec.flops`` carries the number of elementary operations
        (compare-exchanges, predicate evaluations, byte conversions); the
        pipeline retires ``pipeline_width`` of them per clock once full.
        """
        if spec.flops <= 0:
            return 0.0
        cycles = spec.flops / self.pipeline_width + self._pipeline_depth(spec)
        return cycles / (self.clock_mhz * 1e6)

    def _pipeline_depth(self, spec: KernelSpec) -> float:
        # A deep sorting network has log^2(n) stages; streaming kernels ~ 10.
        if spec.name == "bitonic_sort" and spec.elements > 1:
            n = spec.elements
            stages = 0
            size = 1
            while size < n:
                size *= 2
                stages += 1
            return float(stages * stages)
        return 10.0

    # -- kernels -------------------------------------------------------------------------

    def _kernel_bitonic_sort(self, values: Sequence[Any], *,
                             key: Callable[[Any], Any] | None = None,
                             descending: bool = False) -> tuple[list[Any], KernelSpec]:
        """Sort values with the bitonic network (functionally exact)."""
        result, stats = bitonic_sort(values, key=key, descending=descending)
        spec = KernelSpec(
            name="bitonic_sort",
            bytes_in=len(values) * _ROW_BYTES,
            bytes_out=len(values) * _ROW_BYTES,
            flops=stats.comparisons,
            elements=len(values),
            pipelineable=True,
        )
        return result, spec

    def _kernel_filter(self, rows: Sequence[dict[str, Any]],
                       predicate: Callable[[dict[str, Any]], bool]
                       ) -> tuple[list[dict[str, Any]], KernelSpec]:
        """Streaming filter: evaluate a predicate per row, emit survivors."""
        kept = [row for row in rows if predicate(row)]
        spec = KernelSpec(
            name="filter",
            bytes_in=len(rows) * _ROW_BYTES,
            bytes_out=len(kept) * _ROW_BYTES,
            flops=len(rows),
            elements=len(rows),
            pipelineable=True,
        )
        return kept, spec

    def _kernel_project(self, rows: Sequence[dict[str, Any]], columns: Sequence[str]
                        ) -> tuple[list[dict[str, Any]], KernelSpec]:
        """Streaming projection: strip unused columns before they reach the host."""
        projected = [{name: row.get(name) for name in columns} for row in rows]
        input_width = max(1, len(rows[0])) * _VALUE_BYTES if rows else _ROW_BYTES
        output_width = max(1, len(columns)) * _VALUE_BYTES
        spec = KernelSpec(
            name="project",
            bytes_in=len(rows) * input_width,
            bytes_out=len(projected) * output_width,
            flops=len(rows) * max(1, len(columns)),
            elements=len(rows),
            pipelineable=True,
        )
        return projected, spec

    def _kernel_window_aggregate(self, points: Sequence[tuple[float, float]],
                                 window_s: float, aggregation: str = "mean"
                                 ) -> tuple[list[tuple[float, float]], KernelSpec]:
        """Streaming tumbling-window aggregation over (timestamp, value) pairs."""
        from repro.stores.timeseries.series import Point
        from repro.stores.timeseries.window import tumbling_window

        results = tumbling_window((Point(t, v) for t, v in points), window_s, aggregation)
        output = [(r.window_start, r.value) for r in results]
        spec = KernelSpec(
            name="window_aggregate",
            bytes_in=len(points) * 2 * _VALUE_BYTES,
            bytes_out=len(output) * 2 * _VALUE_BYTES,
            flops=len(points) * 2,
            elements=len(points),
            pipelineable=True,
        )
        return output, spec

    def _kernel_serialize(self, table: Any) -> tuple[bytes, KernelSpec]:
        """Binary serialization offload used by the accelerated migration path."""
        from repro.datamodel.serialization import BinarySerializer

        payload, report = BinarySerializer().serialize(table)
        spec = KernelSpec(
            name="serialize",
            bytes_in=table.estimated_bytes(),
            bytes_out=len(payload),
            flops=report.value_conversions,
            elements=report.rows,
            pipelineable=True,
        )
        return payload, spec
