"""Kernel registry: which IR operators can run on which accelerators.

The compiler's placement pass and the middleware's offload planner consult
this registry to answer the paper's challenge (d) in §IV-A: *what functions
should be accelerated*.  Each entry maps an abstract operator kind (the IR
vocabulary) to the device kernels that can execute it, together with a
work-estimation function that converts operator statistics (rows, bytes,
flops) into a :class:`~repro.accelerators.base.KernelSpec` for costing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.accelerators.base import Accelerator, KernelSpec
from repro.exceptions import AcceleratorError

_ROW_BYTES = 64


@dataclass(frozen=True)
class WorkEstimate:
    """Operator work statistics, engine-agnostic.

    Attributes:
        rows: Input rows/elements processed.
        row_bytes: Serialized bytes per row.
        selectivity: Fraction of rows surviving (filters, joins).
        flops_per_row: Elementary operations per row.
        matrix_dims: For GEMM-like operators: ``(m, k, n)``.
    """

    rows: int = 0
    row_bytes: int = _ROW_BYTES
    selectivity: float = 1.0
    flops_per_row: float = 1.0
    matrix_dims: tuple[int, int, int] | None = None


@dataclass(frozen=True)
class KernelMapping:
    """One (operator kind -> device kernel) mapping."""

    operator: str
    kernel: str
    estimator: Callable[[WorkEstimate], KernelSpec]


def _sort_spec(work: WorkEstimate) -> KernelSpec:
    import math

    n = max(2, work.rows)
    comparisons = int(n / 2 * math.log2(n) ** 2)
    return KernelSpec("bitonic_sort", work.rows * work.row_bytes, work.rows * work.row_bytes,
                      comparisons, work.rows, pipelineable=True)


def _filter_spec(work: WorkEstimate) -> KernelSpec:
    bytes_in = work.rows * work.row_bytes
    bytes_out = int(bytes_in * work.selectivity)
    return KernelSpec("filter", bytes_in, bytes_out, work.rows, work.rows, pipelineable=True)


def _project_spec(work: WorkEstimate) -> KernelSpec:
    bytes_in = work.rows * work.row_bytes
    bytes_out = int(bytes_in * min(1.0, work.selectivity))
    return KernelSpec("project", bytes_in, bytes_out, work.rows, work.rows, pipelineable=True)


def _window_spec(work: WorkEstimate) -> KernelSpec:
    bytes_in = work.rows * 16
    return KernelSpec("window_aggregate", bytes_in, int(bytes_in * work.selectivity),
                      work.rows * 2, work.rows, pipelineable=True)


def _gemm_spec(work: WorkEstimate) -> KernelSpec:
    if work.matrix_dims is None:
        raise AcceleratorError("gemm work estimate requires matrix_dims")
    m, k, n = work.matrix_dims
    bytes_in = (m * k + k * n) * 8
    bytes_out = m * n * 8
    return KernelSpec("gemm", bytes_in, bytes_out, 2 * m * k * n, m * n)


def _gemv_spec(work: WorkEstimate) -> KernelSpec:
    if work.matrix_dims is None:
        raise AcceleratorError("gemv work estimate requires matrix_dims")
    m, k, _ = work.matrix_dims
    return KernelSpec("gemv", (m * k + k) * 8, m * 8, 2 * m * k, m)


def _serialize_spec(work: WorkEstimate) -> KernelSpec:
    bytes_in = work.rows * work.row_bytes
    return KernelSpec("serialize", bytes_in, bytes_in, work.rows * max(1, work.row_bytes // 8),
                      work.rows, pipelineable=True)


#: Abstract operator kind -> candidate device kernels (tried in order).
DEFAULT_MAPPINGS: dict[str, list[KernelMapping]] = {
    "sort": [
        KernelMapping("sort", "bitonic_sort", _sort_spec),
        KernelMapping("sort", "sort", _sort_spec),
    ],
    "filter": [
        KernelMapping("filter", "filter", _filter_spec),
        KernelMapping("filter", "scan_filter", _filter_spec),
    ],
    "project": [KernelMapping("project", "project", _project_spec)],
    "window_aggregate": [KernelMapping("window_aggregate", "window_aggregate", _window_spec)],
    "gemm": [KernelMapping("gemm", "gemm", _gemm_spec)],
    "gemv": [KernelMapping("gemv", "gemv", _gemv_spec)],
    "train": [KernelMapping("train", "gemm", _gemm_spec)],
    "predict": [KernelMapping("predict", "gemv", _gemv_spec)],
    "serialize": [KernelMapping("serialize", "serialize", _serialize_spec)],
}


class KernelRegistry:
    """Lookup from operator kinds to device kernels across a fleet of accelerators."""

    def __init__(self, accelerators: list[Accelerator],
                 mappings: dict[str, list[KernelMapping]] | None = None) -> None:
        self.accelerators = list(accelerators)
        self.mappings = dict(mappings if mappings is not None else DEFAULT_MAPPINGS)

    def accelerable_operators(self) -> list[str]:
        """Operator kinds that at least one attached device can run."""
        return sorted(
            operator for operator in self.mappings
            if self.candidates(operator)
        )

    def candidates(self, operator: str) -> list[tuple[Accelerator, KernelMapping]]:
        """Devices (with their kernel mapping) able to run ``operator``."""
        out: list[tuple[Accelerator, KernelMapping]] = []
        for mapping in self.mappings.get(operator, []):
            for accelerator in self.accelerators:
                if accelerator.supports(mapping.kernel):
                    out.append((accelerator, mapping))
        return out

    def estimate(self, operator: str, work: WorkEstimate
                 ) -> list[tuple[Accelerator, KernelSpec, float]]:
        """Per-device cost estimates (simulated seconds) for ``operator``."""
        estimates = []
        for accelerator, mapping in self.candidates(operator):
            spec = mapping.estimator(work)
            report = accelerator.estimate(spec)
            estimates.append((accelerator, spec, report.total_s))
        return sorted(estimates, key=lambda item: item[2])

    def best(self, operator: str, work: WorkEstimate
             ) -> tuple[Accelerator, KernelSpec, float] | None:
        """Cheapest device for ``operator``, or ``None`` when none can run it."""
        estimates = self.estimate(operator, work)
        return estimates[0] if estimates else None
