"""Simulated CGRA (coarse-grained reconfigurable array) accelerator.

The paper cites Plasticine-style CGRAs as reconfigurable like FPGAs but with
much shorter reconfiguration times because they are built from coarse
processing elements (§II-B).  The simulator reuses the parallel-pattern
kernels (map, reduce, filter, sort) with a fast-reconfiguration profile and a
pattern-level utilization model.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.accelerators.base import Accelerator, DeploymentMode, DeviceProfile, KernelSpec
from repro.stores.relational.operators import bitonic_sort

#: Default profile loosely modelled on a Plasticine-class CGRA.
DEFAULT_CGRA_PROFILE = DeviceProfile(
    name="cgra0",
    peak_gflops=3_000.0,
    memory_bandwidth_gbs=480.0,
    transfer_bandwidth_gbs=16.0,
    dispatch_overhead_s=30e-6,
    power_w=45.0,
    idle_power_w=8.0,
    reconfiguration_s=50e-6,       # orders of magnitude faster than FPGA synthesis
)

_ROW_BYTES = 64


class CGRAAccelerator(Accelerator):
    """A CGRA executing parallel patterns: map, reduce, filter and sort."""

    def __init__(self, profile: DeviceProfile = DEFAULT_CGRA_PROFILE,
                 mode: DeploymentMode = DeploymentMode.COPROCESSOR, *,
                 pattern_units: int = 64) -> None:
        super().__init__(profile, mode)
        self.pattern_units = pattern_units
        self.register_kernel("map", self._kernel_map)
        self.register_kernel("reduce", self._kernel_reduce)
        self.register_kernel("filter", self._kernel_filter)
        self.register_kernel("sort", self._kernel_sort)
        self.register_kernel("gemm", self._kernel_gemm)

    def _compute_time(self, spec: KernelSpec) -> float:
        base = super()._compute_time(spec)
        if spec.elements and spec.elements < self.pattern_units:
            # Fewer elements than pattern units leaves the fabric mostly idle.
            return base * (self.pattern_units / max(1, spec.elements)) * 0.25
        return base

    # -- kernels ---------------------------------------------------------------------

    def _kernel_map(self, array: np.ndarray, fn: Callable[[np.ndarray], np.ndarray]
                    ) -> tuple[np.ndarray, KernelSpec]:
        """Parallel map pattern."""
        array = np.asarray(array, dtype=np.float64)
        result = fn(array)
        spec = KernelSpec("map", int(array.nbytes), int(np.asarray(result).nbytes),
                          int(array.size), int(array.size), pipelineable=True)
        return result, spec

    def _kernel_reduce(self, array: np.ndarray) -> tuple[float, KernelSpec]:
        """Parallel reduction pattern (sum)."""
        array = np.asarray(array, dtype=np.float64)
        result = float(array.sum())
        spec = KernelSpec("reduce", int(array.nbytes), 8, int(array.size),
                          int(array.size), pipelineable=True)
        return result, spec

    def _kernel_filter(self, rows: Sequence[dict[str, Any]],
                       predicate: Callable[[dict[str, Any]], bool]
                       ) -> tuple[list[dict[str, Any]], KernelSpec]:
        """Parallel filter pattern over row dictionaries."""
        kept = [row for row in rows if predicate(row)]
        spec = KernelSpec("filter", len(rows) * _ROW_BYTES, len(kept) * _ROW_BYTES,
                          len(rows), len(rows), pipelineable=True)
        return kept, spec

    def _kernel_sort(self, values: Sequence[Any], *,
                     key: Callable[[Any], Any] | None = None,
                     descending: bool = False) -> tuple[list[Any], KernelSpec]:
        """Sorting via the same bitonic network the FPGA uses."""
        result, stats = bitonic_sort(values, key=key, descending=descending)
        spec = KernelSpec("sort", len(values) * _ROW_BYTES, len(values) * _ROW_BYTES,
                          stats.comparisons, len(values), pipelineable=True)
        return result, spec

    def _kernel_gemm(self, a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, KernelSpec]:
        """Dense matrix multiply mapped onto the pattern fabric."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        result = a @ b
        flops = 2 * a.shape[0] * a.shape[1] * (b.shape[1] if b.ndim > 1 else 1)
        spec = KernelSpec("gemm", int(a.nbytes + b.nbytes), int(result.nbytes),
                          int(flops), int(result.size))
        return result, spec
