"""Offload planning: host-vs-accelerator decisions.

Implements the decision procedure the paper's optimizer needs: given an
operator's work estimate, compare the host CPU's predicted time against each
candidate accelerator's predicted time (transfer + overhead + device compute)
and pick the cheapest placement under the selected objective (latency,
energy, or a weighted combination).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.accelerators.base import Accelerator, HostCPU, KernelSpec
from repro.accelerators.kernels import KernelRegistry, WorkEstimate
from repro.exceptions import AcceleratorError


class Objective(enum.Enum):
    """Optimization objective for placement decisions."""

    LATENCY = "latency"
    ENERGY = "energy"
    ENERGY_DELAY_PRODUCT = "edp"


@dataclass(frozen=True)
class PlacementDecision:
    """Outcome of one host-vs-accelerator comparison.

    Attributes:
        operator: The operator kind that was considered.
        target: ``"host"`` or the chosen device name.
        host_time_s: Predicted host execution time.
        accelerator_time_s: Predicted accelerated time (``None`` when no
            device can run the operator).
        speedup: Host time over chosen-target time (1.0 for host placement).
        host_energy_j: Predicted host energy.
        accelerator_energy_j: Predicted accelerated energy.
        kernel: Device kernel chosen (``None`` for host).
        host_time_source: ``"model"`` when the host time came from the
            roofline model, ``"observed"`` when runtime feedback supplied a
            measured host time.
    """

    operator: str
    target: str
    host_time_s: float
    accelerator_time_s: float | None
    speedup: float
    host_energy_j: float
    accelerator_energy_j: float | None
    kernel: str | None = None
    host_time_source: str = "model"

    @property
    def offloaded(self) -> bool:
        """Whether the operator was placed on an accelerator."""
        return self.target != "host"


class OffloadPlanner:
    """Chooses a placement for each operator given a device fleet."""

    def __init__(self, registry: KernelRegistry, host: HostCPU | None = None, *,
                 objective: Objective = Objective.LATENCY,
                 host_cores: int = 1) -> None:
        self.registry = registry
        self.host = host if host is not None else HostCPU()
        self.objective = objective
        self.host_cores = host_cores
        self.decisions: list[PlacementDecision] = []

    # -- host model --------------------------------------------------------------------

    def host_estimate(self, work: WorkEstimate, operator: str) -> tuple[float, float]:
        """Predicted (time, energy) of running ``operator`` on the host."""
        flops, bytes_moved = _host_work(work, operator)
        time_s = self.host.execution_time_s(flops, bytes_moved, cores=self.host_cores)
        return time_s, self.host.energy_j(time_s)

    # -- decision ----------------------------------------------------------------------

    def decide(self, operator: str, work: WorkEstimate, *,
               observed_host_time_s: float | None = None) -> PlacementDecision:
        """Pick host or the cheapest accelerator for ``operator``.

        ``observed_host_time_s`` — a measured host execution time fed back
        from earlier runs — replaces the roofline host model when given; the
        model is a lower bound for tight kernels and can dramatically
        under-estimate the real per-row cost of an engine's operator path.
        """
        host_time, host_energy = self.host_estimate(work, operator)
        host_source = "model"
        if observed_host_time_s is not None and observed_host_time_s > 0.0:
            host_time = observed_host_time_s
            host_energy = self.host.energy_j(host_time)
            host_source = "observed"
        best = self.registry.best(operator, work)
        if best is None:
            decision = PlacementDecision(operator, "host", host_time, None, 1.0,
                                         host_energy, None,
                                         host_time_source=host_source)
            self.decisions.append(decision)
            return decision
        accelerator, spec, accel_time = best
        accel_energy = accelerator.profile.power_w * accel_time
        host_score = self._score(host_time, host_energy)
        accel_score = self._score(accel_time, accel_energy)
        if accel_score < host_score:
            decision = PlacementDecision(
                operator=operator,
                target=accelerator.profile.name,
                host_time_s=host_time,
                accelerator_time_s=accel_time,
                speedup=host_time / accel_time if accel_time > 0 else float("inf"),
                host_energy_j=host_energy,
                accelerator_energy_j=accel_energy,
                kernel=spec.name,
                host_time_source=host_source,
            )
        else:
            decision = PlacementDecision(operator, "host", host_time, accel_time, 1.0,
                                         host_energy, accel_energy, kernel=None,
                                         host_time_source=host_source)
        self.decisions.append(decision)
        return decision

    def accelerator_named(self, name: str) -> Accelerator:
        """Look up an attached accelerator by device name."""
        for accelerator in self.registry.accelerators:
            if accelerator.profile.name == name:
                return accelerator
        raise AcceleratorError(f"no accelerator named {name!r}")

    def _score(self, time_s: float, energy_j: float) -> float:
        if self.objective is Objective.LATENCY:
            return time_s
        if self.objective is Objective.ENERGY:
            return energy_j
        return time_s * energy_j

    def summary(self) -> dict[str, int]:
        """Counts of offloaded vs host placements made so far."""
        offloaded = sum(1 for d in self.decisions if d.offloaded)
        return {"offloaded": offloaded, "host": len(self.decisions) - offloaded}


def _host_work(work: WorkEstimate, operator: str) -> tuple[float, float]:
    """Approximate host flops and bytes for an operator's work estimate."""
    if work.matrix_dims is not None:
        m, k, n = work.matrix_dims
        flops = 2.0 * m * k * n
        bytes_moved = float((m * k + k * n + m * n) * 8)
        return flops, bytes_moved
    bytes_moved = float(work.rows * work.row_bytes)
    if operator == "sort":
        import math

        n = max(2, work.rows)
        # Comparison sorts on a host cost ~ n log n with a noticeable constant
        # for row materialization; 8 "flops" per comparison is the calibration
        # used across the cost models.
        flops = 8.0 * n * math.log2(n)
    else:
        flops = work.flops_per_row * max(1, work.rows)
    return flops, bytes_moved
