"""Roofline performance model.

The paper (§IV-B-4) notes the Roofline model as the standard way to bound
attainable performance on fixed hardware.  The middleware's cost model uses
it to cap the throughput an accelerator can deliver for a kernel given the
kernel's arithmetic intensity (flops per byte moved).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import AcceleratorError


@dataclass(frozen=True)
class RooflineModel:
    """A device roofline: peak compute and peak memory bandwidth.

    Attributes:
        peak_gflops: Peak floating-point throughput in GFLOP/s.
        memory_bandwidth_gbs: Peak memory bandwidth in GB/s.
    """

    peak_gflops: float
    memory_bandwidth_gbs: float

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0 or self.memory_bandwidth_gbs <= 0:
            raise AcceleratorError("roofline parameters must be positive")

    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity (flop/byte) at which compute becomes the bound."""
        return self.peak_gflops / self.memory_bandwidth_gbs

    def attainable_gflops(self, arithmetic_intensity: float) -> float:
        """Attainable GFLOP/s at a given arithmetic intensity."""
        if arithmetic_intensity <= 0:
            raise AcceleratorError("arithmetic intensity must be positive")
        return min(self.peak_gflops, self.memory_bandwidth_gbs * arithmetic_intensity)

    def is_memory_bound(self, arithmetic_intensity: float) -> bool:
        """Whether a kernel of this intensity is memory-bandwidth bound."""
        return arithmetic_intensity < self.ridge_point

    def execution_time_s(self, flops: float, bytes_moved: float) -> float:
        """Time to execute ``flops`` of work moving ``bytes_moved`` bytes.

        The kernel runs at whichever of the two ceilings binds it.
        """
        if flops < 0 or bytes_moved < 0:
            raise AcceleratorError("flops and bytes must be non-negative")
        if flops == 0 and bytes_moved == 0:
            return 0.0
        if bytes_moved == 0:
            return flops / (self.peak_gflops * 1e9)
        if flops == 0:
            return bytes_moved / (self.memory_bandwidth_gbs * 1e9)
        intensity = flops / bytes_moved
        achieved = self.attainable_gflops(intensity) * 1e9
        return flops / achieved

    def curve(self, intensities: list[float]) -> list[tuple[float, float]]:
        """``(intensity, attainable GFLOP/s)`` points for plotting/benchmarks."""
        return [(x, self.attainable_gflops(x)) for x in intensities]
