"""The LogCA analytical performance model for hardware accelerators.

The paper (§II-B) points to LogCA [Altaf & Wood, ISCA'17] as the model for
deciding whether offloading a kernel to an accelerator pays off.  LogCA
describes an accelerated kernel with five parameters:

* ``L`` — interface latency per byte moved to/from the accelerator,
* ``o`` — fixed overhead of dispatching one offload (driver, setup),
* ``g`` — granularity, the number of bytes offloaded (the variable),
* ``C`` — computational index: host time per byte of the kernel,
* ``A`` — peak acceleration: how much faster the accelerator computes the
  kernel than the host once data is resident.

With ``beta`` capturing how compute scales with granularity (``time ∝ g**beta``),
host time is ``C * g**beta`` and accelerated time is
``o + L * g + C * g**beta / A``.  The two quantities the paper's offload
decisions need are the break-even granularity ``g1`` (speedup = 1) and
``g_{A/2}`` (granularity where half the peak acceleration is achieved).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import AcceleratorError


@dataclass(frozen=True)
class LogCAParameters:
    """Parameters of one accelerated kernel under the LogCA model.

    Attributes:
        latency_per_byte_s: ``L`` — seconds per byte crossing the interface.
        overhead_s: ``o`` — fixed dispatch overhead in seconds.
        compute_index_s_per_byte: ``C`` — host seconds per byte of work.
        peak_acceleration: ``A`` — accelerator speedup over the host at
            infinite granularity (ignoring transfer).
        beta: Exponent relating granularity to compute time (1.0 for linear
            kernels such as scans; ~1.1-1.5 for super-linear kernels such
            as sorting or GEMM over the offloaded bytes).
    """

    latency_per_byte_s: float
    overhead_s: float
    compute_index_s_per_byte: float
    peak_acceleration: float
    beta: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_per_byte_s < 0 or self.overhead_s < 0:
            raise AcceleratorError("latency and overhead must be non-negative")
        if self.compute_index_s_per_byte <= 0:
            raise AcceleratorError("compute index must be positive")
        if self.peak_acceleration <= 0:
            raise AcceleratorError("peak acceleration must be positive")
        if self.beta <= 0:
            raise AcceleratorError("beta must be positive")


class LogCAModel:
    """Evaluates host time, accelerator time and speedup at a granularity."""

    def __init__(self, parameters: LogCAParameters) -> None:
        self.parameters = parameters

    # -- timing -------------------------------------------------------------------

    def host_time(self, granularity_bytes: float) -> float:
        """Time to run the kernel on the host CPU for ``granularity_bytes``."""
        self._check_granularity(granularity_bytes)
        p = self.parameters
        return p.compute_index_s_per_byte * granularity_bytes ** p.beta

    def accelerator_time(self, granularity_bytes: float) -> float:
        """Time to offload and run the kernel on the accelerator."""
        self._check_granularity(granularity_bytes)
        p = self.parameters
        compute = p.compute_index_s_per_byte * granularity_bytes ** p.beta / p.peak_acceleration
        return p.overhead_s + p.latency_per_byte_s * granularity_bytes + compute

    def speedup(self, granularity_bytes: float) -> float:
        """Host time divided by accelerated time at ``granularity_bytes``."""
        accel = self.accelerator_time(granularity_bytes)
        if accel <= 0:
            return float("inf")
        return self.host_time(granularity_bytes) / accel

    def offload_beneficial(self, granularity_bytes: float) -> bool:
        """Whether offloading beats the host at this granularity."""
        return self.speedup(granularity_bytes) > 1.0

    # -- characteristic granularities ------------------------------------------------

    def break_even_granularity(self, *, upper_bytes: float = 1e12) -> float | None:
        """``g1``: smallest granularity where speedup reaches 1.

        Returns ``None`` when offload never breaks even below ``upper_bytes``
        (for example when ``L`` exceeds the achievable compute saving).
        """
        return self._granularity_for_speedup(1.0, upper_bytes=upper_bytes)

    def half_peak_granularity(self, *, upper_bytes: float = 1e12) -> float | None:
        """``g_{A/2}``: smallest granularity reaching half the peak acceleration."""
        return self._granularity_for_speedup(self.parameters.peak_acceleration / 2.0,
                                             upper_bytes=upper_bytes)

    def asymptotic_speedup(self) -> float:
        """Speedup limit as granularity grows without bound.

        For ``beta > 1`` the limit is the peak acceleration ``A``; for
        ``beta == 1`` transfer latency caps it below ``A``.
        """
        p = self.parameters
        if p.beta > 1.0:
            return p.peak_acceleration
        if p.latency_per_byte_s == 0:
            return p.peak_acceleration
        return p.compute_index_s_per_byte / (
            p.latency_per_byte_s + p.compute_index_s_per_byte / p.peak_acceleration
        )

    def speedup_curve(self, granularities: list[float]) -> list[tuple[float, float]]:
        """``(granularity, speedup)`` points for plotting/benchmarks."""
        return [(g, self.speedup(g)) for g in granularities]

    # -- helpers --------------------------------------------------------------------------

    def _granularity_for_speedup(self, target: float, *, upper_bytes: float) -> float | None:
        if target <= 0:
            raise AcceleratorError("target speedup must be positive")
        lo, hi = 1.0, upper_bytes
        if self.speedup(hi) < target:
            return None
        if self.speedup(lo) >= target:
            return lo
        for _ in range(200):
            mid = math.sqrt(lo * hi)
            if self.speedup(mid) >= target:
                hi = mid
            else:
                lo = mid
            if hi / lo < 1.0001:
                break
        return hi

    @staticmethod
    def _check_granularity(granularity_bytes: float) -> None:
        if granularity_bytes <= 0:
            raise AcceleratorError("granularity must be positive")
