"""Simulated fixed-function accelerators (ASIC / TPU-class).

ASICs in the paper are fixed-function devices with pre-configured operators
that "achieve extremely high performance and efficiency for these operators"
(§II-B).  Two devices are modelled:

* :class:`TPUAccelerator` — a systolic-array matrix engine (GEMM/GEMV only),
  standalone deployment like Google's TPU or Microsoft Brainwave.
* :class:`MigrationASIC` — a bump-in-the-wire serialization/compression
  engine for the data-migration path (§III-A-3).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.accelerators.base import Accelerator, DeploymentMode, DeviceProfile, KernelSpec
from repro.exceptions import AcceleratorError

#: Default profile loosely modelled on a first-generation inference TPU.
DEFAULT_TPU_PROFILE = DeviceProfile(
    name="tpu0",
    peak_gflops=45_000.0,
    memory_bandwidth_gbs=600.0,
    transfer_bandwidth_gbs=10.0,
    dispatch_overhead_s=50e-6,
    power_w=75.0,
    idle_power_w=15.0,
    reconfiguration_s=0.0,
)

DEFAULT_MIGRATION_ASIC_PROFILE = DeviceProfile(
    name="migration-asic0",
    peak_gflops=100.0,
    memory_bandwidth_gbs=50.0,
    transfer_bandwidth_gbs=25.0,
    dispatch_overhead_s=10e-6,
    power_w=8.0,
    idle_power_w=2.0,
    reconfiguration_s=0.0,
)


class TPUAccelerator(Accelerator):
    """A systolic matrix engine supporting only GEMM and GEMV."""

    def __init__(self, profile: DeviceProfile = DEFAULT_TPU_PROFILE,
                 mode: DeploymentMode = DeploymentMode.STANDALONE, *,
                 systolic_dim: int = 256) -> None:
        super().__init__(profile, mode)
        self.systolic_dim = systolic_dim
        self.register_kernel("gemm", self._kernel_gemm)
        self.register_kernel("gemv", self._kernel_gemv)

    def _compute_time(self, spec: KernelSpec) -> float:
        base = super()._compute_time(spec)
        if spec.elements and spec.elements < self.systolic_dim * self.systolic_dim:
            # Matrices smaller than the systolic array waste most of the grid.
            fill = max(0.02, spec.elements / float(self.systolic_dim * self.systolic_dim))
            return base / fill
        return base

    def _kernel_gemm(self, a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, KernelSpec]:
        """Dense matrix-matrix multiply."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2:
            raise AcceleratorError("TPU gemm expects 2-D operands")
        result = a @ b
        spec = KernelSpec(
            name="gemm",
            bytes_in=int(a.nbytes + b.nbytes),
            bytes_out=int(result.nbytes),
            flops=int(2 * a.shape[0] * a.shape[1] * b.shape[1]),
            elements=int(result.size),
        )
        return result, spec

    def _kernel_gemv(self, a: np.ndarray, x: np.ndarray) -> tuple[np.ndarray, KernelSpec]:
        """Dense matrix-vector multiply."""
        a = np.asarray(a, dtype=np.float64)
        x = np.asarray(x, dtype=np.float64)
        result = a @ x
        spec = KernelSpec(
            name="gemv",
            bytes_in=int(a.nbytes + x.nbytes),
            bytes_out=int(result.nbytes),
            flops=int(2 * a.shape[0] * a.shape[1]),
            elements=int(result.size),
        )
        return result, spec


class MigrationASIC(Accelerator):
    """A bump-in-the-wire serialization engine for cross-engine data movement."""

    def __init__(self, profile: DeviceProfile = DEFAULT_MIGRATION_ASIC_PROFILE,
                 mode: DeploymentMode = DeploymentMode.BUMP_IN_THE_WIRE) -> None:
        super().__init__(profile, mode)
        self.register_kernel("serialize", self._kernel_serialize)
        self.register_kernel("deserialize", self._kernel_deserialize)

    def _kernel_serialize(self, table: Any) -> tuple[bytes, KernelSpec]:
        """Binary-encode a table on the wire path."""
        from repro.datamodel.serialization import BinarySerializer

        payload, report = BinarySerializer().serialize(table)
        spec = KernelSpec(
            name="serialize",
            bytes_in=table.estimated_bytes(),
            bytes_out=len(payload),
            flops=report.value_conversions,
            elements=report.rows,
            pipelineable=True,
        )
        return payload, spec

    def _kernel_deserialize(self, payload: bytes, schema: Any) -> tuple[Any, KernelSpec]:
        """Binary-decode a payload on the wire path."""
        from repro.datamodel.serialization import BinarySerializer

        table, report = BinarySerializer().deserialize(payload, schema)
        spec = KernelSpec(
            name="deserialize",
            bytes_in=len(payload),
            bytes_out=table.estimated_bytes(),
            flops=report.value_conversions,
            elements=report.rows,
            pipelineable=True,
        )
        return table, spec
