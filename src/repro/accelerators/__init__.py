"""Simulated hardware accelerators, analytical models and offload planning."""

from repro.accelerators.asic import (
    DEFAULT_MIGRATION_ASIC_PROFILE,
    DEFAULT_TPU_PROFILE,
    MigrationASIC,
    TPUAccelerator,
)
from repro.accelerators.base import (
    Accelerator,
    DeploymentMode,
    DeviceProfile,
    HostCPU,
    KernelSpec,
    OffloadReport,
)
from repro.accelerators.cgra import DEFAULT_CGRA_PROFILE, CGRAAccelerator
from repro.accelerators.fpga import DEFAULT_FPGA_PROFILE, FPGAAccelerator
from repro.accelerators.gpu import DEFAULT_GPU_PROFILE, GPUAccelerator
from repro.accelerators.kernels import KernelMapping, KernelRegistry, WorkEstimate
from repro.accelerators.logca import LogCAModel, LogCAParameters
from repro.accelerators.roofline import RooflineModel
from repro.accelerators.simulator import Objective, OffloadPlanner, PlacementDecision

__all__ = [
    "Accelerator",
    "DeploymentMode",
    "DeviceProfile",
    "HostCPU",
    "KernelSpec",
    "OffloadReport",
    "FPGAAccelerator",
    "GPUAccelerator",
    "CGRAAccelerator",
    "TPUAccelerator",
    "MigrationASIC",
    "DEFAULT_FPGA_PROFILE",
    "DEFAULT_GPU_PROFILE",
    "DEFAULT_CGRA_PROFILE",
    "DEFAULT_TPU_PROFILE",
    "DEFAULT_MIGRATION_ASIC_PROFILE",
    "LogCAModel",
    "LogCAParameters",
    "RooflineModel",
    "KernelRegistry",
    "KernelMapping",
    "WorkEstimate",
    "OffloadPlanner",
    "PlacementDecision",
    "Objective",
]
