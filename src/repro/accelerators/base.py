"""Accelerator abstraction and the simulated offload machinery.

The paper's Polystore++ deploys accelerators in three modes (§I):
*standalone*, *coprocessor*, and *bump-in-the-wire*.  Since no FPGA/GPU/CGRA
hardware is available here, each accelerator is an analytical simulator: the
kernel's *result* is computed functionally in Python (so downstream operators
receive correct data), while its *cost* is charged from a device profile —
transfer bandwidth, dispatch overhead, device throughput, pipelining — and a
Roofline ceiling.  The middleware treats the returned simulated time as the
operator's execution time when comparing placements.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.accelerators.logca import LogCAModel, LogCAParameters
from repro.accelerators.roofline import RooflineModel
from repro.exceptions import AcceleratorError


class DeploymentMode(enum.Enum):
    """How an accelerator is attached to the system (paper §I)."""

    STANDALONE = "standalone"
    COPROCESSOR = "coprocessor"
    BUMP_IN_THE_WIRE = "bump_in_the_wire"


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of an accelerator device.

    Attributes:
        name: Device name (e.g. ``"fpga0"``).
        peak_gflops: Peak compute throughput.
        memory_bandwidth_gbs: On-device memory bandwidth.
        transfer_bandwidth_gbs: Host-to-device link bandwidth (PCIe, network).
        dispatch_overhead_s: Fixed per-offload software/driver overhead.
        power_w: Active power draw, used for the energy objective.
        idle_power_w: Idle power draw.
        reconfiguration_s: Time to reconfigure before a *different* kernel can
            run (hours-scale for FPGA synthesis, micro/milliseconds for CGRA,
            zero for fixed-function ASICs and GPUs).
        area_luts: FPGA-style area budget (lookup tables); ``None`` when the
            device has no meaningful area constraint.
    """

    name: str
    peak_gflops: float
    memory_bandwidth_gbs: float
    transfer_bandwidth_gbs: float
    dispatch_overhead_s: float
    power_w: float
    idle_power_w: float = 0.0
    reconfiguration_s: float = 0.0
    area_luts: int | None = None

    def roofline(self) -> RooflineModel:
        """Roofline ceiling implied by this profile."""
        return RooflineModel(self.peak_gflops, self.memory_bandwidth_gbs)


@dataclass(frozen=True)
class KernelSpec:
    """Work description for one offload request.

    Attributes:
        name: Kernel name (``"bitonic_sort"``, ``"gemm"``, ``"filter"``...).
        bytes_in: Bytes shipped to the device.
        bytes_out: Bytes shipped back.
        flops: Floating-point (or compare-exchange) operations in the kernel.
        elements: Number of logical elements processed (rows, points, ...).
        pipelineable: Whether transfer and compute can overlap (streaming
            kernels in bump-in-the-wire mode).
    """

    name: str
    bytes_in: int
    bytes_out: int = 0
    flops: int = 0
    elements: int = 0
    pipelineable: bool = False


@dataclass
class OffloadReport:
    """Simulated cost breakdown of one offload."""

    device: str
    kernel: str
    transfer_s: float
    compute_s: float
    overhead_s: float
    reconfiguration_s: float
    total_s: float
    energy_j: float
    bytes_moved: int
    pipelined: bool
    details: dict[str, Any] = field(default_factory=dict)


class Accelerator(abc.ABC):
    """Base class for simulated hardware accelerators.

    Subclasses register functional kernels with :meth:`register_kernel`; each
    kernel is a Python callable producing the real result.  :meth:`offload`
    runs the kernel, estimates its device cost and returns both.
    """

    def __init__(self, profile: DeviceProfile, mode: DeploymentMode) -> None:
        self.profile = profile
        self.mode = mode
        self._kernels: dict[str, Callable[..., tuple[Any, KernelSpec]]] = {}
        self._configured_kernel: str | None = None
        self.reports: list[OffloadReport] = []

    # -- kernel registry -------------------------------------------------------------

    def register_kernel(self, name: str,
                        fn: Callable[..., tuple[Any, KernelSpec]]) -> None:
        """Register a functional kernel.

        ``fn(*args, **kwargs)`` must return ``(result, KernelSpec)`` where the
        spec describes the work just performed.
        """
        self._kernels[name] = fn

    def supported_kernels(self) -> frozenset[str]:
        """Names of kernels this device can execute."""
        return frozenset(self._kernels)

    def supports(self, kernel: str) -> bool:
        """Whether ``kernel`` is registered on this device."""
        return kernel in self._kernels

    # -- offload ------------------------------------------------------------------------

    def offload(self, kernel: str, *args: Any, **kwargs: Any) -> tuple[Any, OffloadReport]:
        """Execute ``kernel`` functionally and charge its simulated device cost."""
        if kernel not in self._kernels:
            raise AcceleratorError(
                f"device {self.profile.name!r} has no kernel {kernel!r}; "
                f"available: {sorted(self._kernels)}"
            )
        result, spec = self._kernels[kernel](*args, **kwargs)
        report = self.estimate(spec)
        self.reports.append(report)
        return result, report

    def estimate(self, spec: KernelSpec) -> OffloadReport:
        """Simulated cost of running ``spec`` on this device (no execution)."""
        profile = self.profile
        bytes_moved = spec.bytes_in + spec.bytes_out
        transfer_s = bytes_moved / (profile.transfer_bandwidth_gbs * 1e9) \
            if bytes_moved else 0.0
        compute_s = self._compute_time(spec)
        reconfiguration_s = 0.0
        if self._configured_kernel is not None and self._configured_kernel != spec.name:
            reconfiguration_s = profile.reconfiguration_s
        self._configured_kernel = spec.name
        if spec.pipelineable and self.mode is DeploymentMode.BUMP_IN_THE_WIRE:
            # Streaming kernels overlap transfer with compute.
            busy = max(transfer_s, compute_s)
        else:
            busy = transfer_s + compute_s
        total = profile.dispatch_overhead_s + reconfiguration_s + busy
        energy = profile.power_w * busy + profile.idle_power_w * (
            profile.dispatch_overhead_s + reconfiguration_s
        )
        return OffloadReport(
            device=profile.name,
            kernel=spec.name,
            transfer_s=transfer_s,
            compute_s=compute_s,
            overhead_s=profile.dispatch_overhead_s,
            reconfiguration_s=reconfiguration_s,
            total_s=total,
            energy_j=energy,
            bytes_moved=bytes_moved,
            pipelined=spec.pipelineable and self.mode is DeploymentMode.BUMP_IN_THE_WIRE,
        )

    def _compute_time(self, spec: KernelSpec) -> float:
        """Device compute time for a kernel; subclasses may specialize."""
        roofline = self.profile.roofline()
        return roofline.execution_time_s(float(spec.flops), float(spec.bytes_in + spec.bytes_out))

    # -- LogCA view ------------------------------------------------------------------------

    def logca_model(self, *, host_compute_index_s_per_byte: float,
                    peak_acceleration: float | None = None,
                    beta: float = 1.0) -> LogCAModel:
        """Build a LogCA model of this device for one kernel class.

        ``peak_acceleration`` defaults to the ratio of this device's peak
        compute throughput to a nominal 1-core host (used by the offload
        planner when it has no measured calibration).
        """
        if peak_acceleration is None:
            nominal_host_gflops = 8.0
            peak_acceleration = max(1.0, self.profile.peak_gflops / nominal_host_gflops)
        return LogCAModel(LogCAParameters(
            latency_per_byte_s=1.0 / (self.profile.transfer_bandwidth_gbs * 1e9),
            overhead_s=self.profile.dispatch_overhead_s,
            compute_index_s_per_byte=host_compute_index_s_per_byte,
            peak_acceleration=peak_acceleration,
            beta=beta,
        ))

    # -- bookkeeping --------------------------------------------------------------------------

    def total_simulated_time(self) -> float:
        """Sum of simulated offload time across all reports."""
        return sum(r.total_s for r in self.reports)

    def total_energy(self) -> float:
        """Sum of simulated energy across all reports."""
        return sum(r.energy_j for r in self.reports)

    def reset_reports(self) -> None:
        """Clear accumulated offload reports."""
        self.reports.clear()
        self._configured_kernel = None

    def describe(self) -> dict[str, Any]:
        """Metadata used by the EIDE configuration and the catalog."""
        return {
            "name": self.profile.name,
            "type": type(self).__name__,
            "mode": self.mode.value,
            "peak_gflops": self.profile.peak_gflops,
            "transfer_bandwidth_gbs": self.profile.transfer_bandwidth_gbs,
            "power_w": self.profile.power_w,
            "kernels": sorted(self.supported_kernels()),
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.profile.name!r}, mode={self.mode.value})"


@dataclass(frozen=True)
class HostCPU:
    """Reference host processor the offload decisions compare against."""

    name: str = "host-cpu"
    cores: int = 8
    peak_gflops_per_core: float = 8.0
    memory_bandwidth_gbs: float = 25.0
    power_w: float = 95.0

    def roofline(self, *, cores: int | None = None) -> RooflineModel:
        """Roofline of ``cores`` host cores (defaults to all of them)."""
        used = self.cores if cores is None else max(1, min(cores, self.cores))
        return RooflineModel(self.peak_gflops_per_core * used, self.memory_bandwidth_gbs)

    def execution_time_s(self, flops: float, bytes_moved: float, *,
                         cores: int = 1) -> float:
        """Host execution time of a kernel on ``cores`` cores."""
        return self.roofline(cores=cores).execution_time_s(flops, bytes_moved)

    def energy_j(self, execution_time_s: float) -> float:
        """Energy of running the host flat-out for ``execution_time_s``."""
        return self.power_w * execution_time_s
