"""Simulated GPU accelerator.

GPUs in the paper accelerate wide-SIMD workloads — GEMM/GEMV for ML, and
scan-style database kernels (§II-B).  The compute model is the device's
Roofline with an efficiency factor for small launches (real GPUs are badly
under-utilized below a few thousand threads).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.accelerators.base import Accelerator, DeploymentMode, DeviceProfile, KernelSpec

#: Default profile loosely modelled on a mid-range data-center GPU.
DEFAULT_GPU_PROFILE = DeviceProfile(
    name="gpu0",
    peak_gflops=14_000.0,
    memory_bandwidth_gbs=900.0,
    transfer_bandwidth_gbs=16.0,
    dispatch_overhead_s=20e-6,
    power_w=250.0,
    idle_power_w=30.0,
    reconfiguration_s=0.0,
)

_VALUE_BYTES = 8


class GPUAccelerator(Accelerator):
    """A GPU with GEMM/GEMV, element-wise map and reduction kernels."""

    def __init__(self, profile: DeviceProfile = DEFAULT_GPU_PROFILE,
                 mode: DeploymentMode = DeploymentMode.COPROCESSOR, *,
                 min_efficient_elements: int = 1 << 14) -> None:
        super().__init__(profile, mode)
        self.min_efficient_elements = min_efficient_elements
        self.register_kernel("gemm", self._kernel_gemm)
        self.register_kernel("gemv", self._kernel_gemv)
        self.register_kernel("map", self._kernel_map)
        self.register_kernel("reduce", self._kernel_reduce)
        self.register_kernel("scan_filter", self._kernel_scan_filter)

    def _compute_time(self, spec: KernelSpec) -> float:
        base = super()._compute_time(spec)
        if spec.elements and spec.elements < self.min_efficient_elements:
            # Small launches cannot fill the device; derate proportionally.
            utilization = max(0.05, spec.elements / self.min_efficient_elements)
            return base / utilization
        return base

    # -- kernels ---------------------------------------------------------------------

    def _kernel_gemm(self, a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, KernelSpec]:
        """Dense matrix-matrix multiply."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        result = a @ b
        flops = 2 * a.shape[0] * a.shape[1] * b.shape[-1] if b.ndim > 1 \
            else 2 * a.shape[0] * a.shape[1]
        spec = KernelSpec(
            name="gemm",
            bytes_in=int(a.nbytes + b.nbytes),
            bytes_out=int(result.nbytes),
            flops=int(flops),
            elements=int(result.size),
        )
        return result, spec

    def _kernel_gemv(self, a: np.ndarray, x: np.ndarray) -> tuple[np.ndarray, KernelSpec]:
        """Dense matrix-vector multiply."""
        a = np.asarray(a, dtype=np.float64)
        x = np.asarray(x, dtype=np.float64)
        result = a @ x
        spec = KernelSpec(
            name="gemv",
            bytes_in=int(a.nbytes + x.nbytes),
            bytes_out=int(result.nbytes),
            flops=int(2 * a.shape[0] * a.shape[1]),
            elements=int(result.size),
        )
        return result, spec

    def _kernel_map(self, array: np.ndarray, fn) -> tuple[np.ndarray, KernelSpec]:
        """Element-wise map over a dense array."""
        array = np.asarray(array, dtype=np.float64)
        result = fn(array)
        spec = KernelSpec(
            name="map",
            bytes_in=int(array.nbytes),
            bytes_out=int(np.asarray(result).nbytes),
            flops=int(array.size),
            elements=int(array.size),
        )
        return result, spec

    def _kernel_reduce(self, array: np.ndarray, *, axis: int | None = None
                       ) -> tuple[np.ndarray | float, KernelSpec]:
        """Sum-reduction over a dense array."""
        array = np.asarray(array, dtype=np.float64)
        result = array.sum(axis=axis)
        out_bytes = int(np.asarray(result).nbytes)
        spec = KernelSpec(
            name="reduce",
            bytes_in=int(array.nbytes),
            bytes_out=out_bytes,
            flops=int(array.size),
            elements=int(array.size),
        )
        if np.isscalar(result) or getattr(result, "ndim", 0) == 0:
            return float(result), spec
        return result, spec

    def _kernel_scan_filter(self, rows: Sequence[dict[str, Any]], predicate
                            ) -> tuple[list[dict[str, Any]], KernelSpec]:
        """Database-style parallel scan+filter."""
        kept = [row for row in rows if predicate(row)]
        row_bytes = max(1, len(rows[0])) * _VALUE_BYTES if rows else _VALUE_BYTES
        spec = KernelSpec(
            name="scan_filter",
            bytes_in=len(rows) * row_bytes,
            bytes_out=len(kept) * row_bytes,
            flops=len(rows),
            elements=len(rows),
        )
        return kept, spec
