"""Structural operator fingerprints: the keys runtime feedback is stored under.

A fingerprint identifies one operator by *what it computes* — its kind, its
engine binding, its canonical parameters and (recursively) its inputs'
fingerprints — and deliberately excludes everything that varies between
compiles of the same program: op ids, cardinality annotations and the
accelerator chosen by placement.  Two plans that contain the same subtree
therefore share observations, which is what lets a re-compile consume the
statistics the previous plan's execution recorded.

The *plan* fingerprint is the complement: a hash over the whole optimized
graph including accelerator placements, so the session layer can tell
whether re-optimizing with fed-back statistics actually changed the physical
plan (and only then drop the old plan's pinned scans).
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping

from repro.ir.graph import IRGraph
from repro.ir.nodes import Operator

#: Annotation key the graph fingerprinting pass writes per node.
FINGERPRINT_KEY = "fingerprint"


def _canonical(value: Any) -> str:
    """Deterministic string form of an operator parameter value.

    Mirrors :func:`repro.eide.program.canonical_value` (kept local so the IR
    layer does not import the EIDE): containers recurse, dictionaries sort by
    key, callables are identified by identity, and everything else falls back
    to its (deterministic dataclass) ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(v) for v in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(v) for v in value)) + "}"
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        return "{" + ",".join(f"{_canonical(k)}:{_canonical(v)}"
                              for k, v in items) + "}"
    if callable(value):
        module = getattr(value, "__module__", "?")
        qualname = getattr(value, "__qualname__", type(value).__name__)
        return f"<callable {module}.{qualname}@{id(value):x}>"
    return f"<{type(value).__name__}:{value!r}>"


def operator_fingerprint(node: Operator, input_fingerprints: list[str]) -> str:
    """Structural fingerprint of one operator given its inputs' fingerprints."""
    digest = hashlib.sha256()
    digest.update(f"{node.kind}@{node.engine or '<unbound>'}".encode())
    digest.update(b"\x00")
    digest.update(_canonical(node.params).encode())
    for fingerprint in input_fingerprints:
        digest.update(b"\x1f")
        digest.update(fingerprint.encode())
    return digest.hexdigest()


def fingerprint_graph(graph: IRGraph) -> dict[str, str]:
    """Fingerprint every node (bottom-up) and annotate it in place.

    Returns the ``op_id -> fingerprint`` map.  Called from
    :func:`~repro.compiler.annotate.annotate_graph` so the fingerprints always
    reflect the graph's *current* structural form; the last annotate of a
    compile (after absorption and fusion) therefore matches what the executor
    runs and records against.
    """
    fingerprints: dict[str, str] = {}
    for node in graph.topological_order():
        fingerprint = operator_fingerprint(
            node, [fingerprints[input_id] for input_id in node.inputs])
        fingerprints[node.op_id] = fingerprint
        node.annotations[FINGERPRINT_KEY] = fingerprint
    return fingerprints


def plan_fingerprint(graph: IRGraph) -> str:
    """Hash of the physical plan: structure plus accelerator placements.

    Cardinality annotations are excluded on purpose — estimates only matter
    through the decisions they drive (placement, join order, absorption),
    and those are all structural.  Re-optimization that produces the same
    plan fingerprint is a no-op the session can discard, keeping the old
    entry's pinned scans alive.
    """
    digest = hashlib.sha256()
    fingerprints: dict[str, str] = {}
    for node in graph.topological_order():
        fingerprint = node.annotations.get(FINGERPRINT_KEY)
        if not isinstance(fingerprint, str):
            fingerprint = operator_fingerprint(
                node, [fingerprints[input_id] for input_id in node.inputs])
        fingerprints[node.op_id] = fingerprint
        digest.update(fingerprint.encode())
        digest.update(b"\x00")
        digest.update((node.accelerator or "-").encode())
        digest.update(b"\x1e")
    for output_id in graph.outputs:
        digest.update(fingerprints.get(output_id, output_id).encode())
        digest.update(b"\x1f")
    return digest.hexdigest()


def baked_estimates(graph: IRGraph) -> dict[str, int]:
    """``fingerprint -> estimated_rows`` snapshot of a freshly compiled plan.

    The session stores this next to the cached plan; drift between these
    baked estimates and the runtime statistics is what marks a plan stale.
    """
    baked: dict[str, int] = {}
    for node in graph.nodes():
        fingerprint = node.annotations.get(FINGERPRINT_KEY)
        if isinstance(fingerprint, str):
            baked[fingerprint] = node.estimated_rows
    return baked


def node_fingerprint(node: Operator) -> str | None:
    """The annotated fingerprint of a compiled node, if present."""
    fingerprint = node.annotations.get(FINGERPRINT_KEY)
    return fingerprint if isinstance(fingerprint, str) else None


def graph_fingerprints(graph: IRGraph | Mapping[str, Operator]) -> dict[str, str]:
    """Annotated ``op_id -> fingerprint`` map of an already-compiled graph."""
    nodes = graph.nodes() if isinstance(graph, IRGraph) else graph.values()
    result: dict[str, str] = {}
    for node in nodes:
        fingerprint = node.annotations.get(FINGERPRINT_KEY)
        if isinstance(fingerprint, str):
            result[node.op_id] = fingerprint
    return result
