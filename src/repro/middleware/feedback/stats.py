"""The runtime statistics store the adaptive feedback loop revolves around.

One :class:`RuntimeStats` instance lives on each
:class:`~repro.core.system.PolystorePlusPlus` deployment.  The executor
records every non-cached operator's charged time, output cardinality and
input cardinality against the operator's structural fingerprint; the
scatter-gather path additionally records per-shard subtask times so the
dispatcher can adapt its fan-out strategy.  All observations are smoothed
with an exponentially weighted moving average (EWMA), so a single outlier
run cannot whipsaw the optimizer, and all methods are thread-safe — sessions
execute concurrently against one store.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace


def _ewma(current: float | None, sample: float, smoothing: float) -> float:
    """Blend ``sample`` into ``current`` (first sample taken verbatim)."""
    if current is None:
        return sample
    return (1.0 - smoothing) * current + smoothing * sample


def drift_ratio(estimated: float, observed: float) -> float:
    """How far apart an estimate and an observation are, as a >=1 ratio."""
    lo, hi = sorted((max(1.0, estimated), max(1.0, observed)))
    return hi / lo


@dataclass
class ObservedOperator:
    """EWMA-smoothed observations for one operator fingerprint."""

    fingerprint: str
    kind: str
    rows_out: float = 0.0
    rows_in: float = 0.0
    samples: int = 0
    #: Charged seconds per execution target (engine or accelerator name).
    times_s: dict[str, float] = field(default_factory=dict)

    @property
    def selectivity(self) -> float | None:
        """Observed output/input row ratio (``None`` for leaf operators)."""
        if self.rows_in <= 0:
            return None
        return self.rows_out / self.rows_in

    def time_for(self, target: str | None) -> float | None:
        """Observed charged seconds on ``target``, or ``None``."""
        if target is None:
            return None
        return self.times_s.get(target)


class RuntimeStats:
    """Thread-safe per-operator runtime statistics with EWMA smoothing."""

    #: Mean observed shard subtask time below which concurrent fan-out costs
    #: more in thread dispatch than it saves; the scatter path goes serial.
    SERIAL_FANOUT_THRESHOLD_S = 2e-4

    def __init__(self, smoothing: float = 0.5, *,
                 min_actionable_rows: int = 512,
                 max_operators: int = 4096) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.smoothing = smoothing
        #: Observed cardinality below which feedback never steers decisions
        #: (plan shapes over a few hundred rows are noise, not signal).
        self.min_actionable_rows = min_actionable_rows
        #: Retention bound: a long-lived deployment serving ad-hoc programs
        #: must not accumulate observations forever, so the least-recently
        #: touched operator entries are evicted past this cap.
        self.max_operators = max(1, max_operators)
        self._lock = threading.Lock()
        self._operators: "OrderedDict[str, ObservedOperator]" = OrderedDict()
        #: (engine, kind) -> EWMA of the mean per-shard subtask time.
        self._shard_times: "OrderedDict[tuple[str, str], float]" = OrderedDict()
        self._evicted = 0
        self._recorded = 0

    # -- population (executor / scatter-gather) ----------------------------------------

    def record(self, fingerprint: str, *, kind: str, target: str | None,
               time_s: float, rows_out: int, rows_in: int = 0) -> None:
        """Fold one operator execution into the store."""
        with self._lock:
            entry = self._operators.get(fingerprint)
            if entry is None:
                entry = ObservedOperator(fingerprint=fingerprint, kind=kind)
                self._operators[fingerprint] = entry
            alpha = self.smoothing
            entry.rows_out = _ewma(entry.rows_out if entry.samples else None,
                                   float(max(0, rows_out)), alpha)
            entry.rows_in = _ewma(entry.rows_in if entry.samples else None,
                                  float(max(0, rows_in)), alpha)
            if target is not None and time_s >= 0.0:
                entry.times_s[target] = _ewma(entry.times_s.get(target),
                                              float(time_s), alpha)
            entry.samples += 1
            self._recorded += 1
            self._operators.move_to_end(fingerprint)
            while len(self._operators) > self.max_operators:
                self._operators.popitem(last=False)
                self._evicted += 1

    def record_shard_times(self, engine: str, kind: str,
                           times_s: list[float]) -> None:
        """Fold one scatter fan-out's per-shard subtask times into the store."""
        if not times_s:
            return
        sample = sum(times_s) / len(times_s)
        key = (engine, kind)
        with self._lock:
            self._shard_times[key] = _ewma(self._shard_times.get(key), sample,
                                           self.smoothing)
            self._shard_times.move_to_end(key)
            while len(self._shard_times) > self.max_operators:
                self._shard_times.popitem(last=False)

    # -- consumption (annotate / placement / cost model / scatter) ---------------------

    def observed(self, fingerprint: str | None) -> ObservedOperator | None:
        """A snapshot of the observations for ``fingerprint``, or ``None``."""
        if fingerprint is None:
            return None
        with self._lock:
            entry = self._operators.get(fingerprint)
            if entry is None or entry.samples == 0:
                return None
            return replace(entry, times_s=dict(entry.times_s))

    def observed_rows(self, fingerprint: str | None) -> int | None:
        """Observed (smoothed) output cardinality, or ``None``."""
        entry = self.observed(fingerprint)
        if entry is None:
            return None
        return max(1, round(entry.rows_out))

    def actionable_rows(self, fingerprint: str | None) -> int | None:
        """Observed cardinality, suppressed below the actionable floor.

        Re-planning decisions (cardinality overrides, plan aging, placement
        host times) consult this instead of :meth:`observed_rows`: when the
        observed reality is tiny, any plan is cheap, and acting on the drift
        would only churn plans and destabilize otherwise-deterministic
        outputs.
        """
        rows = self.observed_rows(fingerprint)
        if rows is None or rows < self.min_actionable_rows:
            return None
        return rows

    def observed_time(self, fingerprint: str | None, target: str | None
                      ) -> float | None:
        """Observed charged seconds of ``fingerprint`` on ``target``."""
        entry = self.observed(fingerprint)
        if entry is None:
            return None
        return entry.time_for(target)

    def prefer_serial_fan_out(self, engine: str, kind: str) -> bool:
        """Whether shard subtasks of this kind are too small to thread-dispatch."""
        with self._lock:
            mean = self._shard_times.get((engine, kind))
        return mean is not None and mean < self.SERIAL_FANOUT_THRESHOLD_S

    # -- management --------------------------------------------------------------------

    def clear(self) -> None:
        """Forget every observation (tests and benchmarks)."""
        with self._lock:
            self._operators.clear()
            self._shard_times.clear()
            self._recorded = 0
            self._evicted = 0

    def stats(self) -> dict[str, int]:
        """Store counters for :meth:`PolystorePlusPlus.describe` and logs."""
        with self._lock:
            return {
                "operators": len(self._operators),
                "shard_keys": len(self._shard_times),
                "recorded": self._recorded,
                "evicted": self._evicted,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._operators)
