"""Runtime statistics feedback: observe executions, re-optimize plans.

The compiler, offload planner and shard router all start from *a-priori*
cost estimates (catalog row counts, predicate selectivity guesses, roofline
host models).  The executor already measures what actually happened — this
package closes the loop:

* :mod:`~repro.middleware.feedback.fingerprint` gives every IR operator a
  stable structural identity that survives recompilation, so observations
  from one plan inform the next compile of the same (sub)program.
* :mod:`~repro.middleware.feedback.stats` is the thread-safe, EWMA-smoothed
  store of per-operator observed time / cardinality / selectivity the
  executor and scatter-gather path populate on every run.

Consumers: :func:`~repro.compiler.annotate.annotate_graph` prefers observed
cardinalities over the analytical model, accelerator placement feeds the
measured host time into :meth:`~repro.accelerators.simulator.OffloadPlanner.
decide`, the :class:`~repro.middleware.optimizer.CostModel` scales observed
operator times, and the session layer uses drifted estimates to age cached
plans (see :mod:`repro.client.cache`).
"""

from repro.middleware.feedback.fingerprint import (
    baked_estimates,
    fingerprint_graph,
    operator_fingerprint,
    plan_fingerprint,
)
from repro.middleware.feedback.stats import ObservedOperator, RuntimeStats, drift_ratio

__all__ = [
    "RuntimeStats",
    "ObservedOperator",
    "drift_ratio",
    "operator_fingerprint",
    "fingerprint_graph",
    "plan_fingerprint",
    "baked_estimates",
]
