"""Polystore++ middleware: adapters, data migration, executor and optimizer."""

from repro.middleware.adapters import Adapter, adapter_for
from repro.middleware.executor import ExecutionReport, Executor, TaskRecord
from repro.middleware.feedback import ObservedOperator, RuntimeStats
from repro.middleware.migration import DataMigrator, MigrationReport, SimulatedNetwork
from repro.middleware.optimizer import ActiveLearningOptimizer, CostModel, DesignSpace

__all__ = [
    "Adapter",
    "adapter_for",
    "Executor",
    "ExecutionReport",
    "TaskRecord",
    "RuntimeStats",
    "ObservedOperator",
    "DataMigrator",
    "MigrationReport",
    "SimulatedNetwork",
    "CostModel",
    "DesignSpace",
    "ActiveLearningOptimizer",
]
