"""Design spaces for the Polystore++ optimizer.

Paper §IV-C formalizes optimization as black-box search over a design space
``X`` of heterogeneous computing-unit configurations and accelerator design
parameters.  The space mixes categorical variables (which engine, which
device), ordinal variables (memory sizes, batch sizes) and continuous ones;
derivatives are unavailable by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from repro.exceptions import OptimizationError


@dataclass(frozen=True)
class Parameter:
    """One dimension of the design space.

    Attributes:
        name: Parameter name.
        kind: ``"categorical"``, ``"ordinal"`` or ``"continuous"``.
        values: Allowed values (categorical/ordinal) in order.
        low, high: Bounds for continuous parameters.
    """

    name: str
    kind: str
    values: tuple[Any, ...] = ()
    low: float = 0.0
    high: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("categorical", "ordinal", "continuous"):
            raise OptimizationError(f"unknown parameter kind {self.kind!r}")
        if self.kind in ("categorical", "ordinal") and not self.values:
            raise OptimizationError(f"parameter {self.name!r} needs explicit values")
        if self.kind == "continuous" and self.high <= self.low:
            raise OptimizationError(f"parameter {self.name!r} has an empty range")

    def sample(self, rng: np.random.Generator) -> Any:
        """Draw one random value."""
        if self.kind == "continuous":
            return float(rng.uniform(self.low, self.high))
        return self.values[int(rng.integers(len(self.values)))]

    def encode(self, value: Any) -> float:
        """Map a value to a numeric feature for the surrogate model."""
        if self.kind == "continuous":
            return float(value)
        try:
            return float(self.values.index(value))
        except ValueError as exc:
            raise OptimizationError(
                f"value {value!r} is not valid for parameter {self.name!r}"
            ) from exc


class DesignSpace:
    """A named collection of parameters with sampling and encoding helpers."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        if not parameters:
            raise OptimizationError("design space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(names) != len(set(names)):
            raise OptimizationError("duplicate parameter names in design space")
        self.parameters = tuple(parameters)

    @classmethod
    def polystore_default(cls, engine_names: Sequence[str],
                          accelerator_names: Sequence[str]) -> "DesignSpace":
        """The configuration space a Polystore++ deployment exposes."""
        accelerators = tuple(accelerator_names) + ("none",)
        return cls([
            Parameter("join_engine", "categorical", tuple(engine_names) or ("relational",)),
            Parameter("sort_target", "categorical", accelerators),
            Parameter("ml_target", "categorical", accelerators),
            Parameter("migration_strategy", "categorical",
                      ("csv", "binary_pipe", "rdma", "accelerated")),
            Parameter("batch_size", "ordinal", (16, 32, 64, 128, 256, 512)),
            Parameter("host_cores", "ordinal", (1, 2, 4, 8)),
        ])

    # -- sampling ------------------------------------------------------------------------

    def sample(self, rng: np.random.Generator) -> dict[str, Any]:
        """Draw one random configuration."""
        return {p.name: p.sample(rng) for p in self.parameters}

    def sample_many(self, n: int, *, seed: int = 0) -> list[dict[str, Any]]:
        """Draw ``n`` random configurations."""
        rng = np.random.default_rng(seed)
        return [self.sample(rng) for _ in range(n)]

    def enumerate(self, *, max_points: int = 10_000) -> Iterator[dict[str, Any]]:
        """Exhaustively enumerate discrete spaces (continuous params use 5 steps)."""
        grids: list[list[Any]] = []
        for parameter in self.parameters:
            if parameter.kind == "continuous":
                grids.append(list(np.linspace(parameter.low, parameter.high, 5)))
            else:
                grids.append(list(parameter.values))
        total = 1
        for grid in grids:
            total *= len(grid)
        if total > max_points:
            raise OptimizationError(
                f"design space has {total} points, above the enumeration limit {max_points}"
            )
        indexes = [0] * len(grids)
        while True:
            yield {p.name: grids[i][indexes[i]] for i, p in enumerate(self.parameters)}
            for position in range(len(grids) - 1, -1, -1):
                indexes[position] += 1
                if indexes[position] < len(grids[position]):
                    break
                indexes[position] = 0
            else:
                return

    # -- encoding -------------------------------------------------------------------------

    def encode(self, configuration: dict[str, Any]) -> np.ndarray:
        """Encode a configuration as a numeric feature vector."""
        return np.array([p.encode(configuration[p.name]) for p in self.parameters],
                        dtype=np.float64)

    def encode_many(self, configurations: Sequence[dict[str, Any]]) -> np.ndarray:
        """Encode several configurations as a matrix."""
        return np.array([self.encode(c) for c in configurations], dtype=np.float64)

    @property
    def size(self) -> int | None:
        """Number of points for fully discrete spaces, else ``None``."""
        total = 1
        for parameter in self.parameters:
            if parameter.kind == "continuous":
                return None
            total *= len(parameter.values)
        return total
