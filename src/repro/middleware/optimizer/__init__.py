"""Middleware optimizer: cost models, multi-objective search and active learning."""

from repro.middleware.optimizer.active_learning import (
    ActiveLearningOptimizer,
    DSEResult,
    compare_to_random,
)
from repro.middleware.optimizer.cost_model import CostEstimate, CostModel
from repro.middleware.optimizer.design_space import DesignSpace, Parameter
from repro.middleware.optimizer.multi_objective import (
    Evaluation,
    ParetoArchive,
    hypervolume_2d,
    is_pareto_efficient,
    pareto_front,
)
from repro.middleware.optimizer.random_forest import RandomForestRegressor, RegressionTree

__all__ = [
    "CostModel",
    "CostEstimate",
    "DesignSpace",
    "Parameter",
    "Evaluation",
    "ParetoArchive",
    "pareto_front",
    "is_pareto_efficient",
    "hypervolume_2d",
    "RandomForestRegressor",
    "RegressionTree",
    "ActiveLearningOptimizer",
    "DSEResult",
    "compare_to_random",
]
