"""Multi-objective utilities: Pareto fronts and hypervolume.

The Polystore++ optimizer trades at least two objectives (execution time and
energy/power); its output is a Pareto front, "a generalized notion of
optimality" (paper Figure 8).  All objectives are minimized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.exceptions import OptimizationError


@dataclass(frozen=True)
class Evaluation:
    """One evaluated configuration with its objective values."""

    configuration: dict[str, Any]
    objectives: tuple[float, ...]

    def dominates(self, other: "Evaluation") -> bool:
        """Whether this point is at least as good everywhere and better somewhere."""
        if len(self.objectives) != len(other.objectives):
            raise OptimizationError("evaluations have different objective counts")
        at_least_as_good = all(a <= b for a, b in zip(self.objectives, other.objectives))
        strictly_better = any(a < b for a, b in zip(self.objectives, other.objectives))
        return at_least_as_good and strictly_better


def pareto_front(evaluations: Sequence[Evaluation]) -> list[Evaluation]:
    """Non-dominated subset of ``evaluations`` (order preserved)."""
    front: list[Evaluation] = []
    for candidate in evaluations:
        if any(other.dominates(candidate) for other in evaluations if other is not candidate):
            continue
        front.append(candidate)
    return front


def is_pareto_efficient(points: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows of a ``(n, k)`` objective matrix."""
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    efficient = np.ones(n, dtype=bool)
    for i in range(n):
        if not efficient[i]:
            continue
        dominated = np.all(points <= points[i], axis=1) & np.any(points < points[i], axis=1)
        dominated[i] = False
        if dominated.any():
            efficient[i] = False
    return efficient


def hypervolume_2d(front: Sequence[tuple[float, float]],
                   reference: tuple[float, float]) -> float:
    """Hypervolume dominated by a 2-objective front w.r.t. ``reference``.

    Both objectives are minimized; points outside the reference box contribute
    nothing.  Used by the DSE benchmark to compare active learning against
    random sampling at equal budget.
    """
    if not front:
        return 0.0
    clipped = [(min(x, reference[0]), min(y, reference[1])) for x, y in front]
    ordered = sorted(set(clipped))
    volume = 0.0
    previous_y = reference[1]
    for x, y in ordered:
        if y >= previous_y:
            continue
        volume += (reference[0] - x) * (previous_y - y)
        previous_y = y
    return volume


@dataclass
class ParetoArchive:
    """Keeps the running non-dominated set as evaluations stream in."""

    evaluations: list[Evaluation] = field(default_factory=list)

    def add(self, evaluation: Evaluation) -> bool:
        """Add an evaluation; returns ``True`` when it joins the front."""
        if any(other.dominates(evaluation) for other in self.evaluations):
            self.evaluations.append(evaluation)
            return False
        self.evaluations.append(evaluation)
        return True

    @property
    def front(self) -> list[Evaluation]:
        """Current Pareto front."""
        return pareto_front(self.evaluations)

    def front_points(self) -> list[tuple[float, ...]]:
        """Objective tuples of the current front."""
        return [e.objectives for e in self.front]

    def best_scalarized(self, weights: Sequence[float]) -> Evaluation:
        """The evaluation minimizing a weighted sum of objectives."""
        if not self.evaluations:
            raise OptimizationError("archive is empty")
        return min(self.evaluations,
                   key=lambda e: sum(w * o for w, o in zip(weights, e.objectives)))

    def __len__(self) -> int:
        return len(self.evaluations)
