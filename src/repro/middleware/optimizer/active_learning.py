"""Active-learning design-space exploration (the paper's Figure 8 loop).

The algorithm follows §IV-C-1 and HyperMapper: draw random configurations,
evaluate them on the real (black-box) objective function, fit one
random-forest surrogate per objective, predict the Pareto front over a large
candidate pool, evaluate only the configurations predicted to be near the
front, retrain, and repeat.  A random-sampling explorer with the same
evaluation budget serves as the baseline the paper says active learning
beats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.exceptions import OptimizationError
from repro.middleware.optimizer.design_space import DesignSpace
from repro.middleware.optimizer.multi_objective import (
    Evaluation,
    ParetoArchive,
    hypervolume_2d,
    is_pareto_efficient,
    pareto_front,
)
from repro.middleware.optimizer.random_forest import RandomForestRegressor

ObjectiveFunction = Callable[[dict[str, Any]], Sequence[float]]


@dataclass
class DSEResult:
    """Outcome of one design-space exploration run."""

    evaluations: list[Evaluation] = field(default_factory=list)
    front: list[Evaluation] = field(default_factory=list)
    iterations: int = 0
    evaluation_budget: int = 0

    def front_points(self) -> list[tuple[float, ...]]:
        """Objective tuples on the Pareto front."""
        return [e.objectives for e in self.front]

    def hypervolume(self, reference: tuple[float, float]) -> float:
        """2-objective hypervolume of the front (larger is better)."""
        points = [(o[0], o[1]) for o in self.front_points()]
        return hypervolume_2d(points, reference)

    def best_scalarized(self, weights: Sequence[float]) -> Evaluation:
        """Evaluation minimizing a weighted sum of objectives."""
        if not self.evaluations:
            raise OptimizationError("no evaluations recorded")
        return min(self.evaluations,
                   key=lambda e: sum(w * o for w, o in zip(weights, e.objectives)))


class ActiveLearningOptimizer:
    """HyperMapper-style multi-objective optimizer over a design space."""

    def __init__(self, space: DesignSpace, objective_fn: ObjectiveFunction, *,
                 n_objectives: int = 2, initial_samples: int = 10,
                 samples_per_iteration: int = 5, candidate_pool: int = 200,
                 n_trees: int = 16, seed: int = 0) -> None:
        if initial_samples <= 1:
            raise OptimizationError("initial_samples must be at least 2")
        self.space = space
        self.objective_fn = objective_fn
        self.n_objectives = n_objectives
        self.initial_samples = initial_samples
        self.samples_per_iteration = samples_per_iteration
        self.candidate_pool = candidate_pool
        self.n_trees = n_trees
        self.seed = seed

    # -- public API --------------------------------------------------------------------

    def optimize(self, *, budget: int = 50) -> DSEResult:
        """Run the active-learning loop until ``budget`` evaluations are spent."""
        if budget < self.initial_samples:
            raise OptimizationError("budget must cover the initial random samples")
        rng = np.random.default_rng(self.seed)
        archive = ParetoArchive()
        seen: set[tuple] = set()

        for configuration in self.space.sample_many(self.initial_samples, seed=self.seed):
            self._evaluate_into(archive, configuration, seen)

        iterations = 0
        while len(archive) < budget:
            iterations += 1
            surrogates = self._fit_surrogates(archive)
            candidates = self.space.sample_many(
                self.candidate_pool, seed=self.seed + 1000 + iterations)
            selected = self._select_candidates(surrogates, candidates, seen, rng)
            if not selected:
                selected = [self.space.sample(rng)]
            for configuration in selected:
                if len(archive) >= budget:
                    break
                self._evaluate_into(archive, configuration, seen)

        return DSEResult(
            evaluations=list(archive.evaluations),
            front=archive.front,
            iterations=iterations,
            evaluation_budget=budget,
        )

    def random_search(self, *, budget: int = 50, seed: int | None = None) -> DSEResult:
        """Baseline: spend the same budget on uniform random sampling."""
        archive = ParetoArchive()
        seen: set[tuple] = set()
        for configuration in self.space.sample_many(budget, seed=self.seed if seed is None
                                                    else seed):
            self._evaluate_into(archive, configuration, seen)
        return DSEResult(
            evaluations=list(archive.evaluations),
            front=archive.front,
            iterations=0,
            evaluation_budget=budget,
        )

    # -- internals ------------------------------------------------------------------------

    def _evaluate_into(self, archive: ParetoArchive, configuration: dict[str, Any],
                       seen: set[tuple]) -> None:
        key = tuple(sorted((k, str(v)) for k, v in configuration.items()))
        seen.add(key)
        objectives = tuple(float(v) for v in self.objective_fn(configuration))
        if len(objectives) != self.n_objectives:
            raise OptimizationError(
                f"objective function returned {len(objectives)} values, "
                f"expected {self.n_objectives}"
            )
        archive.add(Evaluation(dict(configuration), objectives))

    def _fit_surrogates(self, archive: ParetoArchive) -> list[RandomForestRegressor]:
        x = self.space.encode_many([e.configuration for e in archive.evaluations])
        surrogates = []
        for objective_index in range(self.n_objectives):
            y = np.array([e.objectives[objective_index] for e in archive.evaluations])
            forest = RandomForestRegressor(n_trees=self.n_trees,
                                           seed=self.seed + objective_index)
            forest.fit(x, y)
            surrogates.append(forest)
        return surrogates

    def _select_candidates(self, surrogates: list[RandomForestRegressor],
                           candidates: list[dict[str, Any]], seen: set[tuple],
                           rng: np.random.Generator) -> list[dict[str, Any]]:
        fresh = []
        for configuration in candidates:
            key = tuple(sorted((k, str(v)) for k, v in configuration.items()))
            if key not in seen:
                fresh.append(configuration)
        if not fresh:
            return []
        encoded = self.space.encode_many(fresh)
        predicted = np.column_stack([s.predict(encoded) for s in surrogates])
        efficient = is_pareto_efficient(predicted)
        front_indexes = np.flatnonzero(efficient)
        # Exploit: predicted-front points; explore: a few uncertain points.
        exploit = list(front_indexes[:self.samples_per_iteration])
        remaining = max(0, self.samples_per_iteration - len(exploit))
        if remaining:
            uncertainty = np.sum(
                np.column_stack([s.predict_std(encoded) for s in surrogates]), axis=1)
            explore_order = np.argsort(-uncertainty)
            exploit_set = set(exploit)
            for index in explore_order:
                if len(exploit) >= self.samples_per_iteration:
                    break
                if int(index) not in exploit_set:
                    exploit.append(int(index))
                    exploit_set.add(int(index))
        rng.shuffle(exploit)
        return [fresh[int(i)] for i in exploit[:self.samples_per_iteration]]


def compare_to_random(space: DesignSpace, objective_fn: ObjectiveFunction, *,
                      budget: int = 50, reference: tuple[float, float],
                      seed: int = 0) -> dict[str, float]:
    """Convenience comparison used by experiment E6.

    Runs active learning and random search at the same budget and returns the
    hypervolume achieved by each (larger is better).
    """
    optimizer = ActiveLearningOptimizer(space, objective_fn, seed=seed)
    active = optimizer.optimize(budget=budget)
    random = optimizer.random_search(budget=budget, seed=seed + 1)
    return {
        "active_learning_hypervolume": active.hypervolume(reference),
        "random_hypervolume": random.hypervolume(reference),
        "active_front_size": float(len(active.front)),
        "random_front_size": float(len(random.front)),
    }
