"""Cost models for heterogeneous execution.

The middleware optimizer needs, for every operator, an estimate of execution
time on each candidate target (a CPU engine or an accelerator) plus the cost
of any data movement the placement implies (paper §IV-C: "minimizes the total
execution time of a program, while optimizing on number and size of data
movements and cost of operators' execution across data stores").

The per-engine constants are deliberately simple (seconds per row / per byte)
and can be recalibrated from measured :class:`OperationMetrics` — the
"exploitation of performance profiling of earlier executions" the paper
attributes to HyperMapper-style optimizers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.accelerators.kernels import WorkEstimate
from repro.accelerators.simulator import OffloadPlanner
from repro.ir.graph import IRGraph
from repro.ir.nodes import Operator
from repro.stores.base import OperationMetrics

if TYPE_CHECKING:  # runtime stats are duck-typed to keep the layering acyclic
    from repro.middleware.feedback import RuntimeStats

#: Default per-row processing cost (seconds) by operator kind on a CPU engine.
_DEFAULT_ROW_COSTS: dict[str, float] = {
    "scan": 2e-7,
    "index_seek": 5e-6,
    "filter": 1.5e-7,
    "project": 1e-7,
    "join": 6e-7,
    "aggregate": 4e-7,
    "sort": 8e-7,
    "limit": 1e-8,
    "top_k": 3e-7,
    "kv_get": 2e-6,
    "kv_range": 4e-7,
    "ts_range": 2e-7,
    "window_aggregate": 3e-7,
    "ts_summarize": 4e-7,
    "graph_match": 1e-6,
    "graph_nodes": 3e-7,
    "shortest_path": 2e-6,
    "neighborhood": 1e-6,
    "text_search": 2e-6,
    "keyword_features": 1.5e-6,
    "train": 5e-6,
    "predict": 8e-7,
    "kmeans": 3e-6,
    "feature_matrix": 2e-7,
    "matmul": 1e-6,
    "gemv": 4e-7,
    "python_udf": 5e-7,
    "union": 1e-7,
    "materialize": 1e-7,
}

#: Cost per migrated byte on the default network, by strategy.
_MIGRATION_BYTE_COSTS: dict[str, float] = {
    "csv": 4.0e-8,
    "binary_pipe": 1.2e-8,
    "rdma": 0.9e-9,
    "accelerated": 0.5e-9,
}


@dataclass
class CostEstimate:
    """Estimated cost of a single operator placement."""

    op_id: str
    kind: str
    target: str
    time_s: float
    bytes_moved: int = 0
    #: ``"model"`` for the analytical estimate, ``"observed"`` when runtime
    #: feedback supplied a measured operator time.
    source: str = "model"


@dataclass
class CostModel:
    """Estimates operator, migration and plan costs."""

    row_costs: dict[str, float] = field(default_factory=lambda: dict(_DEFAULT_ROW_COSTS))
    migration_byte_costs: dict[str, float] = field(
        default_factory=lambda: dict(_MIGRATION_BYTE_COSTS))
    fixed_overhead_s: float = 5e-5

    # -- operator costs ----------------------------------------------------------------

    def operator_cost(self, node: Operator,
                      stats: "RuntimeStats | None" = None) -> CostEstimate:
        """Estimated cost of ``node`` on its bound CPU engine.

        With ``stats``, a measured charged time for the same operator
        fingerprint on the same target takes precedence over the analytical
        per-row constants (scaled linearly to the current row estimate).
        """
        observed = self._observed_cost(node, stats)
        if observed is not None:
            return observed
        rows = max(1, node.estimated_rows)
        per_row = self.row_costs.get(node.kind, 5e-7)
        if node.kind == "sort":
            import math

            time_s = self.fixed_overhead_s + per_row * rows * max(1.0, math.log2(rows))
        elif node.kind == "migrate":
            strategy = str(node.params.get("strategy", "binary_pipe"))
            time_s = self.migration_cost(node.estimated_bytes, strategy)
        else:
            time_s = self.fixed_overhead_s + per_row * rows
        return CostEstimate(node.op_id, node.kind, node.engine or "cpu", time_s,
                            node.estimated_bytes)

    @staticmethod
    def _observed_cost(node: Operator,
                       stats: "RuntimeStats | None") -> CostEstimate | None:
        if stats is None:
            return None
        observed = stats.observed(node.annotations.get("fingerprint"))
        if observed is None:
            return None
        target = node.accelerator or node.engine
        time_s = observed.time_for(target)
        if time_s is None or time_s <= 0.0:
            # A zero observation (clock granularity on a trivial input) must
            # not model the operator as free at any scale — fall back.
            return None
        basis = max(observed.rows_in, observed.rows_out, 1.0)
        scaled = time_s * (max(1, node.estimated_rows) / basis)
        return CostEstimate(node.op_id, node.kind, target or "cpu", scaled,
                            node.estimated_bytes, source="observed")

    def accelerated_cost(self, node: Operator, planner: OffloadPlanner
                         ) -> CostEstimate | None:
        """Estimated cost of ``node`` on its best accelerator, if any."""
        from repro.compiler.passes.placement import _KIND_TO_OPERATOR, _work_estimate

        operator = _KIND_TO_OPERATOR.get(node.kind)
        if operator is None:
            return None
        # Build the same work estimate placement uses, but without graph context
        # when the node is detached; estimated annotations carry what we need.
        work = WorkEstimate(rows=max(1, node.estimated_rows),
                            row_bytes=max(8, node.estimated_bytes
                                          // max(1, node.estimated_rows)))
        best = planner.registry.best(operator, work)
        if best is None:
            return None
        accelerator, _, time_s = best
        return CostEstimate(node.op_id, node.kind, accelerator.profile.name, time_s,
                            node.estimated_bytes)

    # -- migration and plan costs ----------------------------------------------------------

    def migration_cost(self, payload_bytes: int, strategy: str = "binary_pipe") -> float:
        """Estimated migration time for a payload under a strategy."""
        per_byte = self.migration_byte_costs.get(strategy,
                                                 self.migration_byte_costs["binary_pipe"])
        return self.fixed_overhead_s + per_byte * max(0, payload_bytes)

    def plan_cost(self, graph: IRGraph, *, planner: OffloadPlanner | None = None,
                  stats: "RuntimeStats | None" = None) -> float:
        """Total estimated time of a plan, honouring accelerator placements.

        Observed operator times (``stats``) take precedence over both the
        analytical CPU constants and the device models.
        """
        total = 0.0
        for node in graph.nodes():
            observed = self._observed_cost(node, stats)
            if observed is not None:
                total += observed.time_s
                continue
            if node.accelerator and planner is not None:
                accelerated = self.accelerated_cost(node, planner)
                if accelerated is not None:
                    total += accelerated.time_s
                    continue
            total += self.operator_cost(node).time_s
        return total

    def plan_bytes_moved(self, graph: IRGraph) -> int:
        """Total bytes crossing engine boundaries (the migrate operators)."""
        return sum(node.estimated_bytes for node in graph.nodes_of_kind("migrate"))

    # -- calibration --------------------------------------------------------------------------

    def calibrate(self, metrics: list[OperationMetrics], *,
                  smoothing: float = 0.5) -> int:
        """Update per-row costs from measured engine metrics.

        Each metric record with a non-zero row count contributes an observed
        seconds-per-row; the model blends it into the current constant with
        exponential smoothing.  Returns the number of kinds updated.
        """
        observed: dict[str, list[float]] = {}
        kind_by_operation = {
            "scan": "scan", "index_seek": "index_seek", "range_seek": "index_seek",
            "execute_plan": "scan", "window_aggregate": "window_aggregate",
            "range_scan": "ts_range", "pattern_match": "graph_match",
            "shortest_path": "shortest_path", "tfidf_search": "text_search",
            "train_classifier": "train", "predict": "predict", "kmeans": "kmeans",
            "get": "kv_get",
        }
        for record in metrics:
            kind = kind_by_operation.get(record.operation)
            if kind is None:
                continue
            rows = max(record.rows_in, record.rows_out)
            if rows <= 0 or record.wall_time_s <= 0:
                continue
            observed.setdefault(kind, []).append(record.wall_time_s / rows)
        for kind, samples in observed.items():
            sample = sum(samples) / len(samples)
            current = self.row_costs.get(kind, sample)
            self.row_costs[kind] = (1 - smoothing) * current + smoothing * sample
        return len(observed)
