"""A small random-forest regressor used as the DSE surrogate model.

The paper's active-learning loop (§IV-C-1) uses "randomized decision forests
as the base predictors".  scikit-learn is not a dependency of this repo, so a
compact regression forest is implemented here: CART-style trees with variance
reduction splits, bootstrap sampling and feature subsampling per split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import OptimizationError


@dataclass
class _Node:
    """One node of a regression tree."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """A CART regression tree with variance-reduction splits."""

    def __init__(self, *, max_depth: int = 8, min_samples_leaf: int = 2,
                 max_features: int | None = None, seed: int = 0) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(seed)
        self._root: _Node | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        """Fit the tree on features ``x`` and targets ``y``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if x.ndim != 2 or len(x) != len(y) or len(y) == 0:
            raise OptimizationError("invalid training data for regression tree")
        self._root = self._build(x, y, depth=0)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict targets for rows of ``x``."""
        if self._root is None:
            raise OptimizationError("tree is not fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        return np.array([self._predict_row(row) for row in x])

    # -- internals ---------------------------------------------------------------------

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf or np.ptp(y) == 0:
            return node
        n_features = x.shape[1]
        k = self.max_features or max(1, int(np.sqrt(n_features)))
        candidate_features = self._rng.choice(n_features, size=min(k, n_features),
                                              replace=False)
        best = self._best_split(x, y, candidate_features)
        if best is None:
            return node
        feature, threshold = best
        mask = x[:, feature] <= threshold
        node.feature = int(feature)
        node.threshold = float(threshold)
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, x: np.ndarray, y: np.ndarray,
                    features: np.ndarray) -> tuple[int, float] | None:
        parent_sse = float(((y - y.mean()) ** 2).sum())
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        for feature in features:
            values = np.unique(x[:, feature])
            if len(values) < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            for threshold in thresholds:
                mask = x[:, feature] <= threshold
                left, right = y[mask], y[~mask]
                if len(left) < self.min_samples_leaf or len(right) < self.min_samples_leaf:
                    continue
                sse = float(((left - left.mean()) ** 2).sum()
                            + ((right - right.mean()) ** 2).sum())
                gain = parent_sse - sse
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float(threshold))
        return best

    def _predict_row(self, row: np.ndarray) -> float:
        node = self._root
        assert node is not None
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
            assert node is not None
        return node.prediction


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees."""

    def __init__(self, *, n_trees: int = 20, max_depth: int = 8,
                 min_samples_leaf: int = 2, seed: int = 0) -> None:
        if n_trees <= 0:
            raise OptimizationError("n_trees must be positive")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self._trees: list[RegressionTree] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit the forest on features ``x`` and targets ``y``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if len(x) != len(y) or len(y) == 0:
            raise OptimizationError("invalid training data for random forest")
        rng = np.random.default_rng(self.seed)
        self._trees = []
        n = len(y)
        for index in range(self.n_trees):
            sample = rng.integers(0, n, size=n)
            tree = RegressionTree(max_depth=self.max_depth,
                                  min_samples_leaf=self.min_samples_leaf,
                                  seed=self.seed + index)
            tree.fit(x[sample], y[sample])
            self._trees.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Mean prediction across trees."""
        if not self._trees:
            raise OptimizationError("forest is not fitted")
        predictions = np.stack([tree.predict(x) for tree in self._trees])
        return predictions.mean(axis=0)

    def predict_std(self, x: np.ndarray) -> np.ndarray:
        """Across-tree standard deviation (a cheap uncertainty proxy)."""
        if not self._trees:
            raise OptimizationError("forest is not fitted")
        predictions = np.stack([tree.predict(x) for tree in self._trees])
        return predictions.std(axis=0)

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return bool(self._trees)
