"""The executor: schedules an optimized IR graph across engines and accelerators.

Responsibilities (paper §III, "Executor: manage and monitor execution across
platforms"):

* topological stage scheduling of the IR graph,
* concurrent dispatch of independent operators within a stage when every
  involved engine declares itself thread-safe
  (:class:`~repro.stores.base.Concurrency`), serial fallback otherwise,
* dispatching each operator to its engine's adapter,
* routing operators the placement pass bound to an accelerator through the
  device's functional kernel (and charging its simulated time),
* invoking the data migrator for ``migrate`` operators,
* serving operators from a prepared program's pinned scan snapshot (the
  ``result_cache``) and recording replays in the report,
* collecting the per-operator cost records into an
  :class:`~repro.middleware.executor.report.ExecutionReport`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Protocol

from repro.cancellation import CancellationToken
from repro.catalog import Catalog
from repro.cluster.scatter import ScatterGather, ShardedValue, gather
from repro.cluster.sharded import ShardedEngine
from repro.datamodel.table import Table
from repro.exceptions import CatalogError, ExecutionError
from repro.ir.graph import IRGraph
from repro.ir.nodes import Operator
from repro.middleware.adapters import Adapter, adapter_for
from repro.middleware.executor.report import ExecutionReport, TaskRecord
from repro.middleware.feedback.stats import RuntimeStats
from repro.middleware.migration import DataMigrator
from repro.obs import Observability
from repro.stores.base import Concurrency
from repro.stores.relational.expressions import Expression


class ResultCache(Protocol):
    """What the executor needs from a prepared program's scan snapshot."""

    def begin_run(self, catalog: Catalog) -> None:
        """Validate pinned entries against current engine data versions."""

    def lookup(self, op_id: str) -> tuple[Any, TaskRecord] | None:
        """The pinned ``(value, record)`` for ``op_id``, or ``None``."""

    def store(self, op_id: str, value: Any, record: TaskRecord) -> None:
        """Offer a freshly computed result for pinning (cache may decline)."""


class Executor:
    """Executes optimized IR graphs."""

    def __init__(self, catalog: Catalog, migrator: DataMigrator | None = None, *,
                 migration_strategy: str | None = None,
                 max_workers: int | None = 4,
                 runtime_stats: RuntimeStats | None = None,
                 views: Any | None = None,
                 obs: Observability | None = None,
                 cancellation: CancellationToken | None = None) -> None:
        self.catalog = catalog
        #: Cooperative cancellation token checked between stages, at operator
        #: starts and before shard-subtask dispatch (``None`` = never stop).
        self.cancellation = cancellation
        #: Observability hub spans and operator metrics report into; the
        #: shared inert hub when the deployment runs with obs disabled.
        self.obs = obs if obs is not None else Observability.disabled()
        self.migrator = migrator if migrator is not None else DataMigrator()
        self.migration_strategy = migration_strategy
        #: The deployment's view registry; ``view_read`` operators are served
        #: from it (policy-triggered refresh charges fold into the record).
        self.views = views
        #: Upper bound on intra-stage worker threads; ``None`` or <2 disables
        #: concurrent dispatch entirely.
        self.max_workers = max_workers
        #: Feedback store observed operator costs are recorded into after
        #: every run (``None`` disables recording entirely).
        self.runtime_stats = runtime_stats
        self._adapters: dict[str, Adapter] = {}
        self._scatter = ScatterGather(stats=runtime_stats, obs=self.obs,
                                      cancellation=cancellation)
        #: Engine-name -> ShardedEngine (or None) resolution cache; checked
        #: for every node, so the catalog lookup must not repeat per node.
        self._sharded_engines: dict[str, ShardedEngine | None] = {}
        #: Dedicated pool for shard fan-out; separate from the stage pool so
        #: a stage task scattering across shards can never deadlock on its
        #: own pool's slots.
        self._shard_pool: ThreadPoolExecutor | None = None
        self._shard_pool_lock = threading.Lock()

    # -- public API ---------------------------------------------------------------------

    def execute(self, graph: IRGraph, *, mode: str = "polystore++",
                result_cache: ResultCache | None = None
                ) -> tuple[dict[str, Any], ExecutionReport]:
        """Run ``graph`` and return ``(outputs, report)``.

        ``outputs`` maps each output node's fragment name (falling back to its
        op id) to its produced value.  When ``result_cache`` is given, pinned
        operator results are replayed instead of re-executed and fresh
        eligible results are offered back to the cache.
        """
        report = ExecutionReport(program=graph.name, mode=mode)
        run_start = time.perf_counter()
        if result_cache is not None:
            result_cache.begin_run(self.catalog)
        results: dict[str, Any] = {}
        pool: ThreadPoolExecutor | None = None
        tracer = self.obs.tracer
        try:
            with tracer.span("execute", "executor", program=graph.name,
                             mode=mode):
                for stage_index, stage in enumerate(graph.stages()):
                    if self.cancellation is not None:
                        self.cancellation.check()
                    with tracer.span(f"stage:{stage_index}", "executor",
                                     stage=stage_index, operators=len(stage)):
                        pool = self._execute_stage(stage, stage_index, results,
                                                   report, result_cache, pool)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
            if self._shard_pool is not None:
                self._shard_pool.shutdown(wait=True)
                self._shard_pool = None
        outputs: dict[str, Any] = {}
        for output_id in graph.outputs:
            node = graph.node(output_id)
            name = node.annotations.get("fragment") or output_id
            outputs[name] = gather(results[output_id])
        report.elapsed_wall_s = time.perf_counter() - run_start
        if self.runtime_stats is not None:
            self._record_feedback(graph, report)
        if self.obs.enabled:
            # Batched per kind: one lock acquisition per distinct operator
            # kind instead of two per record (this loop runs per request).
            by_kind: dict[str, list[float]] = {}
            for record in report.records:
                by_kind.setdefault(record.kind, []).append(
                    record.charged_time_s)
            for kind, charged in by_kind.items():
                self.obs.operators_total.inc(len(charged), kind=kind)
                self.obs.operator_seconds.observe_many(charged, kind=kind)
        return outputs, report

    def _record_feedback(self, graph: IRGraph, report: ExecutionReport) -> None:
        """Feed this run's measured operator costs back into the stats store.

        Snapshot replays are skipped — they carry the charged time of the run
        that produced them, not a fresh measurement.  Observations key on the
        structural fingerprint annotated at compile time, so a later
        re-compile of the same program finds them.
        """
        for record in report.records:
            if record.cached or record.op_id not in graph:
                continue
            node = graph.node(record.op_id)
            fingerprint = node.annotations.get("fingerprint")
            if not isinstance(fingerprint, str):
                continue
            self.runtime_stats.record(
                fingerprint,
                kind=record.kind,
                target=record.accelerator or record.engine,
                time_s=record.charged_time_s,
                rows_out=record.rows_out,
                rows_in=record.rows_in,
            )

    # -- stage dispatch -----------------------------------------------------------------

    def _execute_stage(self, stage: list[Operator], stage_index: int,
                       results: dict[str, Any], report: ExecutionReport,
                       result_cache: ResultCache | None,
                       pool: ThreadPoolExecutor | None) -> ThreadPoolExecutor | None:
        pending: list[Operator] = []
        for node in stage:
            pinned = result_cache.lookup(node.op_id) if result_cache is not None else None
            if pinned is not None:
                replay_start = time.perf_counter()
                value, record = pinned
                results[node.op_id] = value
                report.add(record.as_cached(
                    stage_index, time.perf_counter() - replay_start))
            else:
                pending.append(node)
        concurrent = [n for n in pending if self._concurrency_safe(n)]
        produced: dict[str, tuple[Any, TaskRecord]] = {}
        if len(concurrent) > 1 and (self.max_workers or 0) >= 2:
            concurrent_ids = {n.op_id for n in concurrent}
            serial = [n for n in pending if n.op_id not in concurrent_ids]
            for node in concurrent:
                # Warm the adapter and sharded-engine maps serially; the
                # dicts are not guarded against worker-thread insertion.
                self._adapter(str(node.engine))
                self._sharded_engine(str(node.engine))
            if pool is None:  # one pool per run, reused across stages
                pool = ThreadPoolExecutor(max_workers=self.max_workers)
            # Capture the dispatching thread's current span so operator
            # spans opened on pool workers parent under this stage.
            parent_span = self.obs.tracer.current()
            futures = {
                node.op_id: pool.submit(
                    self._execute_node_attached, parent_span, node,
                    [results[i] for i in node.inputs], stage_index)
                for node in concurrent
            }
            for node in concurrent:
                value, record = futures[node.op_id].result()
                record.concurrent = True
                produced[node.op_id] = (value, record)
        else:
            serial = pending
        for node in serial:
            inputs = [results[input_id] for input_id in node.inputs]
            produced[node.op_id] = self._execute_node(node, inputs, stage_index)
        for node in stage:
            if node.op_id not in produced:
                continue  # replayed from the snapshot above
            value, record = produced[node.op_id]
            results[node.op_id] = value
            report.add(record)
            if result_cache is not None:
                result_cache.store(node.op_id, value, record)
        return pool

    def _concurrency_safe(self, node: Operator) -> bool:
        """Whether the node may run on a worker thread alongside siblings."""
        if node.kind == "migrate" or node.accelerator or node.engine is None:
            return False
        try:
            engine = self.catalog.engine(node.engine)
        except CatalogError:
            return False
        return engine.concurrency is Concurrency.THREAD_SAFE

    # -- per-node execution --------------------------------------------------------------

    def _execute_node_attached(self, parent_span: Any, node: Operator,
                               inputs: list[Any], stage: int
                               ) -> tuple[Any, TaskRecord]:
        """Pool-worker entry: re-attach the dispatcher's span, then execute."""
        with self.obs.tracer.attach(parent_span):
            return self._execute_node(node, inputs, stage)

    def _execute_node(self, node: Operator, inputs: list[Any],
                      stage: int) -> tuple[Any, TaskRecord]:
        tracer = self.obs.tracer
        if tracer.current() is None:  # untraced (or obs off): skip the scope
            return self._run_node(node, inputs, stage)
        with tracer.span(f"op:{node.op_id}", "operator", kind=node.kind,
                         engine=node.engine, stage=stage) as span:
            value, record = self._run_node(node, inputs, stage)
            span.set(rows_out=record.rows_out, rows_in=record.rows_in,
                     charged_time_s=record.charged_time_s,
                     offloaded=record.offloaded)
        return value, record

    def _run_node(self, node: Operator, inputs: list[Any],
                  stage: int) -> tuple[Any, TaskRecord]:
        if self.cancellation is not None:
            self.cancellation.check()
        start = time.perf_counter()
        rows_in = sum(self._rows_of(value) for value in inputs) if inputs else 0
        if node.kind == "view_read":
            return self._execute_view_read(node, stage, start)
        scattered = self._try_scatter_gather(node, inputs)
        if scattered is not None:
            value, record = scattered
            record.stage = stage
            record.rows_in = rows_in
            record.wall_time_s = time.perf_counter() - start
            return value, record
        # Partitions only flow between operators the scatter path handles;
        # every other consumer sees the gathered (merged) value.
        inputs = [gather(value) for value in inputs]
        simulated_extra = 0.0
        offloaded = False
        details: dict[str, Any] = {}
        if node.kind == "migrate":
            value, simulated_extra, details = self._execute_migration(node, inputs)
        elif node.accelerator and node.kind in ("sort", "filter", "project",
                                                "window_aggregate"):
            value, simulated_extra, details = self._execute_offloaded(node, inputs)
            offloaded = True
        else:
            value = self._execute_on_engine(node, inputs)
            if node.accelerator and node.kind in ("train", "predict", "matmul", "gemv"):
                # The GEMM work ran functionally on the host ML engine; charge
                # the device's simulated time instead of the Python time.
                simulated_extra, details = self._charge_ml_offload(node)
                offloaded = True
        wall = time.perf_counter() - start
        simulated = simulated_extra if offloaded or node.kind == "migrate" else wall
        if node.kind == "migrate":
            simulated = simulated_extra
        record = TaskRecord(
            op_id=node.op_id,
            kind=node.kind,
            engine=node.engine,
            accelerator=node.accelerator if offloaded else None,
            stage=stage,
            wall_time_s=wall,
            simulated_time_s=simulated,
            rows_out=self._rows_of(value),
            rows_in=rows_in,
            offloaded=offloaded,
            details=details,
        )
        return value, record

    def _try_scatter_gather(self, node: Operator, inputs: list[Any]
                            ) -> tuple[Any, TaskRecord] | None:
        """Scatter-gather dispatch when the node targets a sharded engine.

        Returns ``None`` when the node is not scatter-gatherable (the caller
        falls back to the ordinary single-adapter path, which for sharded
        engines means the designated primary shard).  The record's charged
        time is the scatter's critical path: the slowest shard subtask plus
        the merge, modeling shards as independent machines.
        """
        if node.engine is None or node.accelerator or node.kind == "migrate":
            return None
        engine = self._sharded_engine(node.engine)
        if engine is None:
            return None
        execution = self._scatter.execute(engine, node, inputs,
                                          self._scatter_pool(engine))
        if execution is None:
            return None
        record = TaskRecord(
            op_id=node.op_id,
            kind=node.kind,
            engine=node.engine,
            accelerator=None,
            stage=0,
            wall_time_s=0.0,
            simulated_time_s=execution.critical_path_s,
            rows_out=self._rows_of(execution.value),
            details=execution.details,
        )
        return execution.value, record

    def _sharded_engine(self, name: str) -> ShardedEngine | None:
        if name not in self._sharded_engines:
            try:
                engine = self.catalog.engine(name)
            except CatalogError:
                engine = None
            self._sharded_engines[name] = (engine if isinstance(engine, ShardedEngine)
                                           else None)
        return self._sharded_engines[name]

    def _scatter_pool(self, engine: ShardedEngine) -> ThreadPoolExecutor | None:
        if engine.concurrency is not Concurrency.THREAD_SAFE:
            return None
        if (self.max_workers or 0) < 2:
            return None
        with self._shard_pool_lock:
            if self._shard_pool is None:
                self._shard_pool = ThreadPoolExecutor(max_workers=self.max_workers)
            return self._shard_pool

    def _execute_view_read(self, node: Operator, stage: int,
                           start: float) -> tuple[Any, TaskRecord]:
        """Serve a materialized-view read from the registry.

        The charged time is the wall cost of the read plus the charged time
        of any maintenance refresh the read triggered under the view's
        policy — a stale deferred view pays its (delta-sized) refresh here,
        where a plain program would have paid a full recompute.
        """
        if self.views is None:
            raise ExecutionError(
                f"operator {node.op_id} reads view {node.params.get('view')!r} "
                f"but the executor has no view registry"
            )
        value, refresh_charged, refresh_wall, details = self.views.serve(
            str(node.params["view"]))
        wall = time.perf_counter() - start
        # Substitute the refresh's *charged* cost for its measured wall
        # share — adding it on top would double-count the refresh, since the
        # wall around serve() already contains its execution.
        charged = max(0.0, wall - refresh_wall) + refresh_charged
        record = TaskRecord(
            op_id=node.op_id,
            kind=node.kind,
            engine=None,
            accelerator=None,
            stage=stage,
            wall_time_s=wall,
            simulated_time_s=charged,
            rows_out=self._rows_of(value),
            details={**details, "refresh_charged_s": refresh_charged},
        )
        return value, record

    def _execute_on_engine(self, node: Operator, inputs: list[Any]) -> Any:
        if node.engine is None:
            if node.kind == "python_udf":
                # Engine-less UDFs run in the middleware itself — the form
                # materialized-view delta programs take (their operators are
                # closures over maintained state, not engine calls).
                return node.params["fn"](*inputs)
            raise ExecutionError(f"operator {node.op_id} has no engine binding")
        adapter = self._adapter(node.engine)
        if not adapter.can_execute(node):
            raise ExecutionError(
                f"adapter for engine {node.engine!r} cannot execute {node.kind!r} "
                f"({node.op_id})"
            )
        return adapter.execute(node, inputs)

    def _execute_migration(self, node: Operator,
                           inputs: list[Any]) -> tuple[Any, float, dict[str, Any]]:
        if len(inputs) != 1:
            raise ExecutionError(f"migrate {node.op_id} expects exactly one input")
        payload = inputs[0]
        if not isinstance(payload, Table):
            # Non-tabular values (model handles, dictionaries) move by reference;
            # the middleware only charges real migration for tabular payloads.
            return payload, 0.0, {"skipped": True}
        strategy = node.params.get("strategy") or self.migration_strategy
        received, migration = self.migrator.migrate(
            payload,
            source=str(node.params.get("source_engine", "")),
            target=str(node.params.get("target_engine", "")),
            strategy=strategy,
        )
        details = {
            "strategy": migration.strategy,
            "payload_bytes": migration.payload_bytes,
            "transformation_s": migration.transformation_s,
        }
        return received, migration.total_s, details

    def _execute_offloaded(self, node: Operator,
                           inputs: list[Any]) -> tuple[Any, float, dict[str, Any]]:
        device = self.catalog.accelerator(str(node.accelerator))
        if len(inputs) != 1 or not isinstance(inputs[0], Table):
            # Fall back to the engine when the input shape does not fit the kernel.
            return self._execute_on_engine(node, inputs), 0.0, {"fallback": True}
        table: Table = inputs[0]
        rows = table.to_dicts()
        if node.kind == "sort" and device.supports("bitonic_sort"):
            by = str(node.params["by"])
            descending = bool(node.params.get("descending", False))
            sorted_rows, offload = device.offload(
                "bitonic_sort", rows,
                key=lambda r: (r.get(by) is None, r.get(by)), descending=descending)
            return self._rows_to_table(sorted_rows, table), offload.total_s, \
                {"kernel": offload.kernel}
        if node.kind == "filter" and device.supports("filter"):
            predicate = node.params.get("predicate")
            if isinstance(predicate, Expression):
                kept, offload = device.offload("filter", rows, predicate.evaluate)
                return self._rows_to_table(kept, table), offload.total_s, \
                    {"kernel": offload.kernel}
        if node.kind == "project" and device.supports("project"):
            columns = list(node.params.get("columns") or [])
            projected, offload = device.offload("project", rows, columns)
            return (Table.from_dicts(projected) if projected
                    else Table(table.schema.project(columns), [])), offload.total_s, \
                {"kernel": offload.kernel}
        if node.kind == "window_aggregate" and device.supports("window_aggregate"):
            engine_value = self._execute_on_engine(node, inputs)
            estimate = device.estimate(_window_spec_from_table(table))
            return engine_value, estimate.total_s, {"kernel": "window_aggregate"}
        return self._execute_on_engine(node, inputs), 0.0, {"fallback": True}

    def _charge_ml_offload(self, node: Operator) -> tuple[float, dict[str, Any]]:
        device = self.catalog.accelerator(str(node.accelerator))
        ml_engine = self.catalog.engine(str(node.engine))
        counter = getattr(getattr(ml_engine, "ops", None), "counter", None)
        flops = counter.flops if counter is not None else 0
        bytes_moved = counter.bytes_moved if counter is not None else 0
        from repro.accelerators.base import KernelSpec

        spec = KernelSpec(name="gemm", bytes_in=bytes_moved, bytes_out=0,
                          flops=flops, elements=max(1, flops // 2))
        estimate = device.estimate(spec)
        return estimate.total_s, {"kernel": "gemm", "flops": flops}

    # -- helpers --------------------------------------------------------------------------------

    def _adapter(self, engine_name: str) -> Adapter:
        if engine_name not in self._adapters:
            self._adapters[engine_name] = adapter_for(self.catalog.engine(engine_name))
        return self._adapters[engine_name]

    @staticmethod
    def _rows_to_table(rows: list[dict[str, Any]], template: Table) -> Table:
        return Table.from_dicts(rows) if rows else Table(template.schema, [])

    @staticmethod
    def _rows_of(value: Any) -> int:
        if isinstance(value, (Table, list, ShardedValue)):
            return len(value)
        # Z-set deltas report their total multiplicity as the row count.
        total = getattr(value, "total_weight", None)
        if isinstance(total, int):
            return total
        return 1


def _window_spec_from_table(table: Table):
    from repro.accelerators.base import KernelSpec

    return KernelSpec(name="window_aggregate", bytes_in=table.estimated_bytes(),
                      bytes_out=table.estimated_bytes() // 4, flops=2 * len(table),
                      elements=len(table), pipelineable=True)
