"""Executor: staged scheduling, offload routing and execution reports."""

from repro.middleware.executor.report import ExecutionReport, TaskRecord
from repro.middleware.executor.scheduler import Executor

__all__ = ["Executor", "ExecutionReport", "TaskRecord"]
