"""Execution reports: where the time went.

The executor records, per operator, the *measured* Python time and the
*simulated* device/network time (offloads, migrations).  Two totals are
derived: the sequential total (every operator back to back) and the
pipelined total (stages overlap: each stage costs its slowest operator),
which is the execution model the paper's executor targets ("the whole
workload execution can be perceived as a pipeline of the stages' execution").
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any


@dataclass
class TaskRecord:
    """Cost record for one executed operator."""

    op_id: str
    kind: str
    engine: str | None
    accelerator: str | None
    stage: int
    wall_time_s: float
    simulated_time_s: float
    rows_out: int = 0
    #: Total rows across the operator's inputs (0 for leaf reads); together
    #: with ``rows_out`` this is the observed selectivity the runtime
    #: feedback store learns from.
    rows_in: int = 0
    offloaded: bool = False
    #: Served from a prepared program's pinned scan snapshot (no real work).
    cached: bool = False
    #: Dispatched concurrently with other operators of the same stage.
    concurrent: bool = False
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def charged_time_s(self) -> float:
        """The time the scheduler charges this task (simulated when offloaded)."""
        return self.simulated_time_s

    def to_dict(self) -> dict[str, Any]:
        """Stable dictionary schema for exporters, benchmarks and logs.

        Field names and presence are a compatibility surface: the slow-query
        log, the benchmark ``--json`` emitter and external consumers all
        read this shape — add fields, never rename or drop them.
        """
        return {
            "op_id": self.op_id,
            "kind": self.kind,
            "engine": self.engine,
            "accelerator": self.accelerator,
            "stage": self.stage,
            "wall_time_s": self.wall_time_s,
            "charged_time_s": self.charged_time_s,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "offloaded": self.offloaded,
            "cached": self.cached,
            "concurrent": self.concurrent,
            "details": dict(self.details),
        }

    def as_cached(self, stage: int, wall_time_s: float) -> "TaskRecord":
        """A copy of this record representing a snapshot replay at ``stage``.

        The charged (simulated) time is carried over so mode comparisons stay
        meaningful, while the measured wall time reflects the near-zero cost
        of serving the pinned result.
        """
        return dataclasses.replace(
            self,
            stage=stage,
            wall_time_s=wall_time_s,
            cached=True,
            concurrent=False,
            details=dict(self.details),
        )


@dataclass
class ExecutionReport:
    """Aggregate report for one program execution."""

    program: str
    mode: str
    records: list[TaskRecord] = field(default_factory=list)
    migration_time_s: float = 0.0
    migration_bytes: int = 0
    #: Measured wall time of the whole run (captures stage-level overlap).
    elapsed_wall_s: float = 0.0
    #: Whether this run executed a plan that was re-compiled because observed
    #: cardinalities drifted past the estimates baked into the cached plan.
    reoptimized: bool = False

    def add(self, record: TaskRecord) -> None:
        """Append one task record."""
        self.records.append(record)

    # -- totals -------------------------------------------------------------------------

    @property
    def total_time_s(self) -> float:
        """Sequential execution time (sum over all operators)."""
        return sum(r.charged_time_s for r in self.records)

    @property
    def pipelined_time_s(self) -> float:
        """Pipelined execution time: per stage, the slowest operator binds."""
        stage_times: dict[int, float] = {}
        for record in self.records:
            stage_times[record.stage] = max(stage_times.get(record.stage, 0.0),
                                            record.charged_time_s)
        return sum(stage_times.values())

    @property
    def wall_time_s(self) -> float:
        """Measured Python time (excludes simulated device/network charges)."""
        return sum(r.wall_time_s for r in self.records)

    @property
    def offloaded_tasks(self) -> int:
        """Number of operators executed on an accelerator."""
        return sum(1 for r in self.records if r.offloaded)

    @property
    def cached_tasks(self) -> int:
        """Number of operators served from a pinned scan snapshot."""
        return sum(1 for r in self.records if r.cached)

    @property
    def concurrent_tasks(self) -> int:
        """Number of operators dispatched in parallel with stage siblings."""
        return sum(1 for r in self.records if r.concurrent)

    @property
    def observed_concurrency(self) -> float:
        """Ratio of summed per-operator wall time to elapsed wall time.

        Values above 1.0 mean independent operators genuinely overlapped;
        exactly 1.0 is fully serial execution.  This is the measured
        counterpart of the charged :attr:`pipelined_time_s` model.
        """
        if self.elapsed_wall_s <= 0.0:
            return 1.0
        return max(1.0, self.wall_time_s / self.elapsed_wall_s)

    def time_by_kind(self) -> dict[str, float]:
        """Charged time per operator kind (for breakdown plots)."""
        breakdown: dict[str, float] = {}
        for record in self.records:
            breakdown[record.kind] = breakdown.get(record.kind, 0.0) + record.charged_time_s
        return breakdown

    def time_by_engine(self) -> dict[str, float]:
        """Charged time per engine/accelerator target."""
        breakdown: dict[str, float] = {}
        for record in self.records:
            target = record.accelerator or record.engine or "middleware"
            breakdown[target] = breakdown.get(target, 0.0) + record.charged_time_s
        return breakdown

    def summary(self) -> dict[str, Any]:
        """Compact dictionary for logs, benchmarks and EXPERIMENTS.md."""
        return {
            "program": self.program,
            "mode": self.mode,
            "operators": len(self.records),
            "offloaded": self.offloaded_tasks,
            "cached": self.cached_tasks,
            "concurrent": self.concurrent_tasks,
            "reoptimized": self.reoptimized,
            "total_time_s": self.total_time_s,
            "pipelined_time_s": self.pipelined_time_s,
            "wall_time_s": self.wall_time_s,
            "elapsed_wall_s": self.elapsed_wall_s,
            "observed_concurrency": self.observed_concurrency,
            "migration_time_s": self.migration_time_s,
            "migration_bytes": self.migration_bytes,
        }

    def to_dict(self) -> dict[str, Any]:
        """Full stable-schema dictionary: the summary plus every record.

        The flat keys are exactly :meth:`summary`; ``records`` holds each
        task's :meth:`TaskRecord.to_dict`, and the two breakdowns mirror
        :meth:`time_by_kind` / :meth:`time_by_engine`.  This is the one
        serialization benchmarks and exporters share — hand-rolled report
        formatting belongs here, not at call sites.
        """
        return {
            **self.summary(),
            "time_by_kind": self.time_by_kind(),
            "time_by_engine": self.time_by_engine(),
            "records": [record.to_dict() for record in self.records],
        }
