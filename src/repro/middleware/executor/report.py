"""Execution reports: where the time went.

The executor records, per operator, the *measured* Python time and the
*simulated* device/network time (offloads, migrations).  Two totals are
derived: the sequential total (every operator back to back) and the
pipelined total (stages overlap: each stage costs its slowest operator),
which is the execution model the paper's executor targets ("the whole
workload execution can be perceived as a pipeline of the stages' execution").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class TaskRecord:
    """Cost record for one executed operator."""

    op_id: str
    kind: str
    engine: str | None
    accelerator: str | None
    stage: int
    wall_time_s: float
    simulated_time_s: float
    rows_out: int = 0
    offloaded: bool = False
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def charged_time_s(self) -> float:
        """The time the scheduler charges this task (simulated when offloaded)."""
        return self.simulated_time_s


@dataclass
class ExecutionReport:
    """Aggregate report for one program execution."""

    program: str
    mode: str
    records: list[TaskRecord] = field(default_factory=list)
    migration_time_s: float = 0.0
    migration_bytes: int = 0

    def add(self, record: TaskRecord) -> None:
        """Append one task record."""
        self.records.append(record)

    # -- totals -------------------------------------------------------------------------

    @property
    def total_time_s(self) -> float:
        """Sequential execution time (sum over all operators)."""
        return sum(r.charged_time_s for r in self.records)

    @property
    def pipelined_time_s(self) -> float:
        """Pipelined execution time: per stage, the slowest operator binds."""
        stage_times: dict[int, float] = {}
        for record in self.records:
            stage_times[record.stage] = max(stage_times.get(record.stage, 0.0),
                                            record.charged_time_s)
        return sum(stage_times.values())

    @property
    def wall_time_s(self) -> float:
        """Measured Python time (excludes simulated device/network charges)."""
        return sum(r.wall_time_s for r in self.records)

    @property
    def offloaded_tasks(self) -> int:
        """Number of operators executed on an accelerator."""
        return sum(1 for r in self.records if r.offloaded)

    def time_by_kind(self) -> dict[str, float]:
        """Charged time per operator kind (for breakdown plots)."""
        breakdown: dict[str, float] = {}
        for record in self.records:
            breakdown[record.kind] = breakdown.get(record.kind, 0.0) + record.charged_time_s
        return breakdown

    def time_by_engine(self) -> dict[str, float]:
        """Charged time per engine/accelerator target."""
        breakdown: dict[str, float] = {}
        for record in self.records:
            target = record.accelerator or record.engine or "middleware"
            breakdown[target] = breakdown.get(target, 0.0) + record.charged_time_s
        return breakdown

    def summary(self) -> dict[str, Any]:
        """Compact dictionary for logs, benchmarks and EXPERIMENTS.md."""
        return {
            "program": self.program,
            "mode": self.mode,
            "operators": len(self.records),
            "offloaded": self.offloaded_tasks,
            "total_time_s": self.total_time_s,
            "pipelined_time_s": self.pipelined_time_s,
            "migration_time_s": self.migration_time_s,
            "migration_bytes": self.migration_bytes,
        }
