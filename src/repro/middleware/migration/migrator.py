"""The Data Migrator: moving tables between engines.

Implements the paper's §III-A-3 comparison:

* ``csv`` — the naive path: format every value as text, ship the text file,
  parse every value back (two full transformations of the data).
* ``binary_pipe`` — the Pipegen-style path: a compact binary encoding
  streamed over a network pipe, skipping the textual round trip.
* ``rdma`` — binary encoding over an RDMA transfer that bypasses most of the
  protocol-stack overhead.
* ``accelerated`` — serialization/deserialization offloaded to a
  bump-in-the-wire device (FPGA or migration ASIC) and pipelined with the
  RDMA transfer, the full Polystore++ proposal.

Serialization cost for the software paths is *measured* (the Python work is
really done); transfer cost and accelerator cost are *simulated* from the
network link and device profiles.  The report keeps the two separate so
benchmarks can show where the time goes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.accelerators.base import Accelerator
from repro.datamodel.serialization import BinarySerializer, CsvSerializer
from repro.datamodel.table import Table
from repro.exceptions import MigrationError
from repro.middleware.migration.network import SimulatedNetwork

#: Migration strategies in increasing order of sophistication.
STRATEGIES = ("csv", "binary_pipe", "rdma", "accelerated")

#: Modeled per-value transformation cost (seconds) on the host CPU.
#:
#: The Python serializers in this repo are not representative of an optimized
#: C++ engine (the csv module is C-accelerated while the binary packer is pure
#: Python), so migration *cost* uses these calibrated constants — text
#: formatting/parsing is several times more expensive per value than a binary
#: copy, which is exactly the Pipegen observation the paper cites.  The
#: measured Python wall times are still reported in ``details``.
_PER_VALUE_COST_S = {
    "csv": 150e-9,
    "binary_pipe": 25e-9,
    "rdma": 25e-9,
}
#: Modeled per-byte memory-copy cost while (de)serializing.
_PER_BYTE_COST_S = 0.1e-9


@dataclass
class MigrationReport:
    """Cost breakdown of one table migration."""

    strategy: str
    rows: int
    payload_bytes: int
    serialize_s: float
    transfer_s: float
    deserialize_s: float
    total_s: float
    serialization_offloaded: bool = False
    details: dict[str, float] = field(default_factory=dict)

    @property
    def transformation_s(self) -> float:
        """Time spent transforming data formats (the paper's dominant cost)."""
        return self.serialize_s + self.deserialize_s


class DataMigrator:
    """Moves :class:`Table` payloads between engines under a chosen strategy."""

    def __init__(self, network: SimulatedNetwork | None = None, *,
                 serializer_accelerator: Accelerator | None = None,
                 default_strategy: str = "binary_pipe") -> None:
        if default_strategy not in STRATEGIES:
            raise MigrationError(f"unknown migration strategy {default_strategy!r}")
        self.network = network if network is not None else SimulatedNetwork()
        self.serializer_accelerator = serializer_accelerator
        self.default_strategy = default_strategy
        self.reports: list[MigrationReport] = []

    def migrate(self, table: Table, *, source: str = "", target: str = "",
                strategy: str | None = None) -> tuple[Table, MigrationReport]:
        """Move ``table`` from ``source`` to ``target`` under ``strategy``.

        Returns the table as received at the destination plus the cost report.
        """
        chosen = strategy or self.default_strategy
        if chosen not in STRATEGIES:
            raise MigrationError(f"unknown migration strategy {chosen!r}")
        if chosen == "csv":
            report, received = self._software_path(table, CsvSerializer(), "csv", rdma=False)
        elif chosen == "binary_pipe":
            report, received = self._software_path(table, BinarySerializer(), "binary_pipe",
                                                   rdma=False)
        elif chosen == "rdma":
            report, received = self._software_path(table, BinarySerializer(), "rdma",
                                                   rdma=True)
        else:
            report, received = self._accelerated_path(table)
        report.details["source"] = source
        report.details["target"] = target
        self.reports.append(report)
        return received, report

    # -- software paths --------------------------------------------------------------

    def _software_path(self, table: Table, serializer, strategy: str, *,
                       rdma: bool) -> tuple[MigrationReport, Table]:
        start = time.perf_counter()
        payload, serialize_report = serializer.serialize(table)
        measured_serialize_s = time.perf_counter() - start

        transfer = self.network.transfer(len(payload), rdma=rdma)

        start = time.perf_counter()
        received, deserialize_report = serializer.deserialize(payload, table.schema)
        measured_deserialize_s = time.perf_counter() - start

        per_value = _PER_VALUE_COST_S[strategy]
        serialize_s = (per_value * serialize_report.value_conversions
                       + _PER_BYTE_COST_S * len(payload))
        deserialize_s = (per_value * deserialize_report.value_conversions
                         + _PER_BYTE_COST_S * len(payload))
        report = MigrationReport(
            strategy=strategy,
            rows=len(table),
            payload_bytes=len(payload),
            serialize_s=serialize_s,
            transfer_s=transfer.total_s,
            deserialize_s=deserialize_s,
            total_s=serialize_s + transfer.total_s + deserialize_s,
            details={
                "measured_serialize_s": measured_serialize_s,
                "measured_deserialize_s": measured_deserialize_s,
            },
        )
        return report, received

    # -- accelerated path ---------------------------------------------------------------

    def _accelerated_path(self, table: Table) -> tuple[MigrationReport, Table]:
        if self.serializer_accelerator is None:
            raise MigrationError(
                "accelerated migration requires a serializer accelerator "
                "(FPGA or migration ASIC) to be attached"
            )
        device = self.serializer_accelerator
        payload, serialize_report = device.offload("serialize", table)
        transfer = self.network.transfer(len(payload), rdma=True)
        if device.supports("deserialize"):
            received, deserialize_report = device.offload("deserialize", payload, table.schema)
            deserialize_s = deserialize_report.total_s
        else:
            # The FPGA only offloads the send side; the destination parses in software.
            start = time.perf_counter()
            received, _ = BinarySerializer().deserialize(payload, table.schema)
            deserialize_s = time.perf_counter() - start
        # Serialization streams into the transfer, so the two overlap.
        pipelined = max(serialize_report.total_s, transfer.total_s)
        report = MigrationReport(
            strategy="accelerated",
            rows=len(table),
            payload_bytes=len(payload),
            serialize_s=serialize_report.total_s,
            transfer_s=transfer.total_s,
            deserialize_s=deserialize_s,
            total_s=pipelined + deserialize_s,
            serialization_offloaded=True,
            details={"pipelined_s": pipelined},
        )
        return report, received

    # -- bookkeeping -------------------------------------------------------------------------

    def total_migrated_bytes(self) -> int:
        """Total payload bytes moved so far."""
        return sum(r.payload_bytes for r in self.reports)

    def total_time_s(self) -> float:
        """Total migration time (measured + simulated) so far."""
        return sum(r.total_s for r in self.reports)

    def compare_strategies(self, table: Table) -> dict[str, MigrationReport]:
        """Run every strategy on ``table`` and return the reports keyed by name.

        Strategies that cannot run (no accelerator attached) are skipped.
        """
        results: dict[str, MigrationReport] = {}
        for strategy in STRATEGIES:
            if strategy == "accelerated" and self.serializer_accelerator is None:
                continue
            _, report = self.migrate(table, strategy=strategy)
            results[strategy] = report
        return results
