"""Data migration between engines: strategies, simulated network, reports."""

from repro.middleware.migration.migrator import STRATEGIES, DataMigrator, MigrationReport
from repro.middleware.migration.network import NetworkLink, SimulatedNetwork, TransferReport

__all__ = [
    "DataMigrator",
    "MigrationReport",
    "STRATEGIES",
    "SimulatedNetwork",
    "NetworkLink",
    "TransferReport",
]
