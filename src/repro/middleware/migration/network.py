"""A simulated network between data-processing engines.

Real polystores move data over a datacenter network; here the transfer is a
cost model: a link with configurable bandwidth and latency, plus an
RDMA-style fast path that bypasses the software protocol stack (the paper's
§III-A-3 suggestion).  Transfers return simulated seconds, never sleep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import MigrationError


@dataclass(frozen=True)
class NetworkLink:
    """One link's characteristics.

    Attributes:
        bandwidth_gbs: Sustained bandwidth in gigabytes per second.
        latency_s: One-way latency per message.
        per_packet_overhead_s: Software protocol-stack overhead per packet
            (memory copies, syscalls); RDMA bypasses most of it.
        packet_bytes: Packet size used to count per-packet overheads.
    """

    bandwidth_gbs: float = 1.25          # ~10 GbE
    latency_s: float = 100e-6
    per_packet_overhead_s: float = 2e-6
    packet_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0 or self.packet_bytes <= 0:
            raise MigrationError("bandwidth and packet size must be positive")
        if self.latency_s < 0 or self.per_packet_overhead_s < 0:
            raise MigrationError("latencies must be non-negative")


@dataclass(frozen=True)
class TransferReport:
    """Simulated cost of moving one payload."""

    payload_bytes: int
    wire_time_s: float
    protocol_overhead_s: float
    latency_s: float
    total_s: float
    rdma: bool


class SimulatedNetwork:
    """Transfers payloads over a :class:`NetworkLink`, charging simulated time."""

    def __init__(self, link: NetworkLink | None = None, *,
                 rdma_overhead_factor: float = 0.05) -> None:
        self.link = link if link is not None else NetworkLink()
        self.rdma_overhead_factor = rdma_overhead_factor
        self.transfers: list[TransferReport] = []

    def transfer(self, payload_bytes: int, *, rdma: bool = False) -> TransferReport:
        """Simulate moving ``payload_bytes`` across the link."""
        if payload_bytes < 0:
            raise MigrationError("payload size must be non-negative")
        link = self.link
        wire_time = payload_bytes / (link.bandwidth_gbs * 1e9)
        packets = max(1, -(-payload_bytes // link.packet_bytes))  # ceil division
        protocol = packets * link.per_packet_overhead_s
        if rdma:
            protocol *= self.rdma_overhead_factor
        report = TransferReport(
            payload_bytes=payload_bytes,
            wire_time_s=wire_time,
            protocol_overhead_s=protocol,
            latency_s=link.latency_s,
            total_s=link.latency_s + wire_time + protocol,
            rdma=rdma,
        )
        self.transfers.append(report)
        return report

    def total_transferred_bytes(self) -> int:
        """Total bytes moved so far."""
        return sum(t.payload_bytes for t in self.transfers)

    def total_time_s(self) -> float:
        """Total simulated transfer time so far."""
        return sum(t.total_s for t in self.transfers)

    def reset(self) -> None:
        """Forget recorded transfers."""
        self.transfers.clear()
