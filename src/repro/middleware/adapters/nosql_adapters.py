"""Adapters for the key/value, timeseries, graph and text engines.

Each adapter converts its engine's native results into
:class:`~repro.datamodel.table.Table` objects so that downstream relational
operators (joins, filters, feature assembly) can consume them uniformly —
this is the "transform to the data model of the receiving application" step
a polystore automates.
"""

from __future__ import annotations

from typing import Any

from repro.datamodel.schema import Column, DataType, Schema
from repro.datamodel.table import Table
from repro.exceptions import AdapterError
from repro.ir.nodes import Operator
from repro.middleware.adapters.base import Adapter, apply_predicate
from repro.stores.graph.engine import GraphEngine
from repro.stores.keyvalue.engine import KeyValueEngine
from repro.stores.relational.expressions import Expression
from repro.stores.relational.operators import Filter, Project, TableScan
from repro.stores.text.engine import TextEngine
from repro.stores.timeseries.engine import TimeseriesEngine


def _key_value_to_cell(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def _coerce_key(key: str) -> Any:
    """Keys embedded in series/doc names are often numeric ids; keep joins typed."""
    try:
        return int(key)
    except ValueError:
        return key


class TableOpsMixin:
    """Partition-friendly ``filter``/``project`` over materialized tables.

    The dataflow API lets clients filter or project the tabular result of
    any engine read while staying on that engine (which is what allows the
    pushdown pass to later absorb the predicate into the read itself, and
    the scatter path to keep the operator partition-wise on sharded
    engines).
    """

    def _table_op(self, node: Operator, inputs: list[Any]) -> Table:
        self._require_inputs(node, inputs, 1)
        value = inputs[0]
        if not isinstance(value, Table):
            raise AdapterError(
                f"operator {node.op_id} expected a Table input, "
                f"got {type(value).__name__}"
            )
        scan = TableScan(value.to_dicts())
        if node.kind == "filter":
            predicate = node.params.get("predicate")
            if not isinstance(predicate, Expression):
                raise AdapterError(f"filter {node.op_id} has no predicate expression")
            rows = Filter(scan, predicate).execute()
        else:
            rows = Project(scan, list(node.params.get("columns") or [])).execute()
        return Table.from_dicts(rows) if rows else Table(value.schema, [])


class KeyValueAdapter(TableOpsMixin, Adapter):
    """Executes ``kv_get`` and ``kv_range`` operators on the key/value engine."""

    def __init__(self, engine: KeyValueEngine) -> None:
        super().__init__(engine)
        self.engine: KeyValueEngine = engine

    def supported_kinds(self) -> frozenset[str]:
        return frozenset({"kv_get", "kv_range", "filter", "project"})

    def execute(self, node: Operator, inputs: list[Any]) -> Table:
        if node.kind in ("filter", "project"):
            return self._table_op(node, inputs)
        if node.kind == "kv_get":
            keys = node.params.get("keys")
            prefix = node.params.get("key_prefix")
            if keys:
                pairs = [(k, self.engine.get(k)) for k in keys if self.engine.contains(k)]
            elif prefix is not None:
                end = prefix[:-1] + chr(ord(prefix[-1]) + 1) if prefix else None
                pairs = list(self.engine.range(prefix, end))
            else:
                raise AdapterError(f"kv_get {node.op_id} needs keys or key_prefix")
        else:
            pairs = list(self.engine.range(node.params.get("start"), node.params.get("end")))
            prefix = None
        table = self._pairs_to_table(pairs, node.params.get("key_prefix"),
                                     node.params.get("key_column", "key"))
        return apply_predicate(table, node)

    @staticmethod
    def _pairs_to_table(pairs: list[tuple[str, Any]], prefix: str | None,
                        key_column: str) -> Table:
        rows = []
        for key, value in pairs:
            short_key = key[len(prefix):] if prefix and key.startswith(prefix) else key
            record: dict[str, Any] = {key_column: _coerce_key(short_key)}
            if isinstance(value, dict):
                record.update({k: _key_value_to_cell(v) for k, v in value.items()})
            else:
                record["value"] = _key_value_to_cell(value)
            rows.append(record)
        if not rows:
            return Table(Schema([Column(key_column, DataType.STRING)]), [])
        return Table.from_dicts(rows)


class TimeseriesAdapter(TableOpsMixin, Adapter):
    """Executes timeseries operators: range scans, windows and summaries."""

    def __init__(self, engine: TimeseriesEngine) -> None:
        super().__init__(engine)
        self.engine: TimeseriesEngine = engine

    def supported_kinds(self) -> frozenset[str]:
        return frozenset({"ts_range", "window_aggregate", "ts_summarize",
                          "filter", "project"})

    def execute(self, node: Operator, inputs: list[Any]) -> Table:
        if node.kind in ("filter", "project"):
            return self._table_op(node, inputs)
        if node.kind == "ts_range":
            points = self.engine.query_range(str(node.params["series"]),
                                             node.params.get("start"),
                                             node.params.get("end"))
            rows = [{"timestamp": p.timestamp, "value": p.value} for p in points]
            schema = Schema([Column("timestamp", DataType.FLOAT),
                             Column("value", DataType.FLOAT)])
            return Table.from_dicts(rows) if rows else Table(schema, [])
        if node.kind == "window_aggregate":
            results = self.engine.window_aggregate(
                str(node.params["series"]),
                float(node.params["window_s"]),
                str(node.params.get("aggregation", "mean")),
                node.params.get("start"),
                node.params.get("end"),
            )
            rows = [{"window_start": r.window_start, "value": r.value, "count": r.count}
                    for r in results]
            schema = Schema([Column("window_start", DataType.FLOAT),
                             Column("value", DataType.FLOAT),
                             Column("count", DataType.INT)])
            return Table.from_dicts(rows) if rows else Table(schema, [])
        return self._summarize(node)

    def _summarize(self, node: Operator) -> Table:
        prefix = str(node.params["series_prefix"])
        key_column = str(node.params.get("key_column", "pid"))
        start = node.params.get("start")
        end = node.params.get("end")
        series_keys = node.params.get("series_keys")
        if series_keys is not None:
            # The pushdown pass pinned the summary to explicit series: read
            # only those instead of listing every series under the prefix.
            candidates = [key for key in series_keys if self.engine.has_series(key)]
        else:
            candidates = self.engine.list_series()
        rows = []
        for series_key in candidates:
            if not series_key.startswith(prefix):
                continue
            entity = _coerce_key(series_key[len(prefix):])
            summary = self.engine.summarize(series_key, start, end)
            rows.append({
                key_column: entity,
                "vital_count": summary["count"],
                "vital_mean": summary["mean"],
                "vital_min": summary["min"],
                "vital_max": summary["max"],
                "vital_last": summary["last"],
            })
        if not rows:
            schema = Schema([Column(key_column, DataType.INT),
                             Column("vital_count", DataType.FLOAT),
                             Column("vital_mean", DataType.FLOAT),
                             Column("vital_min", DataType.FLOAT),
                             Column("vital_max", DataType.FLOAT),
                             Column("vital_last", DataType.FLOAT)])
            return apply_predicate(Table(schema, []), node)
        return apply_predicate(Table.from_dicts(rows), node)


class GraphAdapter(TableOpsMixin, Adapter):
    """Executes graph operators: node scans, paths and neighbourhood features."""

    def __init__(self, engine: GraphEngine) -> None:
        super().__init__(engine)
        self.engine: GraphEngine = engine

    def supported_kinds(self) -> frozenset[str]:
        return frozenset({"graph_nodes", "shortest_path", "neighborhood",
                          "graph_match", "filter", "project"})

    def execute(self, node: Operator, inputs: list[Any]) -> Any:
        kind = node.kind
        if kind in ("filter", "project"):
            return self._table_op(node, inputs)
        if kind == "graph_nodes":
            label = str(node.params.get("label", ""))
            rows = self.engine.node_properties(label)
            return Table.from_dicts(rows) if rows else Table(
                Schema([Column("node_id", DataType.STRING)]), [])
        if kind == "shortest_path":
            path, cost = self.engine.shortest_path(
                str(node.params["start"]), str(node.params["end"]),
                weighted=bool(node.params.get("weighted", False)),
                edge_label=node.params.get("edge_label"),
            )
            return {"path": path, "cost": cost, "hops": len(path) - 1}
        if kind == "neighborhood":
            value = self.engine.neighborhood_aggregate(
                str(node.params["node_id"]), str(node.params["property_name"]),
                edge_label=node.params.get("edge_label"),
                aggregation=str(node.params.get("aggregation", "mean")),
            )
            return {"node_id": node.params["node_id"], "value": value}
        matches = self.engine.match(str(node.params["start_label"]),
                                    list(node.params.get("steps", [])))
        rows = [
            {"start": m.nodes[0].node_id, "end": m.nodes[-1].node_id, "length": len(m.edges)}
            for m in matches
        ]
        return Table.from_dicts(rows) if rows else Table(
            Schema([Column("start", DataType.STRING), Column("end", DataType.STRING),
                    Column("length", DataType.INT)]), [])


class TextAdapter(TableOpsMixin, Adapter):
    """Executes text operators: ranked search and keyword feature extraction."""

    def __init__(self, engine: TextEngine) -> None:
        super().__init__(engine)
        self.engine: TextEngine = engine

    def supported_kinds(self) -> frozenset[str]:
        return frozenset({"text_search", "keyword_features", "filter", "project"})

    def execute(self, node: Operator, inputs: list[Any]) -> Table:
        if node.kind in ("filter", "project"):
            return self._table_op(node, inputs)
        if node.kind == "text_search":
            results = self.engine.search(str(node.params["query"]),
                                         top_k=int(node.params.get("top_k", 10)))
            rows = [{"doc_id": doc_id, "score": score} for doc_id, score in results]
            schema = Schema([Column("doc_id", DataType.STRING), Column("score", DataType.FLOAT)])
            return Table.from_dicts(rows) if rows else Table(schema, [])
        return self._keyword_features(node)

    def _keyword_features(self, node: Operator) -> Table:
        keywords = [str(k) for k in node.params.get("keywords", [])]
        if not keywords:
            raise AdapterError(f"keyword_features {node.op_id} needs at least one keyword")
        prefix = node.params.get("doc_prefix")
        id_column = str(node.params.get("id_column", "doc_id"))
        doc_ids = node.params.get("doc_ids")
        if doc_ids is not None:
            # The pushdown pass pinned the read to explicit documents.
            known = set(self.engine.documents_matching({}))
            candidates = [doc_id for doc_id in doc_ids if doc_id in known]
        else:
            # documents_matching({}) returns every doc id.
            candidates = self.engine.documents_matching({})
        rows = []
        for doc_id in candidates:
            if prefix is not None and not doc_id.startswith(prefix):
                continue
            entity = doc_id[len(prefix):] if prefix else doc_id
            features = self.engine.keyword_features(doc_id, keywords)
            row: dict[str, Any] = {id_column: _coerce_key(entity)}
            row.update({f"kw_{keyword}": value for keyword, value in features.items()})
            rows.append(row)
        if not rows:
            columns = [Column(id_column, DataType.STRING)]
            columns += [Column(f"kw_{k}", DataType.FLOAT) for k in keywords]
            return apply_predicate(Table(Schema(columns), []), node)
        return apply_predicate(Table.from_dicts(rows), node)
