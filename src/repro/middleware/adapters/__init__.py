"""Engine adapters: translate IR operators into native engine calls."""

from repro.exceptions import AdapterError
from repro.middleware.adapters.base import Adapter
from repro.middleware.adapters.ml_adapter import ArrayAdapter, MLAdapter
from repro.middleware.adapters.nosql_adapters import (
    GraphAdapter,
    KeyValueAdapter,
    TextAdapter,
    TimeseriesAdapter,
)
from repro.middleware.adapters.relational_adapter import RelationalAdapter
from repro.stores.array.engine import ArrayEngine
from repro.stores.base import Engine
from repro.stores.graph.engine import GraphEngine
from repro.stores.keyvalue.engine import KeyValueEngine
from repro.stores.ml.engine import MLEngine
from repro.stores.relational.engine import RelationalEngine
from repro.stores.text.engine import TextEngine
from repro.stores.timeseries.engine import TimeseriesEngine


def adapter_for(engine: Engine) -> Adapter:
    """Build the adapter matching an engine's concrete type."""
    # Imported lazily: the cluster package builds per-shard adapters through
    # this very function, so a module-level import would be circular.
    from repro.cluster.adapter import ShardedAdapter
    from repro.cluster.sharded import ShardedEngine

    if isinstance(engine, ShardedEngine):
        return ShardedAdapter(engine)
    if isinstance(engine, RelationalEngine):
        return RelationalAdapter(engine)
    if isinstance(engine, KeyValueEngine):
        return KeyValueAdapter(engine)
    if isinstance(engine, TimeseriesEngine):
        return TimeseriesAdapter(engine)
    if isinstance(engine, GraphEngine):
        return GraphAdapter(engine)
    if isinstance(engine, TextEngine):
        return TextAdapter(engine)
    if isinstance(engine, MLEngine):
        return MLAdapter(engine)
    if isinstance(engine, ArrayEngine):
        return ArrayAdapter(engine)
    raise AdapterError(f"no adapter available for engine type {type(engine).__name__}")


__all__ = [
    "Adapter",
    "RelationalAdapter",
    "KeyValueAdapter",
    "TimeseriesAdapter",
    "GraphAdapter",
    "TextAdapter",
    "MLAdapter",
    "ArrayAdapter",
    "adapter_for",
]
