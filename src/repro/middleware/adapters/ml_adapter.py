"""Adapters for the ML/DL engine and the array engine.

The ML adapter closes the loop of the paper's Figure 2: the feature table
assembled by the relational/stream/text fragments arrives here, is converted
into a dense matrix, and a model is trained or scored on the ML engine (with
the GEMM work counted for accelerator offload accounting).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.datamodel.conversion import table_to_matrix
from repro.datamodel.schema import Column, DataType
from repro.datamodel.table import Table
from repro.exceptions import AdapterError
from repro.ir.nodes import Operator
from repro.middleware.adapters.base import Adapter
from repro.stores.array.engine import ArrayEngine
from repro.stores.ml.engine import MLEngine


def _numeric_feature_columns(table: Table, label_column: str | None,
                             key_column: str | None) -> list[str]:
    """Numeric columns usable as features, excluding the label and join key."""
    excluded = {label_column, key_column}
    names = []
    for column in table.schema:
        if column.name in excluded:
            continue
        if column.dtype in (DataType.INT, DataType.FLOAT, DataType.BOOL, DataType.TIMESTAMP):
            names.append(column.name)
    return names


class MLAdapter(Adapter):
    """Executes train/predict/kmeans/feature_matrix operators on the ML engine."""

    def __init__(self, engine: MLEngine) -> None:
        super().__init__(engine)
        self.engine: MLEngine = engine
        # Per-model feature statistics so inference normalizes like training did.
        self._normalization: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        # Per-model feature column lists so inference uses the training features.
        self._feature_columns: dict[str, list[str]] = {}

    def supported_kinds(self) -> frozenset[str]:
        return frozenset({"train", "predict", "kmeans", "feature_matrix"})

    def _normalize(self, model_name: str, features: np.ndarray, *,
                   fit: bool) -> np.ndarray:
        """Z-score features, fitting the statistics at training time."""
        if fit:
            mean = features.mean(axis=0)
            std = features.std(axis=0)
            std[std == 0] = 1.0
            self._normalization[model_name] = (mean, std)
        stats = self._normalization.get(model_name)
        if stats is None:
            return features
        mean, std = stats
        return (features - mean) / std

    def execute(self, node: Operator, inputs: list[Any]) -> Any:
        kind = node.kind
        if kind == "feature_matrix":
            self._require_inputs(node, inputs, 1)
            table = self._as_table(inputs[0], node)
            columns = node.params.get("feature_columns") or _numeric_feature_columns(
                table, node.params.get("label_column"), node.params.get("key_column"))
            return table_to_matrix(table, columns)
        if kind == "train":
            return self._train(node, inputs)
        if kind == "predict":
            return self._predict(node, inputs)
        return self._kmeans(node, inputs)

    # -- operators ----------------------------------------------------------------------

    def _train(self, node: Operator, inputs: list[Any]) -> dict[str, Any]:
        if not inputs:
            raise AdapterError(f"train {node.op_id} needs a feature input")
        table = self._as_table(inputs[0], node)
        label_column = node.params.get("label_column")
        if not label_column or label_column not in table.schema:
            raise AdapterError(
                f"train {node.op_id} needs a label_column present in its input"
            )
        key_column = node.params.get("key_column", "pid")
        feature_columns = node.params.get("feature_columns") or _numeric_feature_columns(
            table, label_column, key_column)
        if not feature_columns:
            raise AdapterError(f"train {node.op_id} found no numeric feature columns")
        features = table_to_matrix(table, feature_columns)
        features = np.nan_to_num(features, nan=0.0)
        labels = np.array([float(v) if v is not None else 0.0
                           for v in table.column(label_column)])
        model_name = str(node.params.get("model_name", node.op_id))
        features = self._normalize(model_name, features, fit=True)
        self._feature_columns[model_name] = list(feature_columns)
        model_type = str(node.params.get("model_type", "mlp"))
        epochs = int(node.params.get("epochs", 5))
        batch_size = int(node.params.get("batch_size", 32))
        if model_type == "logistic":
            losses = self.engine.train_logistic(model_name, features, labels,
                                                epochs=epochs, batch_size=batch_size)
            history = {"losses": losses}
        else:
            training = self.engine.train_classifier(
                model_name, features, labels,
                hidden_dims=tuple(node.params.get("hidden_dims", (32,))),
                epochs=epochs, batch_size=batch_size,
            )
            history = {"losses": training.losses, "accuracies": training.accuracies}
        metrics = self.engine.evaluate(model_name, features, labels)
        return {
            "model_name": model_name,
            "model_type": model_type,
            "feature_columns": feature_columns,
            "rows": len(table),
            "history": history,
            "metrics": metrics,
        }

    def _predict(self, node: Operator, inputs: list[Any]) -> Table:
        self._require_inputs(node, inputs, 1)
        table = self._as_table(inputs[0], node)
        model_name = str(node.params["model_name"])
        if not self.engine.has_model(model_name):
            raise AdapterError(f"predict {node.op_id}: model {model_name!r} is not trained")
        feature_columns = (node.params.get("feature_columns")
                           or self._feature_columns.get(model_name)
                           or _numeric_feature_columns(
                               table, node.params.get("label_column"),
                               node.params.get("key_column", "pid")))
        feature_columns = [c for c in feature_columns if c in table.schema]
        features = np.nan_to_num(table_to_matrix(table, feature_columns), nan=0.0)
        features = self._normalize(model_name, features, fit=False)
        probabilities = self.engine.predict_proba(model_name, features)
        predictions = (probabilities >= 0.5).astype(int)
        result = table.with_column(Column("probability", DataType.FLOAT),
                                   [float(p) for p in probabilities])
        return result.with_column(Column("prediction", DataType.INT),
                                  [int(p) for p in predictions])

    def _kmeans(self, node: Operator, inputs: list[Any]) -> dict[str, Any]:
        self._require_inputs(node, inputs, 1)
        table = self._as_table(inputs[0], node)
        feature_columns = node.params.get("feature_columns") or _numeric_feature_columns(
            table, None, node.params.get("key_column"))
        features = np.nan_to_num(table_to_matrix(table, feature_columns), nan=0.0)
        result = self.engine.cluster(features, int(node.params["n_clusters"]),
                                     seed=int(node.params.get("seed", 0)))
        return {
            "assignments": result.assignments.tolist(),
            "inertia": result.inertia,
            "iterations": result.iterations,
            "n_clusters": int(node.params["n_clusters"]),
        }

    @staticmethod
    def _as_table(value: Any, node: Operator) -> Table:
        if isinstance(value, Table):
            return value
        raise AdapterError(
            f"operator {node.op_id} expected a Table input, got {type(value).__name__}"
        )


class ArrayAdapter(Adapter):
    """Executes matmul/gemv operators on the array engine."""

    def __init__(self, engine: ArrayEngine) -> None:
        super().__init__(engine)
        self.engine: ArrayEngine = engine

    def supported_kinds(self) -> frozenset[str]:
        return frozenset({"matmul", "gemv"})

    def execute(self, node: Operator, inputs: list[Any]) -> np.ndarray:
        self._require_inputs(node, inputs, 2)
        left, right = (np.asarray(v, dtype=np.float64) for v in inputs)
        return self.engine.matmul(left, right)
