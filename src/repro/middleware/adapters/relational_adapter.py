"""Adapter for the relational engine.

Two execution modes per operator:

* *native* — leaf operators (``scan``, ``index_seek``) call straight into the
  engine's storage and indexes.
* *federated* — non-leaf operators receive already-materialized tables
  (possibly migrated from other engines) and are evaluated with the same
  volcano operators the engine itself uses, so semantics match regardless of
  where the inputs came from.
"""

from __future__ import annotations

from typing import Any

from repro.datamodel.table import Table
from repro.exceptions import AdapterError
from repro.ir.nodes import Operator
from repro.middleware.adapters.base import Adapter, apply_predicate
from repro.stores.relational.engine import RelationalEngine
from repro.stores.relational.expressions import Expression
from repro.stores.relational.operators import (
    Filter,
    GroupByAggregate,
    HashJoin,
    Limit,
    Project,
    Sort,
    SortMergeJoin,
    TableScan,
    TopK,
)


class RelationalAdapter(Adapter):
    """Executes relational IR operators on a :class:`RelationalEngine`."""

    def __init__(self, engine: RelationalEngine) -> None:
        super().__init__(engine)
        self.engine: RelationalEngine = engine

    def supported_kinds(self) -> frozenset[str]:
        return frozenset({
            "scan", "index_seek", "filter", "project", "join", "aggregate",
            "sort", "limit", "top_k", "union", "materialize", "python_udf",
        })

    def execute(self, node: Operator, inputs: list[Any]) -> Any:
        kind = node.kind
        if kind == "scan":
            columns = node.params.get("columns")
            table = self.engine.scan(str(node.params["table"]),
                                     list(columns) if columns else None)
            # A structured predicate absorbed by the pushdown pass evaluates
            # engine-side, before anything crosses the adapter boundary.
            return apply_predicate(table, node)
        if kind == "index_seek":
            table = self.engine.index_lookup(str(node.params["table"]),
                                             str(node.params["column"]),
                                             node.params["value"])
            # A seek converted from a predicated scan: apply the residual
            # conjuncts (and the cheap equality re-check) engine-side.
            table = apply_predicate(table, node)
            columns = node.params.get("columns")
            if columns:
                table = table.project(list(columns))
            return table
        if kind == "python_udf":
            fn = node.params["fn"]
            return fn(*inputs)
        if kind == "union":
            tables = [self._as_table(value, node) for value in inputs]
            if not tables:
                raise AdapterError(f"union {node.op_id} has no inputs")
            result = tables[0]
            for other in tables[1:]:
                result = result.concat(other)
            return result
        if kind == "materialize":
            self._require_inputs(node, inputs, 1)
            return self._as_table(inputs[0], node)
        return self._federated(node, inputs)

    # -- federated evaluation over materialized tables ------------------------------------

    def _federated(self, node: Operator, inputs: list[Any]) -> Table:
        kind = node.kind
        if kind == "join":
            self._require_inputs(node, inputs, 2)
            left = self._as_table(inputs[0], node)
            right = self._as_table(inputs[1], node)
            left_scan = TableScan(left.to_dicts())
            right_scan = TableScan(right.to_dicts())
            algorithm = node.params.get("algorithm", "hash")
            if algorithm == "sort_merge":
                operator = SortMergeJoin(left_scan, right_scan,
                                         str(node.params["left_key"]),
                                         str(node.params["right_key"]))
            else:
                operator = HashJoin(left_scan, right_scan,
                                    str(node.params["left_key"]),
                                    str(node.params["right_key"]),
                                    how=node.params.get("how", "inner"))
            rows = operator.execute()
            return Table.from_dicts(rows) if rows else Table(left.schema, [])
        self._require_inputs(node, inputs, 1)
        table = self._as_table(inputs[0], node)
        scan = TableScan(table.to_dicts())
        if kind == "filter":
            predicate = node.params.get("predicate")
            if not isinstance(predicate, Expression):
                raise AdapterError(f"filter {node.op_id} has no predicate expression")
            rows = Filter(scan, predicate).execute()
        elif kind == "project":
            rows = Project(scan, list(node.params.get("columns") or [])).execute()
        elif kind == "aggregate":
            rows = GroupByAggregate(scan, list(node.params.get("group_by") or []),
                                    list(node.params.get("aggregates") or [])).execute()
        elif kind == "sort":
            rows = Sort(scan, [str(node.params["by"])],
                        descending=bool(node.params.get("descending", False))).execute()
        elif kind == "limit":
            rows = Limit(scan, int(node.params["n"])).execute()
        elif kind == "top_k":
            rows = TopK(scan, str(node.params["by"]), int(node.params["k"]),
                        descending=bool(node.params.get("descending", True))).execute()
        else:
            raise AdapterError(f"relational adapter cannot execute {kind!r}")
        return Table.from_dicts(rows) if rows else Table(table.schema, [])

    @staticmethod
    def _as_table(value: Any, node: Operator) -> Table:
        if isinstance(value, Table):
            return value
        if isinstance(value, list) and all(isinstance(r, dict) for r in value):
            return Table.from_dicts(value)
        raise AdapterError(
            f"operator {node.op_id} expected a Table input, got {type(value).__name__}"
        )
