"""Adapter base class.

An adapter co-locates with each data-processing engine (paper §III, Figure 4)
and translates IR operators into the engine's native calls.  The executor
hands an adapter one operator plus the materialized outputs of the operator's
inputs; the adapter returns the operator's output (usually a
:class:`~repro.datamodel.table.Table`) and execution metrics flow back
through the engine's :class:`~repro.stores.base.MetricsRecorder`.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.datamodel.table import Table
from repro.exceptions import AdapterError
from repro.ir.nodes import Operator
from repro.stores.base import Engine
from repro.stores.relational.expressions import Expression


def apply_predicate(table: Table, node: Operator) -> Table:
    """Evaluate a node's structured ``predicate`` parameter against a table.

    The pushdown pass absorbs filters into leaf reads of every data model;
    each adapter funnels its result table through here so predicate
    semantics match the relational engine exactly.  Nodes without a
    predicate pass through untouched.
    """
    from repro.stores.relational.operators import Filter, TableScan

    predicate = node.params.get("predicate")
    if not isinstance(predicate, Expression):
        return table
    rows = Filter(TableScan(table.to_dicts()), predicate).execute()
    return Table.from_dicts(rows) if rows else Table(table.schema, [])


class Adapter(abc.ABC):
    """Translates and executes IR operators on one engine."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine

    @abc.abstractmethod
    def supported_kinds(self) -> frozenset[str]:
        """IR operator kinds this adapter can execute."""

    @abc.abstractmethod
    def execute(self, node: Operator, inputs: list[Any]) -> Any:
        """Execute ``node`` given its input values (in ``node.inputs`` order)."""

    def can_execute(self, node: Operator) -> bool:
        """Whether this adapter handles the node's kind."""
        return node.kind in self.supported_kinds()

    def _require_inputs(self, node: Operator, inputs: list[Any], expected: int) -> None:
        if len(inputs) != expected:
            raise AdapterError(
                f"{type(self).__name__} expected {expected} inputs for "
                f"{node.kind} ({node.op_id}), got {len(inputs)}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(engine={self.engine.name!r})"
