"""Per-engine state capture, restore and WAL replay.

The durability manager is engine-agnostic; this module holds the per-model
knowledge: how to dump an engine's state into a picklable payload, how to
rebuild the engine from it, and how to re-apply one WAL record.

Replay goes back through the engines' own mutators wherever possible (the
``op`` payload each mutator attaches to its changelog batch names the call
to repeat).  Re-running the mutator regenerates the *same* changelog batch,
the same version-counter bumps and the same heap/memtable layout the live
process produced — which is what makes the recovered scoped data versions
byte-compatible with a never-crashed twin.  The two relational cases whose
mutators cannot reproduce heap order from entries alone (``delete`` /
``update``) are replayed by an order-preserving rewrite below.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import TYPE_CHECKING, Any

from repro.exceptions import StorageError
from repro.stores.base import Engine
from repro.stores.changelog import table_scope
from repro.stores.keyvalue.engine import KeyValueEngine
from repro.stores.keyvalue.memtable import TOMBSTONE, MemTable
from repro.stores.keyvalue.sstable import SSTable
from repro.stores.relational.engine import RelationalEngine, StoredTable
from repro.stores.relational.index import HashIndex, SortedIndex
from repro.stores.text.engine import TextEngine
from repro.stores.timeseries.engine import TimeseriesEngine
from repro.stores.timeseries.series import Series

if TYPE_CHECKING:  # circular with manager (it passes itself as the spill sink)
    from repro.durability.manager import EngineStore

#: Engine classes the durability subsystem can persist (graph/array/ML
#: engines log only unscoped gap batches and have no dump path yet).
PERSISTABLE_ENGINES = (RelationalEngine, KeyValueEngine, TimeseriesEngine,
                       TextEngine)

#: Marker standing in for the (unpicklable, identity-compared) tombstone
#: sentinel inside persisted key/value payloads.
TOMBSTONE_MARKER = ("__repro.kv.tombstone__",)


def _encode_value(value: Any) -> Any:
    return TOMBSTONE_MARKER if value is TOMBSTONE else value


def _decode_value(value: Any) -> Any:
    return TOMBSTONE if value == TOMBSTONE_MARKER else value


def encode_entries(entries: Any) -> list[tuple[str, Any]]:
    """Tombstone-safe ``(key, value)`` list for memtables and SSTables."""
    return [(key, _encode_value(value)) for key, value in entries]


def decode_entries(entries: Any) -> list[tuple[str, Any]]:
    """Inverse of :func:`encode_entries`."""
    return [(key, _decode_value(value)) for key, value in entries]


# -- counters ------------------------------------------------------------------------


def dump_counters(engine: Engine) -> dict[str, Any]:
    """The engine's version counters and changelog position."""
    return {
        "data_version": engine._data_version,
        "unscoped": engine._unscoped_version,
        "scopes": dict(engine._scope_versions),
        "next_seq": engine.changelog._next_seq,
    }


def restore_counters(engine: Engine, counters: dict[str, Any]) -> None:
    """Reset the engine's counters to a snapshot's values.

    The in-memory changelog restarts empty at the snapshot's sequence
    number: retention is bounded anyway, replayed WAL records re-append the
    tail batches, and consumers (views) resync from the base data.
    """
    engine._data_version = counters["data_version"]
    engine._unscoped_version = counters["unscoped"]
    engine._scope_versions = dict(counters["scopes"])
    log = engine.changelog
    with log._lock:
        log._batches.clear()
        log._retained_rows = 0
        log._next_seq = counters["next_seq"]
        log._oldest_retained = counters["next_seq"]


# -- state dump / restore ------------------------------------------------------------


def dump_state(engine: Engine, store: "EngineStore | None" = None) -> dict[str, Any]:
    """Picklable full state of one engine (dispatch on engine type)."""
    if isinstance(engine, RelationalEngine):
        tables = {}
        for name, stored in engine._tables.items():
            tables[name] = {
                "schema": stored.schema,
                "page_capacity": stored.heap.page_capacity,
                "rows": [tuple(row) for row in stored.heap.scan()],
                "hash_indexes": sorted(stored.hash_indexes),
                "sorted_indexes": sorted(stored.sorted_indexes),
            }
        return {"model": "relational", "tables": tables}
    if isinstance(engine, KeyValueEngine):
        sstables = []
        for sst in engine._sstables:
            filename = getattr(sst, "_spill_file", None)
            if filename is None and store is not None:
                filename = store.spill_sstable(sst)
            if filename is not None:
                sstables.append({"file": filename})
            else:
                sstables.append({"entries": encode_entries(sst.items())})
        return {
            "model": "key_value",
            "capacity": engine._memtable.capacity,
            "memtable": encode_entries(engine._memtable.items()),
            "sstables": sstables,
            "wal_ops": list(engine._wal),
        }
    if isinstance(engine, TimeseriesEngine):
        series = {}
        for key, one in engine._series.items():
            series[key] = {
                "tags": dict(one.tags),
                "points": [(point.timestamp, point.value) for point in one],
            }
        return {"model": "timeseries", "series": series}
    if isinstance(engine, TextEngine):
        return {
            "model": "document",
            "documents": {doc_id: {"text": doc["text"],
                                   "metadata": dict(doc["metadata"])}
                          for doc_id, doc in engine._documents.items()},
        }
    raise StorageError(
        f"engine {engine.name!r} ({type(engine).__name__}) is not persistable"
    )


def restore_state(engine: Engine, state: dict[str, Any],
                  store: "EngineStore | None" = None) -> None:
    """Rebuild an engine's data structures from a snapshot payload."""
    if isinstance(engine, RelationalEngine):
        tables: dict[str, StoredTable] = {}
        for name, spec in state["tables"].items():
            stored = StoredTable(name, spec["schema"], spec["page_capacity"])
            # Index objects go in first so inserts maintain them.
            for column in spec["hash_indexes"]:
                stored.hash_indexes[column] = HashIndex(column)
            for column in spec["sorted_indexes"]:
                stored.sorted_indexes[column] = SortedIndex(column)
            for row in spec["rows"]:
                stored.insert(row)
            tables[name] = stored
        engine._tables = tables
        return
    if isinstance(engine, KeyValueEngine):
        memtable = MemTable(state["capacity"])
        for key, value in decode_entries(state["memtable"]):
            memtable._entries[key] = value
        sstables: list[SSTable] = []
        for ref in state["sstables"]:
            if "file" in ref:
                if store is None:
                    raise StorageError("spilled SSTable needs a store to load")
                sstables.append(store.load_sstable(ref["file"]))
            else:
                sstables.append(SSTable(decode_entries(ref["entries"])))
        engine._memtable = memtable
        engine._sstables = sstables
        engine._wal = list(state["wal_ops"])
        return
    if isinstance(engine, TimeseriesEngine):
        series: dict[str, Series] = {}
        for key, spec in state["series"].items():
            one = Series(key, spec["tags"])
            for timestamp, value in spec["points"]:
                one.append(timestamp, value)
            series[key] = one
        engine._series = series
        return
    if isinstance(engine, TextEngine):
        engine._documents = {}
        engine._index = type(engine._index)()
        for doc_id, doc in state["documents"].items():
            engine._documents[doc_id] = {"text": doc["text"],
                                         "metadata": dict(doc["metadata"])}
            engine._index.add(doc_id, doc["text"])
        return
    raise StorageError(
        f"engine {engine.name!r} ({type(engine).__name__}) is not persistable"
    )


# -- WAL replay ----------------------------------------------------------------------


def replay_record(engine: Engine, record: dict[str, Any]) -> bool:
    """Re-apply one WAL record; returns ``True`` for batch records.

    Meta records (mutations that bypass the changelog, e.g. index DDL)
    count separately — they bump no version counters, exactly as live.
    """
    if record["k"] == "m":
        _replay_meta(engine, record["op"])
        return False
    op = record.get("op")
    if op is None:
        raise StorageError(
            f"engine {engine.name!r}: WAL batch for scope {record.get('scope')!r} "
            f"carries no op payload and cannot be replayed"
        )
    kind, args = op
    entries = record.get("entries") or ()
    if isinstance(engine, RelationalEngine):
        _replay_relational(engine, kind, args, entries)
    elif isinstance(engine, KeyValueEngine):
        _replay_keyvalue(engine, kind, args)
    elif isinstance(engine, TimeseriesEngine):
        _replay_timeseries(engine, kind, args, entries)
    elif isinstance(engine, TextEngine):
        _replay_text(engine, kind, args)
    else:
        raise StorageError(f"engine {engine.name!r} is not replayable")
    return True


def _replay_meta(engine: Engine, op: tuple[str, dict[str, Any]]) -> None:
    kind, args = op
    if kind == "create_index":
        engine.create_index(args["table"], args["column"], kind=args["kind"])
        return
    raise StorageError(f"unknown meta op {kind!r} for engine {engine.name!r}")


def _replay_relational(engine: RelationalEngine, kind: str,
                       args: dict[str, Any], entries: Any) -> None:
    if kind == "create_table":
        engine.create_table(args["table"], args["schema"],
                            page_capacity=args["page_capacity"])
    elif kind == "drop_table":
        engine.drop_table(args["table"])
    elif kind == "insert":
        engine.insert(args["table"], [row for row, _ in entries])
    elif kind == "insert_torn":
        # The original insert failed mid-way: its landed rows were recorded
        # in the gap's op.  Re-land them and re-mark the gap so counters
        # and the changelog match the crashed process exactly.
        table = args["table"]
        stored = engine._tables[table]
        for row in args["rows"]:
            stored.insert(row)
        engine.mark_data_changed(table_scope(table),
                                 op=("insert_torn", dict(args)))
    elif kind == "delete":
        _replay_rewrite(engine, args["table"], entries, kind)
    elif kind == "update":
        _replay_rewrite(engine, args["table"], entries, kind)
    else:
        raise StorageError(f"unknown relational op {kind!r}")


def _replay_rewrite(engine: RelationalEngine, table: str, entries: Any,
                    kind: str) -> None:
    """Order-preserving replay of a logged delete/update.

    Rebuilds the heap by walking it in scan order — removing each ``-1``
    row occurrence (delete) or substituting its paired ``+1`` row in place
    (update) — which reproduces the heap layout the live ``_rewrite_rows``
    pass left behind, so post-recovery scans return rows in the same order.
    """
    stored = engine._tables[table]
    if kind == "delete":
        removals = Counter(row for row, _ in entries)
        replacements: dict[tuple, deque] = {}
    else:
        removals = Counter()
        replacements = {}
        pairs = iter(entries)
        for (old, _), (new, _) in zip(pairs, pairs):
            replacements.setdefault(old, deque()).append(new)
    kept: list[tuple] = []
    for row in stored.heap.scan():
        row_t = tuple(row)
        if removals.get(row_t, 0) > 0:
            removals[row_t] -= 1
            continue
        queued = replacements.get(row_t)
        if queued:
            kept.append(queued.popleft())
            continue
        kept.append(row_t)
    rebuilt = StoredTable(table, stored.schema, stored.heap.page_capacity)
    for column in stored.hash_indexes:
        rebuilt.hash_indexes[column] = HashIndex(column)
    for column in stored.sorted_indexes:
        rebuilt.sorted_indexes[column] = SortedIndex(column)
    for row_t in kept:
        rebuilt.insert(row_t)
    engine._tables[table] = rebuilt
    engine.mark_data_changed(table_scope(table), entries=entries,
                             op=(kind, {"table": table}))


def _replay_keyvalue(engine: KeyValueEngine, kind: str,
                     args: dict[str, Any]) -> None:
    if kind == "put":
        engine.put(args["key"], args["value"])
    elif kind == "delete":
        engine.delete(args["key"])
    else:
        raise StorageError(f"unknown key/value op {kind!r}")


def _replay_timeseries(engine: TimeseriesEngine, kind: str,
                       args: dict[str, Any], entries: Any) -> None:
    if kind == "create_series":
        engine.create_series(args["key"], args["tags"])
    elif kind == "append":
        (timestamp, value), _ = entries[0]
        engine.append(args["key"], timestamp, value)
    elif kind == "append_many":
        engine.append_many(args["key"], [point for point, _ in entries])
    else:
        raise StorageError(f"unknown timeseries op {kind!r}")


def _replay_text(engine: TextEngine, kind: str, args: dict[str, Any]) -> None:
    if kind == "add_document":
        engine.add_document(args["doc_id"], args["text"], args["metadata"])
    elif kind == "remove_document":
        engine.remove_document(args["doc_id"])
    else:
        raise StorageError(f"unknown document op {kind!r}")
