"""The durability manager: WAL capture, checkpoints, restore and replay.

One :class:`DurabilityManager` owns a data directory and persists every
supported engine registered on its system:

* an :class:`EngineStore` per plain engine hooks the engine's changelog
  (every :class:`~repro.stores.changelog.DeltaBatch` becomes one WAL
  record, appended under the log lock so WAL order equals sequence order)
  and checkpoints — atomic snapshot, WAL rotation, manifest swap — every
  ``snapshot_every`` records;
* a :class:`ShardedStore` per :class:`~repro.cluster.ShardedEngine` nests
  one ``EngineStore`` per shard (per-shard WALs) under a facade store that
  logs tiny counter records plus DDL, and treats a rebalance cutover as a
  snapshot barrier followed by an atomic manifest swap — a crash before
  the swap recovers on the *old* topology;
* registered views' definitions are pickled to ``views.pkl`` and
  re-registered after recovery (their state resyncs from the recovered
  base snapshots via the normal initialization path).

Recovery (on attach) = restore the manifest's snapshot, then replay the
WAL tail through the engines' own mutators (:mod:`repro.durability.state`),
which regenerates identical changelog batches and version counters — the
recovered scoped data versions match a never-crashed process exactly.
"""

from __future__ import annotations

import pickle
import shutil
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.durability import faults
from repro.durability.snapshot import (
    load_manifest,
    load_snapshot,
    snapshot_id,
    snapshot_name,
    write_atomic,
    write_manifest,
    write_snapshot,
)
from repro.durability.state import (
    PERSISTABLE_ENGINES,
    decode_entries,
    dump_counters,
    dump_state,
    encode_entries,
    replay_record,
    restore_counters,
    restore_state,
)
from repro.durability.wal import (
    Liveness,
    WalWriter,
    decode_stream,
    encode_record,
    read_records,
    segment_index,
)
from repro.exceptions import ConfigurationError, StorageError
from repro.obs import Observability
from repro.stores.base import Engine
from repro.stores.changelog import DeltaBatch
from repro.stores.keyvalue.engine import KeyValueEngine
from repro.stores.keyvalue.sstable import SSTable

if TYPE_CHECKING:
    from repro.cluster.sharded import ShardedEngine
    from repro.core.system import PolystorePlusPlus

VIEWS_FILE = "views.pkl"
SSTABLE_PREFIX = "sst-"
SSTABLE_SUFFIX = ".pkl"


def _sanitize(name: str) -> str:
    """A filesystem-safe directory name for one engine."""
    return "".join(c if c.isalnum() or c in "-_." else f"%{ord(c):02x}"
                   for c in name)


class EngineStore:
    """Durability for one plain engine: WAL hook, snapshots, recovery."""

    def __init__(self, manager: "DurabilityManager", engine: Engine,
                 directory: Path) -> None:
        self.manager = manager
        self.engine = engine
        self.directory = directory
        self.liveness = manager.liveness
        self._wal: WalWriter | None = None
        self._snap_id = 0
        self._sst_seq = 0
        self._since_checkpoint = 0
        self.recovery: dict[str, Any] = {}

    # -- attach / restore ------------------------------------------------------------

    def attach(self) -> None:
        """Restore persisted state (if any), then start capturing writes."""
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = load_manifest(self.directory)
        if manifest is None:
            self._wal = WalWriter(self.directory, self.liveness,
                                  sync=self.manager.sync,
                                  sync_interval_s=self.manager.sync_interval_s,
                                  obs=self.manager.obs,
                                  label=self.engine.name)
            self.recovery = {"restored": False, "replayed_batches": 0,
                            "replayed_meta": 0, "truncated_records": 0}
        else:
            self._restore(manifest)
        replayed = int(self.recovery.get("replayed_batches", 0))
        if replayed:
            self.manager.obs.recovery_replayed_total.inc(
                replayed, engine=self.engine.name)
        if self.recovery.get("restored"):
            self.manager.obs.logger("durability").info(
                "wal_recovery", engine=self.engine.name,
                replayed_batches=replayed,
                truncated_records=self.recovery.get("truncated_records", 0))
        self._hook()
        # Checkpoint immediately: a fresh attach snapshots whatever state
        # the engine already carries, and a recovered attach re-anchors the
        # manifest so the *next* recovery replays an empty tail.
        self.checkpoint()

    def _hook(self) -> None:
        self.engine.changelog.attach_wal(self._on_batch)
        self.engine._durability_meta = self._on_meta
        if isinstance(self.engine, KeyValueEngine):
            self.engine.attach_spill(self)

    def _restore(self, manifest: dict[str, Any]) -> None:
        expected = type(self.engine).__name__
        if manifest.get("engine_type") != expected:
            raise ConfigurationError(
                f"{self.directory} holds a {manifest.get('engine_type')!r} "
                f"state but engine {self.engine.name!r} is a {expected}"
            )
        self._snap_id = manifest["snapshot_id"]
        self._sst_seq, last_segment = self._scan_existing()
        payload = load_snapshot(self.directory, manifest["snapshot"])
        restore_state(self.engine, payload["state"], self)
        restore_counters(self.engine, payload["counters"])
        records, truncated = read_records(self.directory,
                                          manifest["wal_segment"])
        batches = meta = 0
        for record in records:
            if replay_record(self.engine, record):
                batches += 1
            else:
                meta += 1
        self._wal = WalWriter(self.directory, self.liveness,
                              sync=self.manager.sync,
                              sync_interval_s=self.manager.sync_interval_s,
                              start_segment=last_segment + 1,
                              obs=self.manager.obs, label=self.engine.name)
        self.recovery = {"restored": True,
                         "snapshot_id": manifest["snapshot_id"],
                         "replayed_batches": batches,
                         "replayed_meta": meta,
                         "truncated_records": truncated}

    def _scan_existing(self) -> tuple[int, int]:
        """Highest existing SSTable sequence and WAL segment numbers."""
        max_sst = 0
        max_segment = -1
        for entry in self.directory.iterdir():
            name = entry.name
            segment = segment_index(name)
            if segment is not None:
                max_segment = max(max_segment, segment)
            elif (name.startswith(SSTABLE_PREFIX)
                  and name.endswith(SSTABLE_SUFFIX)):
                digits = name[len(SSTABLE_PREFIX):-len(SSTABLE_SUFFIX)]
                if digits.isdigit():
                    max_sst = max(max_sst, int(digits))
        return max_sst, max_segment

    # -- write capture ---------------------------------------------------------------

    def _on_batch(self, batch: DeltaBatch) -> None:
        """Changelog hook: runs under the log lock, so WAL order == seq order."""
        if not self.liveness.alive:
            return
        assert self._wal is not None
        self._wal.append({"k": "b", "scope": batch.scope,
                          "entries": batch.entries, "gap": batch.gap,
                          "op": batch.op})
        self._bump()

    def _on_meta(self, op: tuple[str, dict[str, Any]]) -> None:
        """Hook for mutations that bypass the changelog (index DDL)."""
        if not self.liveness.alive:
            return
        assert self._wal is not None
        self._wal.append({"k": "m", "op": op})
        self._bump()

    def _bump(self) -> None:
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.manager.snapshot_every:
            self.checkpoint()

    # -- key/value spill sink ----------------------------------------------------------

    def flushed(self, engine: KeyValueEngine) -> None:
        """A memtable froze into an SSTable: spill it and checkpoint."""
        self.checkpoint()

    def compacted(self, engine: KeyValueEngine) -> None:
        """A compaction rewrote the SSTable set: re-spill and checkpoint."""
        self.checkpoint()

    def spill_sstable(self, sst: SSTable) -> str:
        """Persist one in-memory SSTable to its own checksummed file."""
        self._sst_seq += 1
        name = f"{SSTABLE_PREFIX}{self._sst_seq:08d}{SSTABLE_SUFFIX}"
        write_atomic(self.directory / name,
                     encode_record(encode_entries(sst.items())))
        sst._spill_file = name
        return name

    def load_sstable(self, name: str) -> SSTable:
        """Load one spilled SSTable file back into memory."""
        records, torn = decode_stream((self.directory / name).read_bytes())
        if torn or len(records) != 1:
            raise StorageError(f"spilled SSTable {name!r} is corrupt")
        sst = SSTable(decode_entries(records[0]))
        sst._spill_file = name
        return sst

    # -- checkpoint ---------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Snapshot atomically, rotate the WAL, swap the manifest, GC.

        A crash at any point leaves the previous manifest + a longer WAL —
        recovery replays more, but never diverges.
        """
        if not self.liveness.alive or self._wal is None:
            return
        engine = self.engine
        obs = self.manager.obs
        checkpoint_start = time.perf_counter()
        self._snap_id += 1
        payload = {"state": dump_state(engine, self),
                   "counters": dump_counters(engine)}
        with obs.tracer.span(f"snapshot:{engine.name}", "durability",
                             engine=engine.name, snapshot_id=self._snap_id):
            name = write_snapshot(self.directory, self._snap_id, payload,
                                  self.liveness)
        segment = self._wal.rotate()
        write_manifest(self.directory, {
            "engine": engine.name,
            "engine_type": type(engine).__name__,
            "snapshot_id": self._snap_id,
            "snapshot": name,
            "wal_segment": segment,
            "data_version": engine.data_version,
            "scoped_versions": {scope: engine.data_version_for(scope)
                                for scope in sorted(engine.known_scopes())},
        })
        self._since_checkpoint = 0
        self._gc()
        if obs.enabled:
            duration_s = time.perf_counter() - checkpoint_start
            obs.snapshot_seconds.observe(duration_s, engine=engine.name)
            obs.checkpoints_total.inc(engine=engine.name)
            obs.logger("durability").info(
                "wal_checkpoint", engine=engine.name,
                snapshot_id=self._snap_id, duration_s=round(duration_s, 6))

    def checkpoint_state(self) -> dict[str, Any]:
        """Current manifest anchor, for ``DurabilityManager.describe()``."""
        return {
            "snapshot_id": self._snap_id,
            "wal_segment": self._wal.segment if self._wal is not None else None,
            "since_checkpoint": self._since_checkpoint,
        }

    def _gc(self) -> None:
        keep = {snapshot_name(self._snap_id)}
        if isinstance(self.engine, KeyValueEngine):
            keep |= {f for f in (getattr(sst, "_spill_file", None)
                                 for sst in self.engine._sstables) if f}
        assert self._wal is not None
        current_segment = self._wal.segment
        for entry in self.directory.iterdir():
            name = entry.name
            if name in keep:
                continue
            segment = segment_index(name)
            if segment is not None:
                if segment < current_segment:
                    entry.unlink(missing_ok=True)
            elif (snapshot_id(name) is not None
                  or name.endswith(".tmp")
                  or (name.startswith(SSTABLE_PREFIX)
                      and name.endswith(SSTABLE_SUFFIX))):
                entry.unlink(missing_ok=True)

    # -- detach -------------------------------------------------------------------------

    def detach(self) -> None:
        """Stop capturing and close files without a final checkpoint."""
        self.engine.changelog.detach_wal()
        self.engine._durability_meta = None
        if isinstance(self.engine, KeyValueEngine):
            self.engine.attach_spill(None)
        if self._wal is not None:
            self._wal.close()

    def close(self) -> None:
        """Final checkpoint, then release the engine and file handles."""
        self.checkpoint()
        self.detach()


class ShardedStore:
    """Durability for a :class:`ShardedEngine`: per-shard WALs + facade log.

    The facade WAL holds tiny records — per relayed batch just ``{scope,
    gap}`` (the data itself is captured by the owning shard's WAL) plus DDL
    ops.  Replaying them re-bumps the facade's own version counters so the
    aggregated scoped versions come back exact.  The facade manifest names
    the shard *generation*; a rebalance cutover snapshots the new
    generation, then atomically swaps the manifest — the only point where
    the new topology becomes durable.
    """

    def __init__(self, manager: "DurabilityManager", engine: "ShardedEngine",
                 directory: Path) -> None:
        self.manager = manager
        self.engine = engine
        self.directory = directory
        self.liveness = manager.liveness
        self.generation = 0
        self._wal: WalWriter | None = None
        self._snap_id = 0
        self._since_checkpoint = 0
        self._shard_stores: list[EngineStore] = []
        self.recovery: dict[str, Any] = {}

    # -- attach / restore ------------------------------------------------------------

    def attach(self) -> None:
        (self.directory / "shards").mkdir(parents=True, exist_ok=True)
        manifest = load_manifest(self.directory)
        if manifest is None:
            self._wal = WalWriter(self.directory, self.liveness,
                                  sync=self.manager.sync,
                                  sync_interval_s=self.manager.sync_interval_s,
                                  obs=self.manager.obs,
                                  label=self.engine.name)
            self._shard_stores = self._build_shard_stores(self.engine.shards)
            self.recovery = {"restored": False, "replayed_batches": 0,
                            "truncated_records": 0, "shards": []}
        else:
            self._restore(manifest)
        replayed = int(self.recovery.get("replayed_batches", 0))
        if replayed:
            self.manager.obs.recovery_replayed_total.inc(
                replayed, engine=self.engine.name)
        engine = self.engine
        engine.changelog.attach_wal(self._on_batch)
        engine._durability_meta = self._on_meta
        engine._durability_cutover = self._on_cutover
        self.checkpoint()
        self._gc_generations()

    def _shard_dir(self, generation: int, index: int) -> Path:
        return self.directory / "shards" / f"g{generation}-s{index}"

    def _build_shard_stores(self, shards: list[Engine]) -> list[EngineStore]:
        stores = []
        for index, shard in enumerate(shards):
            store = EngineStore(self.manager, shard,
                                self._shard_dir(self.generation, index))
            store.attach()
            stores.append(store)
        return stores

    def _restore(self, manifest: dict[str, Any]) -> None:
        engine = self.engine
        if manifest.get("engine_type") != type(engine).__name__:
            raise ConfigurationError(
                f"{self.directory} does not hold sharded-engine state"
            )
        self.generation = manifest["generation"]
        self._snap_id = manifest["snapshot_id"]
        payload = load_snapshot(self.directory, manifest["snapshot"])
        num_shards = manifest["num_shards"]
        with engine._lock:
            # The persisted topology wins over whatever the constructor
            # built (e.g. a post-rebalance shard count).
            shards = [engine._build_shard(i) for i in range(num_shards)]
            engine._shards = shards
            engine._partitioner = payload["partitioner"]
            engine._shard_keys = dict(payload["shard_keys"])
            engine._table_kwargs = {t: dict(kw) for t, kw
                                    in payload["table_kwargs"].items()}
            engine._table_indexes = {t: dict(ix) for t, ix
                                     in payload["table_indexes"].items()}
            counters = payload["counters"]
            engine._version_base = counters["version_base"]
            engine._scope_bases = dict(counters["scope_bases"])
            restore_counters(engine, counters)
            self._shard_stores = self._build_shard_stores(shards)
            records, truncated = read_records(self.directory,
                                              manifest["wal_segment"])
            replayed = self._replay_facade(records)
            _, last_segment = self._scan_segments()
            self._wal = WalWriter(self.directory, self.liveness,
                                  sync=self.manager.sync,
                                  sync_interval_s=self.manager.sync_interval_s,
                                  start_segment=last_segment + 1,
                                  obs=self.manager.obs,
                                  label=self.engine.name)
        self.recovery = {"restored": True, "generation": self.generation,
                         "snapshot_id": manifest["snapshot_id"],
                         "replayed_batches": replayed,
                         "truncated_records": truncated,
                         "shards": [store.recovery
                                    for store in self._shard_stores]}

    def _scan_segments(self) -> tuple[int, int]:
        max_segment = -1
        for entry in self.directory.iterdir():
            segment = segment_index(entry.name)
            if segment is not None:
                max_segment = max(max_segment, segment)
        return 0, max_segment

    def _replay_facade(self, records: list[dict[str, Any]]) -> int:
        """Re-bump facade counters (and metadata) from the facade WAL tail.

        Shard-level data was already replayed by the shard stores; facade
        records only restore the facade's own contribution to the
        aggregated counters, plus DDL metadata.  Log marks are refreshed at
        the end (like a cutover does) — views resync after recovery anyway.
        """
        engine = self.engine
        replayed = 0
        for record in records:
            if record["k"] == "m":
                kind, args = record["op"]
                if kind == "create_index":
                    engine._table_indexes.setdefault(
                        args["table"], {})[args["column"]] = args["kind"]
                continue
            op = record.get("op")
            if op is not None:
                kind, args = op
                if kind == "create_table":
                    engine._shard_keys[args["table"]] = args["shard_key"]
                    engine._table_kwargs[args["table"]] = dict(args["kwargs"])
                elif kind == "drop_table":
                    engine._shard_keys.pop(args["table"], None)
                    engine._table_kwargs.pop(args["table"], None)
                    engine._table_indexes.pop(args["table"], None)
            engine.mark_data_changed(record["scope"],
                                     entries=None if record["gap"] else (),
                                     notify=False)
            replayed += 1
        for scope in engine.known_scopes() | set(engine._scope_log_marks):
            engine._scope_log_marks[scope] = engine.data_version_for(scope)
        return replayed

    # -- write capture ---------------------------------------------------------------

    def _on_batch(self, batch: DeltaBatch) -> None:
        """Facade changelog hook: entries are dropped (shards own the data)."""
        if not self.liveness.alive:
            return
        assert self._wal is not None
        self._wal.append({"k": "b", "scope": batch.scope, "gap": batch.gap,
                          "op": batch.op})
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.manager.snapshot_every:
            self.checkpoint()

    def _on_meta(self, op: tuple[str, dict[str, Any]]) -> None:
        if not self.liveness.alive:
            return
        assert self._wal is not None
        self._wal.append({"k": "m", "op": op})

    # -- cutover ------------------------------------------------------------------------

    def _on_cutover(self, engine: "ShardedEngine",
                    retired: list[Engine]) -> None:
        """Make a rebalance cutover durable (called under the facade lock).

        Snapshot barrier: the new generation's shards are checkpointed into
        fresh directories first; only the facade manifest swap (inside
        :meth:`checkpoint`) commits the new topology.  A crash before the
        swap — the ``"rebalance.cutover"`` fault point — recovers on the
        old generation, whose stores were left intact.
        """
        if not self.liveness.alive:
            return
        for store in self._shard_stores:
            store.detach()
        old_generation = self.generation
        self.generation += 1
        self._shard_stores = self._build_shard_stores(engine.shards)
        if faults.trip("rebalance.cutover"):
            self.liveness.kill()
            raise faults.InjectedFault(
                f"fault point 'rebalance.cutover' fired in {self.directory}"
            )
        self.checkpoint()
        self._gc_generations()
        self.manager.obs.logger("durability").info(
            "rebalance_cutover_durable", engine=engine.name,
            generation=self.generation, old_generation=old_generation,
            shards=len(engine.shards))

    # -- checkpoint ---------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Checkpoint every shard, then the facade, then swap the manifest."""
        if not self.liveness.alive or self._wal is None:
            return
        engine = self.engine
        obs = self.manager.obs
        checkpoint_start = time.perf_counter()
        with engine._lock:
            for store in self._shard_stores:
                store.checkpoint()
            self._snap_id += 1
            counters = dump_counters(engine)
            counters["version_base"] = engine._version_base
            counters["scope_bases"] = dict(engine._scope_bases)
            payload = {
                "partitioner": engine._partitioner,
                "shard_keys": dict(engine._shard_keys),
                "table_kwargs": {t: dict(kw) for t, kw
                                 in engine._table_kwargs.items()},
                "table_indexes": {t: dict(ix) for t, ix
                                  in engine._table_indexes.items()},
                "counters": counters,
            }
            name = write_snapshot(self.directory, self._snap_id, payload,
                                  self.liveness)
            segment = self._wal.rotate()
            write_manifest(self.directory, {
                "engine": engine.name,
                "engine_type": type(engine).__name__,
                "generation": self.generation,
                "num_shards": len(engine._shards),
                "snapshot_id": self._snap_id,
                "snapshot": name,
                "wal_segment": segment,
                "scoped_versions": {scope: engine.data_version_for(scope)
                                    for scope in sorted(engine.known_scopes())},
            })
            self._since_checkpoint = 0
            self._gc_facade()
        if obs.enabled:
            duration_s = time.perf_counter() - checkpoint_start
            obs.snapshot_seconds.observe(duration_s, engine=engine.name)
            obs.checkpoints_total.inc(engine=engine.name)
            obs.logger("durability").info(
                "wal_checkpoint", engine=engine.name,
                snapshot_id=self._snap_id, generation=self.generation,
                duration_s=round(duration_s, 6))

    def checkpoint_state(self) -> dict[str, Any]:
        """Facade manifest anchor plus each shard store's, for describe()."""
        return {
            "snapshot_id": self._snap_id,
            "wal_segment": self._wal.segment if self._wal is not None else None,
            "since_checkpoint": self._since_checkpoint,
            "generation": self.generation,
            "shards": [store.checkpoint_state()
                       for store in self._shard_stores],
        }

    def _gc_facade(self) -> None:
        keep_snapshot = snapshot_name(self._snap_id)
        assert self._wal is not None
        current_segment = self._wal.segment
        for entry in self.directory.iterdir():
            name = entry.name
            if name == keep_snapshot or entry.is_dir():
                continue
            segment = segment_index(name)
            if segment is not None:
                if segment < current_segment:
                    entry.unlink(missing_ok=True)
            elif snapshot_id(name) is not None or name.endswith(".tmp"):
                entry.unlink(missing_ok=True)

    def _gc_generations(self) -> None:
        """Drop shard directories of generations other than the current one."""
        prefix = f"g{self.generation}-"
        shards_dir = self.directory / "shards"
        for entry in shards_dir.iterdir():
            if entry.is_dir() and not entry.name.startswith(prefix):
                shutil.rmtree(entry, ignore_errors=True)

    # -- detach -------------------------------------------------------------------------

    def detach(self) -> None:
        for store in self._shard_stores:
            store.detach()
        engine = self.engine
        engine.changelog.detach_wal()
        engine._durability_meta = None
        engine._durability_cutover = None
        if self._wal is not None:
            self._wal.close()

    def close(self) -> None:
        self.checkpoint()
        self.detach()


class DurabilityManager:
    """Coordinates the stores of one data directory (one per system)."""

    def __init__(self, system: "PolystorePlusPlus", path: str, *,
                 sync: str = "interval", sync_interval_s: float = 0.05,
                 snapshot_every: int = 512) -> None:
        if snapshot_every < 1:
            raise ConfigurationError("snapshot_every must be at least 1")
        self.system = system
        self.root = Path(path).expanduser()
        (self.root / "engines").mkdir(parents=True, exist_ok=True)
        self.sync = sync
        self.sync_interval_s = sync_interval_s
        self.snapshot_every = snapshot_every
        self.liveness = Liveness()
        self._lock = threading.RLock()
        self._stores: dict[str, EngineStore | ShardedStore] = {}
        self._skipped: list[str] = []
        self._view_specs: dict[str, dict[str, Any]] = self._load_view_specs()
        self._unpersisted_views: set[str] = set()

    @property
    def obs(self) -> Observability:
        """The system's observability hub (inert when constructed before it)."""
        return getattr(self.system, "obs", None) or Observability.disabled()

    # -- engines ------------------------------------------------------------------------

    def attach(self, engine: Engine) -> None:
        """Start persisting ``engine`` (restoring any prior state first)."""
        from repro.cluster.sharded import ShardedEngine

        with self._lock:
            if engine.name in self._stores:
                return
            store: EngineStore | ShardedStore
            if isinstance(engine, ShardedEngine):
                store = ShardedStore(self, engine, self._engine_dir(engine.name))
            elif isinstance(engine, PERSISTABLE_ENGINES):
                store = EngineStore(self, engine, self._engine_dir(engine.name))
            else:
                # Graph/array/ML engines have no dump/replay path yet; they
                # keep working in memory only (documented in DESIGN.md).
                if engine.name not in self._skipped:
                    self._skipped.append(engine.name)
                return
            store.attach()
            self._stores[engine.name] = store
        self.restore_views()

    def _engine_dir(self, name: str) -> Path:
        return self.root / "engines" / _sanitize(name)

    def checkpoint(self) -> None:
        """Force a checkpoint of every attached store."""
        with self._lock:
            for store in self._stores.values():
                store.checkpoint()

    def close(self) -> None:
        """Final checkpoints, then release every hook and file handle."""
        with self._lock:
            for store in self._stores.values():
                store.close()
            self._stores.clear()

    # -- views --------------------------------------------------------------------------

    def _views_path(self) -> Path:
        return self.root / VIEWS_FILE

    def _load_view_specs(self) -> dict[str, dict[str, Any]]:
        path = self._views_path()
        if not path.exists():
            return {}
        records, torn = decode_stream(path.read_bytes())
        if torn or len(records) != 1:
            raise StorageError(f"corrupt view registry file {path}")
        return dict(records[0])

    def _write_view_specs(self) -> None:
        if not self.liveness.alive:
            return
        write_atomic(self._views_path(), encode_record(self._view_specs))

    def save_view(self, view: Any) -> None:
        """Persist one registered view's definition (best effort).

        Definitions holding unpicklable params (e.g. lambda UDFs) are
        skipped and reported via :meth:`describe`; everything else in the
        system stays durable.
        """
        spec = {"node": view.root, "policy": view.policy}
        try:
            pickle.dumps(spec)
        except Exception:  # noqa: BLE001 - arbitrary user callables
            self._unpersisted_views.add(view.name)
            return
        with self._lock:
            self._view_specs[view.name] = spec
            self._unpersisted_views.discard(view.name)
            self._write_view_specs()

    def forget_view(self, name: str) -> None:
        """Drop a view's persisted definition."""
        with self._lock:
            self._unpersisted_views.discard(name)
            if self._view_specs.pop(name, None) is not None:
                self._write_view_specs()

    def restore_views(self) -> None:
        """Re-register persisted views whose source engines are attached.

        Views re-initialize through the normal create path — a full
        resync-from-snapshot against the recovered base data.  Specs whose
        engines are not registered yet stay pending and are retried after
        every subsequent attach.
        """
        from repro.eide.dataflow import Dataset

        with self._lock:
            pending = {name: spec for name, spec in self._view_specs.items()
                       if name not in self.system.views}
        for name, spec in pending.items():
            try:
                self.system.views.create(name, Dataset(spec["node"]),
                                         policy=spec["policy"])
            except Exception:  # noqa: BLE001 - source engines not attached yet
                continue

    # -- introspection ------------------------------------------------------------------

    def recovery_report(self) -> dict[str, dict[str, Any]]:
        """Per-engine recovery details from the last attach cycle.

        ``replayed_batches`` counts the WAL-tail records re-applied after
        the restored snapshot — the acceptance evidence that recovery
        replays only the tail.
        """
        with self._lock:
            return {name: dict(store.recovery)
                    for name, store in self._stores.items()}

    def describe(self) -> dict[str, Any]:
        """Configuration and coverage summary for ``system.describe()``."""
        with self._lock:
            return {
                "path": str(self.root),
                "sync": self.sync,
                "snapshot_every": self.snapshot_every,
                "alive": self.liveness.alive,
                "engines": sorted(self._stores),
                "skipped_engines": list(self._skipped),
                "views": sorted(self._view_specs),
                "unpersisted_views": sorted(self._unpersisted_views),
                "checkpoints": {name: store.checkpoint_state()
                                for name, store in sorted(self._stores.items())},
            }
