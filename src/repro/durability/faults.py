"""Fault-injection points for crash testing the durability subsystem.

A *fault point* is a named place in the durability code where a test can
arrange for the process to "die": :func:`arm` registers the point, and the
first time execution reaches it (:func:`trip`), the durability manager
marks itself dead — every subsequent WAL append, snapshot or manifest write
becomes a silent no-op, exactly as if the process had been killed at that
instant — and an :class:`InjectedFault` propagates out of the mutator that
hit it.  The test then abandons the in-memory system and re-opens the data
directory, which is the recovery path a real crash would exercise.

Built-in points (see :mod:`repro.durability.wal` / ``manager``):

* ``"wal.append"`` — die mid-append, leaving a torn trailing record,
* ``"snapshot.write"`` — die after writing a snapshot's temp file but
  before the atomic rename (the manifest never references it),
* ``"rebalance.cutover"`` — die after the new shard generation is
  snapshotted but before the facade manifest swap (recovery must come back
  on the *old* topology).
"""

from __future__ import annotations

import threading

#: Names of the fault points compiled into the durability subsystem.
KNOWN_POINTS = ("wal.append", "snapshot.write", "rebalance.cutover")


class InjectedFault(RuntimeError):
    """Raised when execution reaches an armed fault point."""


_lock = threading.Lock()
_armed: dict[str, int] = {}


def arm(point: str, *, skip: int = 0) -> None:
    """Arm ``point`` to fire after ``skip`` passes through it (one-shot)."""
    with _lock:
        _armed[point] = skip


def disarm(point: str) -> None:
    """Disarm ``point`` if armed."""
    with _lock:
        _armed.pop(point, None)


def clear() -> None:
    """Disarm every fault point (test teardown)."""
    with _lock:
        _armed.clear()


def trip(point: str) -> bool:
    """Whether an armed ``point`` fires now (consumes the arming)."""
    with _lock:
        if point not in _armed:
            return False
        if _armed[point] > 0:
            _armed[point] -= 1
            return False
        del _armed[point]
        return True
