"""Atomic snapshot and manifest files for the durability subsystem.

Snapshots are single framed records (same length+crc32 framing as the WAL)
written to a temp file and renamed into place, so a reader either sees a
complete, checksummed snapshot or none at all.  The manifest is a small
JSON file — also written atomically — naming the snapshot to restore from
and the WAL segment to replay after it:

``{"snapshot_id", "snapshot", "wal_segment", "scoped_versions", ...}``

The recovery invariant: the state in the manifest's snapshot equals the
integral of every WAL record up to (excluding) ``wal_segment``, so restore
= load snapshot + replay segments ``>= wal_segment``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.durability import faults
from repro.durability.wal import Liveness, decode_stream, encode_record
from repro.exceptions import StorageError

MANIFEST_NAME = "manifest.json"
SNAPSHOT_PREFIX = "snap-"
SNAPSHOT_SUFFIX = ".pkl"


def snapshot_name(snapshot_id: int) -> str:
    """Filename of snapshot ``snapshot_id``."""
    return f"{SNAPSHOT_PREFIX}{snapshot_id:08d}{SNAPSHOT_SUFFIX}"


def snapshot_id(name: str) -> int | None:
    """Snapshot id encoded in ``name``, or ``None`` for other files."""
    if not (name.startswith(SNAPSHOT_PREFIX) and name.endswith(SNAPSHOT_SUFFIX)):
        return None
    digits = name[len(SNAPSHOT_PREFIX):-len(SNAPSHOT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def write_atomic(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a temp file + fsync + rename."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def write_snapshot(directory: Path, snap_id: int, payload: Any,
                   liveness: Liveness) -> str:
    """Atomically persist one snapshot payload; returns its filename.

    An armed ``"snapshot.write"`` fault point dies after the temp file is
    written but before the rename — the manifest never references the
    half-taken snapshot and recovery uses the previous one.
    """
    name = snapshot_name(snap_id)
    path = directory / name
    data = encode_record(payload)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    if faults.trip("snapshot.write"):
        liveness.kill()
        raise faults.InjectedFault(
            f"fault point 'snapshot.write' fired in {directory}"
        )
    os.replace(tmp, path)
    return name


def load_snapshot(directory: Path, name: str) -> Any:
    """Load and checksum-verify one snapshot file."""
    records, torn = decode_stream((directory / name).read_bytes())
    if len(records) != 1 or torn:
        raise StorageError(f"snapshot {name!r} in {directory} is corrupt")
    return records[0]


def write_manifest(directory: Path, manifest: dict[str, Any]) -> None:
    """Atomically replace the directory's manifest."""
    data = json.dumps(manifest, indent=2, sort_keys=True).encode()
    write_atomic(directory / MANIFEST_NAME, data)


def load_manifest(directory: Path) -> dict[str, Any] | None:
    """The directory's manifest, or ``None`` when it was never written."""
    path = directory / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise StorageError(f"unreadable manifest in {directory}: {exc}") from exc
