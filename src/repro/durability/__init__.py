"""Durable storage and crash recovery for the polystore.

WAL-backed changelog capture, atomic per-engine snapshots with manifest
files, and replay-based recovery — see :mod:`repro.durability.manager` for
the architecture and ``DESIGN.md`` for the on-disk format.
"""

from repro.durability import faults
from repro.durability.faults import InjectedFault, arm, clear, disarm
from repro.durability.manager import DurabilityManager, EngineStore, ShardedStore
from repro.durability.wal import SYNC_POLICIES

__all__ = [
    "SYNC_POLICIES",
    "DurabilityManager",
    "EngineStore",
    "InjectedFault",
    "ShardedStore",
    "arm",
    "clear",
    "disarm",
    "faults",
]
