"""Segmented, checksummed write-ahead log files.

Every record is framed as ``<u32 length><u32 crc32><pickle payload>``; a
reader that finds a frame whose length or checksum does not hold treats the
log as ending at the previous record — the torn-tail truncation a crash
mid-append requires.  Segments (``wal-%08d.log``) are rotated at every
checkpoint, so a manifest can reference a segment number and recovery
replays whole segments from there; offsets within a segment are never
needed.

Sync policies trade write latency for the durability window:

* ``"always"`` — flush + ``fsync`` after every record (no loss window),
* ``"interval"`` — flush after every record, ``fsync`` at most once per
  configured interval (loss window = the interval, bounded data at risk),
* ``"off"`` — library buffering only (crash may lose the OS buffer; the
  checksummed framing still guarantees a clean, truncated recovery).
"""

from __future__ import annotations

import os
import pickle
import struct
import time
import zlib
from pathlib import Path
from typing import Any

from repro.durability import faults
from repro.exceptions import StorageError
from repro.obs import Observability

#: Valid values for the ``sync`` policy knob.
SYNC_POLICIES = ("always", "interval", "off")

_HEADER = struct.Struct("<II")

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"


def segment_name(index: int) -> str:
    """Filename of WAL segment ``index``."""
    return f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}"


def segment_index(name: str) -> int | None:
    """Segment index encoded in ``name``, or ``None`` for other files."""
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    digits = name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def encode_record(record: Any) -> bytes:
    """Frame one record (length + crc32 + pickle)."""
    payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_stream(data: bytes) -> tuple[list[Any], int]:
    """Decode framed records; returns ``(records, torn_trailing_bytes)``.

    Decoding stops at the first frame whose length or checksum does not
    hold; the remaining byte count is reported so recovery can surface that
    a torn/corrupt tail was truncated.
    """
    records: list[Any] = []
    pos = 0
    total = len(data)
    while pos < total:
        if pos + _HEADER.size > total:
            break
        length, crc = _HEADER.unpack_from(data, pos)
        start = pos + _HEADER.size
        payload = data[start:start + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            break
        try:
            records.append(pickle.loads(payload))
        except Exception:  # noqa: BLE001 - a corrupt-but-checksummed frame
            break
        pos = start + length
    return records, total - pos


def read_records(directory: Path, start_segment: int) -> tuple[list[Any], int]:
    """All records in segments ``>= start_segment``, oldest first.

    Returns ``(records, truncated_records)`` where the second element
    counts torn/corrupt tails dropped.  Corruption in a non-final segment
    also stops the replay there (everything after it is unreachable without
    the dropped records), which the truncation count surfaces.
    """
    paths: list[tuple[int, Path]] = []
    for entry in directory.iterdir():
        index = segment_index(entry.name)
        if index is not None and index >= start_segment:
            paths.append((index, entry))
    paths.sort()
    records: list[Any] = []
    truncated = 0
    for position, (_, path) in enumerate(paths):
        decoded, torn_bytes = decode_stream(path.read_bytes())
        records.extend(decoded)
        if torn_bytes:
            truncated += 1
            if position != len(paths) - 1:
                # Records beyond a mid-log corruption cannot be applied in
                # order; count the unreadable segments and stop.
                truncated += len(paths) - position - 1
            break
    return records, truncated


class WalWriter:
    """Appends framed records to the current segment of one WAL directory."""

    def __init__(self, directory: Path, liveness: "Liveness", *,
                 sync: str = "interval", sync_interval_s: float = 0.05,
                 start_segment: int = 0,
                 obs: Observability | None = None, label: str = "") -> None:
        if sync not in SYNC_POLICIES:
            raise StorageError(
                f"unknown WAL sync policy {sync!r}; choose one of {SYNC_POLICIES}"
            )
        self.directory = directory
        self.sync = sync
        self.sync_interval_s = sync_interval_s
        self._liveness = liveness
        self._segment = start_segment
        #: Observability hub + the engine label appends/fsyncs report under.
        self._obs = obs if obs is not None else Observability.disabled()
        self._label = label or directory.name
        self._file = open(directory / segment_name(start_segment), "ab")
        self._last_fsync = time.monotonic()

    @property
    def segment(self) -> int:
        """Index of the segment currently being appended to."""
        return self._segment

    def append(self, record: Any) -> None:
        """Append one record under the configured sync policy.

        An armed ``"wal.append"`` fault point writes half the frame, kills
        the manager and raises — the on-disk result is exactly the torn
        trailing record a mid-append crash leaves.
        """
        if not self._liveness.alive:
            return
        frame = encode_record(record)
        if faults.trip("wal.append"):
            self._file.write(frame[:max(1, len(frame) // 2)])
            self._file.flush()
            self._liveness.kill()
            raise faults.InjectedFault(
                f"fault point 'wal.append' fired in {self.directory}"
            )
        self._file.write(frame)
        if self._obs.enabled:
            self._obs.wal_appends_total.inc(engine=self._label)
        if self.sync == "off":
            return
        self._file.flush()
        if self.sync == "always":
            self._fsync()
        else:
            now = time.monotonic()
            if now - self._last_fsync >= self.sync_interval_s:
                self._fsync()
                self._last_fsync = now

    def _fsync(self) -> None:
        """``fsync`` the current segment, timed and traced when obs is on."""
        obs = self._obs
        if not obs.enabled:
            os.fsync(self._file.fileno())
            return
        with obs.tracer.span("wal_fsync", "durability", engine=self._label,
                             segment=self._segment):
            start = time.perf_counter()
            os.fsync(self._file.fileno())
        obs.wal_fsync_seconds.observe(time.perf_counter() - start,
                                      engine=self._label)

    def rotate(self) -> int:
        """Start a fresh segment (called at every checkpoint)."""
        if not self._liveness.alive:
            return self._segment
        self._file.flush()
        if self.sync != "off":
            os.fsync(self._file.fileno())
        self._file.close()
        self._segment += 1
        self._file = open(self.directory / segment_name(self._segment), "ab")
        return self._segment

    def close(self) -> None:
        """Flush, sync and close the current segment."""
        if self._file.closed:
            return
        if self._liveness.alive:
            self._file.flush()
            os.fsync(self._file.fileno())
        self._file.close()


class Liveness:
    """Shared am-I-still-alive flag simulating process death.

    A fired fault point kills the whole durability manager: every store
    sharing this flag stops writing, so the on-disk state is frozen at the
    instant of the fault — which is what recovery must then be able to
    consume.
    """

    def __init__(self) -> None:
        self._dead = False

    @property
    def alive(self) -> bool:
        return not self._dead

    def kill(self) -> None:
        self._dead = True
