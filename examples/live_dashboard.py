"""A live revenue dashboard backed by an incremental materialized view.

The recommendation workload's transactions table (paper Figure 1) feeds a
category-revenue dashboard that is polled far more often than it changes.
Without a view, every poll recomputes the aggregation over the full table;
with a registered :class:`~repro.views.MaterializedView`, each poll reads
maintained state and pays only for the *delta* since the last refresh —
the engines' scoped changelogs carry every write as Z-set entries, and the
incremental compiler pass keeps the group sums/counts exact through
inserts, deletes and updates.

The dashboard program never mentions the view: it is written against the
base table, and the compiler rewrites the matching subtree into a
``view_read`` automatically.

Run with:  python examples/live_dashboard.py
Fast mode: EXAMPLES_FAST=1 python examples/live_dashboard.py
"""

from __future__ import annotations

import os

from repro import DataflowProgram, col
from repro.compiler.pipeline import CompilerOptions
from repro.core import build_accelerated_polystore
from repro.eide.dataflow import Dataset
from repro.stores import KeyValueEngine, RelationalEngine, TimeseriesEngine
from repro.workloads import generate_recommendation, load_recommendation

FAST = bool(os.environ.get("EXAMPLES_FAST"))
NUM_CUSTOMERS = 150 if FAST else 1200
TICKS = 3 if FAST else 6
ORDERS_PER_TICK = 20 if FAST else 60


def main() -> None:
    print(f"Loading the retail dataset ({NUM_CUSTOMERS} customers)...")
    dataset = generate_recommendation(NUM_CUSTOMERS, seed=13)
    relational = RelationalEngine("sales-db")
    keyvalue = KeyValueEngine("profiles")
    timeseries = TimeseriesEngine("clickstream")
    load_recommendation(dataset, relational=relational, keyvalue=keyvalue,
                        timeseries=timeseries)
    system = build_accelerated_polystore([relational, keyvalue, timeseries])

    # The dashboard's aggregation, registered as a deferred view: it
    # refreshes (incrementally) at read time whenever writes arrived.
    revenue = (system.dataset("sales-db").table("transactions")
               .filter(col("amount") > 0.0)
               .aggregate(["category"],
                          revenue=("sum", "amount"),
                          orders=("count", None),
                          avg_order=("avg", "amount")))
    view = system.create_view("revenue_by_category", revenue, policy="deferred")
    print(f"Registered view: {view!r}")

    # The dashboard is an ordinary prepared program over the *base* table;
    # the compiler rewrites the matching subtree to read the view.
    dashboard = DataflowProgram("revenue-dashboard")
    dashboard.output("by_category", Dataset(revenue.node).sort(
        "revenue", descending=True))
    session = system.session(name="dashboard")
    prepared = session.prepare(dashboard)

    next_txn_id = 10_000_000
    recompute_ms = refresh_ms = 0.0
    for tick in range(TICKS):
        # Order traffic lands between polls: inserts plus a few corrections.
        batch = [(next_txn_id + i, (tick * 31 + i) % NUM_CUSTOMERS,
                  5.0 + (i % 40), ("grocery", "electronics", "travel",
                                   "apparel", "home")[i % 5], 1000.0 + tick)
                 for i in range(ORDERS_PER_TICK)]
        relational.insert("transactions", batch)
        next_txn_id += ORDERS_PER_TICK
        relational.update_rows("transactions",
                               col("txn_id") == next_txn_id - 1,
                               {"amount": 500.0})

        result = prepared.run()
        rows = result.output("by_category").to_dicts()
        view_records = [r for r in result.report.records
                        if r.kind == "view_read"]
        refresh_charged = sum(r.details.get("refresh_charged_s", 0.0)
                              for r in view_records)
        refresh_ms += refresh_charged * 1000

        # What the same poll costs without the view (full recompute).
        baseline = system.execute(dashboard,
                                  options=CompilerOptions(use_views=False))
        recompute_ms += baseline.total_time_s * 1000

        top = rows[0]
        print(f"\ntick {tick + 1}: +{ORDERS_PER_TICK} orders, 1 correction")
        print(f"  top category : {top['category']:<12} "
              f"revenue {top['revenue']:>10.2f} ({top['orders']} orders)")
        print(f"  view refresh : {refresh_charged * 1000:8.3f} ms charged "
              f"(delta of {system.view('revenue_by_category').last_delta_rows} rows)")
        print(f"  recompute    : {baseline.total_time_s * 1000:8.3f} ms charged")
        assert sorted(map(str, rows)) == sorted(
            map(str, baseline.output("by_category").to_dicts()))

    stats = view.describe()
    print(f"\nView after {TICKS} ticks: {stats['incremental_refreshes']} "
          f"incremental refreshes, {stats['full_recomputes']} full recomputes")
    if refresh_ms:
        print(f"Charged maintenance total: {refresh_ms:.3f} ms vs "
              f"{recompute_ms:.2f} ms recomputing every poll "
              f"({recompute_ms / max(refresh_ms, 1e-9):.1f}x)")


if __name__ == "__main__":
    main()
