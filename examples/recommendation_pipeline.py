"""Enterprise recommendation pipeline across three data stores (paper Figure 1).

Customers and transactions live in an RDBMS, user profiles in a key/value
store and clickstreams in a timeseries store.  The pipeline is declared with
the composable dataflow API: engine scans composed into a feature table that
trains a next-best-offer model.  The example also shows a reporting query, a
structured-predicate point read (the kind the compiler pushes into the scan
— and, on sharded deployments, routes to the owning shard), and the
compiler's view of the optimized plan.

Run with:  python examples/recommendation_pipeline.py
Fast mode: EXAMPLES_FAST=1 python examples/recommendation_pipeline.py
"""

from __future__ import annotations

import os

from repro import DataflowProgram, col
from repro.core import build_accelerated_polystore
from repro.stores import KeyValueEngine, MLEngine, RelationalEngine, TimeseriesEngine
from repro.workloads import generate_recommendation, load_recommendation

FAST = bool(os.environ.get("EXAMPLES_FAST"))
NUM_CUSTOMERS = 120 if FAST else 800
EPOCHS = 2 if FAST else 4


def build_recommendation_flow(system) -> DataflowProgram:
    """The Figure 1 program: RDBMS ⋈ KV ⋈ timeseries -> train."""
    spend = (system.dataset("sales-db").table("transactions")
             .aggregate(["customer_id"],
                        total_spend=("sum", "amount"), n_orders=("count", None))
             .named("spend"))
    profiles = system.dataset("profiles").kv(key_prefix="customer/").named("profiles")
    engagement = system.dataset("clickstream").timeseries("clicks/").named("engagement")
    behaviour = (spend.join(engagement, left_key="customer_id", right_key="pid")
                 .named("behaviour"))
    features = (behaviour.join(profiles, left_key="customer_id",
                               right_key="customer_id").named("features"))
    model = features.train(label_column="converted", model_name="offer_model",
                           epochs=EPOCHS, engine="reco-ml")
    program = DataflowProgram("next-best-offer")
    program.output("offer_model", model)
    return program


def build_top_spenders_flow(system, k: int) -> DataflowProgram:
    """A reporting query: the top-k customers by total spend."""
    top = (system.dataset("sales-db").table("transactions")
           .aggregate(["customer_id"], total_spend=("sum", "amount"))
           .sort("total_spend", descending=True)
           .limit(k))
    program = DataflowProgram("top-spenders")
    program.output("top", top)
    return program


def build_customer_flow(system, customer_id: int) -> DataflowProgram:
    """A structured-predicate point read the compiler pushes into the scan."""
    rows = (system.dataset("sales-db").table("transactions")
            .filter(col("customer_id") == customer_id)
            .aggregate([], total=("sum", "amount"), n=("count", None)))
    program = DataflowProgram("one-customer")
    program.output("summary", rows)
    return program


def main() -> None:
    print(f"Generating a synthetic retail dataset with {NUM_CUSTOMERS} customers...")
    dataset = generate_recommendation(NUM_CUSTOMERS, seed=7)

    relational = RelationalEngine("sales-db")
    keyvalue = KeyValueEngine("profiles")
    timeseries = TimeseriesEngine("clickstream")
    ml = MLEngine("reco-ml")
    load_recommendation(dataset, relational=relational, keyvalue=keyvalue,
                        timeseries=timeseries)
    system = build_accelerated_polystore([relational, keyvalue, timeseries, ml])

    # A reporting query that stays inside the relational engine.
    report = system.execute(build_top_spenders_flow(system, 5))
    print("\nTop 5 customers by spend:")
    for row in report.output("top").to_dicts():
        print(f"  customer {row['customer_id']:>4}  total spend {row['total_spend']:.2f}")

    # A keyed read: the filter is absorbed into the scan as structured IR
    # (with an index it becomes an index_seek; on a sharded engine it
    # contacts only the owning shard).
    summary = system.execute(build_customer_flow(system, 7)).output("summary")
    row = summary.to_dicts()[0]
    print(f"\nCustomer 7: {row['n']} transactions totalling {row['total']:.2f}")

    # The cross-store recommendation program.
    program = build_recommendation_flow(system)
    compilation = system.compile(program)
    print("\nOptimized IR for the recommendation program:")
    print(compilation.graph.render())

    print("\nExecution-mode comparison:")
    print(f"{'mode':<22}{'charged (ms)':>14}{'offloaded ops':>15}{'accuracy':>10}")
    for mode in ("one_size_fits_all", "cpu_polystore", "polystore++"):
        result = system.execute(program, mode=mode)
        model = result.output("offer_model")
        print(f"{mode:<22}{result.total_time_s * 1e3:>14.2f}"
              f"{result.report.offloaded_tasks:>15}"
              f"{model['metrics']['accuracy']:>10.3f}")


if __name__ == "__main__":
    main()
