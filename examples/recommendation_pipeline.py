"""Enterprise recommendation pipeline across three data stores (paper Figure 1).

Customers and transactions live in an RDBMS, user profiles in a key/value
store and clickstreams in a timeseries store.  The heterogeneous program
joins all three into a feature table and trains a next-best-offer model; the
example also shows a plain reporting query and the compiler's view of the
optimized plan.

Run with:  python examples/recommendation_pipeline.py
"""

from __future__ import annotations

from repro.core import build_accelerated_polystore
from repro.stores import KeyValueEngine, MLEngine, RelationalEngine, TimeseriesEngine
from repro.workloads import (
    build_recommendation_program,
    build_top_spenders_program,
    generate_recommendation,
    load_recommendation,
)

NUM_CUSTOMERS = 800


def main() -> None:
    print(f"Generating a synthetic retail dataset with {NUM_CUSTOMERS} customers...")
    dataset = generate_recommendation(NUM_CUSTOMERS, seed=7)

    relational = RelationalEngine("sales-db")
    keyvalue = KeyValueEngine("profiles")
    timeseries = TimeseriesEngine("clickstream")
    ml = MLEngine("reco-ml")
    load_recommendation(dataset, relational=relational, keyvalue=keyvalue,
                        timeseries=timeseries)
    system = build_accelerated_polystore([relational, keyvalue, timeseries, ml])

    # A reporting query that stays inside the relational engine.
    report = system.execute(build_top_spenders_program(5), mode="polystore++")
    print("\nTop 5 customers by spend:")
    for row in report.output("top").to_dicts():
        print(f"  customer {row['customer_id']:>4}  total spend {row['total_spend']:.2f}")

    # The cross-store recommendation program.
    program = build_recommendation_program(epochs=4)
    compilation = system.compile(program)
    print("\nOptimized IR for the recommendation program:")
    print(compilation.graph.render())

    print("\nExecution-mode comparison:")
    print(f"{'mode':<22}{'charged (ms)':>14}{'offloaded ops':>15}{'accuracy':>10}")
    for mode in ("one_size_fits_all", "cpu_polystore", "polystore++"):
        result = system.execute(program, mode=mode)
        model = result.output("offer_model")
        print(f"{mode:<22}{result.total_time_s * 1e3:>14.2f}"
              f"{result.report.offloaded_tasks:>15}"
              f"{model['metrics']['accuracy']:>10.3f}")


if __name__ == "__main__":
    main()
