"""Observability end to end: trace a durable sharded deployment.

A three-shard relational engine is opened on durable storage with
``durability_sync="always"`` so every ingest batch pays a real WAL fsync,
then a scatter-gathered aggregation is prepared and re-run — all with
observability on at ``obs_trace_sample_rate=1.0``.  The example then
checks the claims the instrumentation makes:

* the Prometheus export parses and contains the core metric families,
* per-shard subtask spans nest (transitively) under their request span,
* WAL fsync spans nest under the ingest request that caused them,
* the span buffer converts to a Chrome ``trace_event`` document —
  pass ``--trace PATH`` to write it, then load it in
  https://ui.perfetto.dev or ``about:tracing``,
* the sampling profiler attributes stacks to the running requests —
  pass ``--profile PATH`` to write a speedscope JSON document (open it
  at https://speedscope.app),
* lifecycle events land in the structured log with trace correlation —
  pass ``--logs PATH`` to dump the buffer as JSON lines,
* ``system.health()`` rolls component checks and SLO burn rates up to
  ``ok`` on this healthy deployment.

Run with:  PYTHONPATH=src python examples/observability_trace.py --trace trace.json
Fast mode: EXAMPLES_FAST=1 ... (CI smoke settings)
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

from repro import DataflowProgram, SystemConfig
from repro.cluster import ShardedEngine
from repro.core import build_accelerated_polystore
from repro.datamodel import DataType, make_schema
from repro.obs import ancestors, parse_prometheus_text
from repro.stores import RelationalEngine

FAST = bool(os.environ.get("EXAMPLES_FAST"))
N_ORDERS = 200 if FAST else 2_000
N_SHARDS = 3
RUNS = 3 if FAST else 10

#: Families the CI smoke step (and this example) require in the scrape.
CORE_FAMILIES = (
    "polystore_requests_total",
    "polystore_request_seconds",
    "polystore_plan_cache_total",
    "polystore_operators_total",
    "polystore_scatter_subtasks_total",
    "polystore_wal_appends_total",
    "polystore_wal_fsync_seconds",
)


def build_observed_deployment(data_dir: str):
    """A durable sharded deployment with tracing and profiling fully on."""
    config = SystemConfig(obs_enabled=True, obs_trace_sample_rate=1.0,
                          durability_sync="always",
                          obs_profile_enabled=True, obs_profile_hz=200.0)
    sales = ShardedEngine("sales", RelationalEngine, N_SHARDS)
    system = build_accelerated_polystore([sales], config=config)
    system.open(data_dir)
    return system, sales


def traced_ingest(system, sales) -> None:
    """Load orders inside a user-opened request span (WAL fsyncs nest here)."""
    schema = make_schema(("order_id", DataType.INT),
                        ("customer", DataType.STRING),
                        ("amount", DataType.FLOAT))
    with system.obs.tracer.request("ingest", rows=N_ORDERS):
        sales.create_table("orders", schema, shard_key="order_id")
        for start in range(0, N_ORDERS, 100):
            sales.insert("orders", [
                (i, f"c{i % 20}", float(i % 37) * 2.5)
                for i in range(start, min(start + 100, N_ORDERS))
            ])


def build_scan_program(system) -> DataflowProgram:
    """One scatter-gathered aggregation over every shard."""
    totals = (system.dataset("sales").table("orders")
              .aggregate(["customer"], total=("sum", "amount"),
                         n_orders=("count", None))
              .named("totals"))
    program = DataflowProgram("sharded_scan")
    program.output("totals", totals)
    return program


def check_span_nesting(system) -> tuple[int, int]:
    """Shard subtask and WAL fsync spans must sit under request spans."""
    spans = system.obs.tracer.spans()
    by_kind = {"shard": [], "wal_fsync": []}
    for span in spans:
        if span.name.startswith("shard:"):
            by_kind["shard"].append(span)
        elif span.name == "wal_fsync":
            by_kind["wal_fsync"].append(span)
    assert len(by_kind["shard"]) >= N_SHARDS, by_kind
    assert by_kind["wal_fsync"], "sync=always ingest produced no fsync spans"
    for kind, group in by_kind.items():
        for span in group:
            chain = [parent.name for parent in ancestors(span, spans)]
            assert any(name.startswith("request:") or name == "ingest"
                       for name in chain), (kind, span.name, chain)
    return len(by_kind["shard"]), len(by_kind["wal_fsync"])


def _arg(flag: str) -> str | None:
    if flag in sys.argv:
        return sys.argv[sys.argv.index(flag) + 1]
    return None


def main() -> None:
    trace_path = _arg("--trace")
    profile_path = _arg("--profile")
    logs_path = _arg("--logs")

    with tempfile.TemporaryDirectory(prefix="obs-trace-") as data_dir:
        system, sales = build_observed_deployment(data_dir)
        traced_ingest(system, sales)

        program = build_scan_program(system)
        with system.session(name="obs-demo") as session:
            prepared = session.prepare(program, mode="polystore++")
            for _ in range(RUNS):
                result = prepared.run()
        print(f"aggregated {len(result.output('totals'))} customer groups "
              f"over {N_SHARDS} shards, {RUNS} prepared runs")

        # -- Prometheus: the scrape parses and carries the core families --
        scrape = system.export_prometheus()
        families = parse_prometheus_text(scrape)
        missing = [name for name in CORE_FAMILIES if name not in families]
        assert not missing, f"scrape is missing families: {missing}"
        print(f"prometheus scrape: {len(families)} families, "
              f"{sum(len(samples) for samples in families.values())} samples")
        print("  " + "\n  ".join(
            line for line in scrape.splitlines()
            if line.startswith("polystore_requests_total")
            or line.startswith("polystore_scatter_subtasks_total")))

        # -- span tree: subtasks and fsyncs nest under their requests --
        shards, fsyncs = check_span_nesting(system)
        print(f"span nesting ok: {shards} shard subtask spans, "
              f"{fsyncs} WAL fsync spans, all under request spans")

        # -- Chrome trace: write it for Perfetto / about:tracing --
        document = system.export_chrome_trace()
        print(f"chrome trace: {len(document['traceEvents'])} events")
        if trace_path:
            with open(trace_path, "w") as handle:
                json.dump(document, handle, default=repr)
            print(f"wrote {trace_path} — open it at https://ui.perfetto.dev")

        # -- profiler: the sampler saw this process working --
        system.obs.profiler.stop()
        speedscope = system.export_profile(fmt="speedscope")
        samples = speedscope["profiles"][0]["samples"]
        assert samples, "profiler captured no stacks"
        print(f"profiler: {len(samples)} distinct stacks, "
              f"{system.obs.profiler.describe()['samples']} samples")
        if profile_path:
            with open(profile_path, "w") as handle:
                json.dump(speedscope, handle)
            print(f"wrote {profile_path} — open it at https://speedscope.app")

        # -- structured log: durability lifecycle events were recorded --
        records = system.export_logs(component="durability")
        assert any(r["event"] == "wal_checkpoint" for r in records), records
        print(f"structured log: {len(system.export_logs())} records "
              f"({len(records)} durability)")
        if logs_path:
            with open(logs_path, "w") as handle:
                handle.write(system.obs.events.export_jsonl())
            print(f"wrote {logs_path} (JSON lines)")

        # -- health: checks and SLO burn rates roll up to ok --
        health = system.health()
        assert health["status"] == "ok", health
        assert not health["burning_slos"], health
        print("health: " + ", ".join(
            f"{check['name']}={check['status']}"
            for check in health["checks"]))

        system.close()


if __name__ == "__main__":
    main()
