"""Snorkel-style weak-supervision pipeline with SQL in the training loop (Figure 3).

The imperative loop issues one ``load_data`` SQL query per mini-batch, exactly
as the paper's Figure 3 shows; the declarative version expresses the same
pipeline as a heterogeneous program so the Polystore++ compiler can
deduplicate the scan and offload the data access.  The example also runs the
accelerated migration comparison the pipeline's data movement relies on.

Run with:  python examples/snorkel_labeling_loop.py
"""

from __future__ import annotations

import time

from repro.accelerators import MigrationASIC
from repro.core import build_accelerated_polystore
from repro.middleware.migration import DataMigrator
from repro.stores import MLEngine, RelationalEngine
from repro.workloads import (
    build_snorkel_program,
    generate_documents,
    load_documents,
    run_labeling_pipeline,
)

NUM_DOCUMENTS = 3_000


def main() -> None:
    print(f"Generating {NUM_DOCUMENTS} unlabeled documents in the RDBMS...")
    documents = generate_documents(NUM_DOCUMENTS, seed=13)
    relational = RelationalEngine("corpus-db")
    load_documents(documents, relational)

    print("\n1. Imperative loop (one SQL query per mini-batch, as in Figure 3):")
    start = time.perf_counter()
    loop_result = run_labeling_pipeline(relational, epochs=3, batch_size=256)
    elapsed = time.perf_counter() - start
    print(f"   SQL queries issued : {loop_result.sql_queries_issued}")
    print(f"   rows loaded        : {loop_result.rows_loaded}")
    print(f"   accuracy vs truth  : {loop_result.accuracy_vs_true:.3f}")
    print(f"   wall time          : {elapsed:.2f} s")

    print("\n2. The same pipeline as a declarative heterogeneous program:")
    system = build_accelerated_polystore([relational, MLEngine("label-ml")])
    result = system.execute(build_snorkel_program(epochs=3), mode="polystore++")
    model = result.output("label_model")
    print(f"   IR operators       : {len(result.report.records)}")
    print(f"   charged time       : {result.total_time_s * 1e3:.2f} ms")
    print(f"   model accuracy     : {model['metrics']['accuracy']:.3f}")

    print("\n3. Migration-path comparison for the training table (Pipegen claim):")
    table = relational.scan("documents")
    migrator = DataMigrator(serializer_accelerator=MigrationASIC())
    for strategy, report in migrator.compare_strategies(table).items():
        print(f"   {strategy:<12} total {report.total_s * 1e3:8.3f} ms   "
              f"transform {report.transformation_s * 1e3:8.3f} ms   "
              f"payload {report.payload_bytes / 1024:8.1f} KiB")


if __name__ == "__main__":
    main()
