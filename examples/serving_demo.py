"""Serving demo: a durable sharded deployment behind the async front-end.

Builds a Polystore++ deployment with a durable data directory and a sharded
relational engine, starts the serving tier (``system.serve()``), registers
two read programs, and drives it with concurrent tenants over both
transports:

* tenant **pro** (stride weight 4) runs a fleet of in-process clients,
* tenant **free** is quota-throttled (2 requests/s) and collects the
  retryable ``QUOTA_EXCEEDED`` rejections a well-behaved client backs off
  on,
* one client speaks real TCP to show the length-prefixed JSON wire
  protocol round-trips.

The demo finishes by printing the per-tenant serving families from the
Prometheus scrape — requests by outcome, rejects by reason, queue-depth
gauges — exactly what a dashboard would consume.

Run with:  PYTHONPATH=src python examples/serving_demo.py
Fast mode: EXAMPLES_FAST=1 ...  (CI smoke settings)
"""

from __future__ import annotations

import os
import tempfile
import threading

from repro import DataflowProgram, SystemConfig, col
from repro.core import PolystorePlusPlus
from repro.datamodel import DataType, Table, make_schema
from repro.eide import Param
from repro.serve.client import ServeError, TcpClient
from repro.stores import RelationalEngine

FAST = bool(os.environ.get("EXAMPLES_FAST"))
N_ROWS = 500 if FAST else 5_000
N_PRO_CLIENTS = 4 if FAST else 12
N_REQUESTS = 4 if FAST else 10
N_FREE_ATTEMPTS = 6 if FAST else 15


def build_system(data_dir: str) -> PolystorePlusPlus:
    """A durable deployment with a 4-way sharded relational engine."""
    system = PolystorePlusPlus(SystemConfig(
        data_dir=data_dir, obs_enabled=True, obs_trace_sample_rate=0.05,
        serve_pool_size=4))
    engine = system.register_sharded_engine("ordersdb", RelationalEngine, 4)
    schema = make_schema(("order_id", DataType.INT),
                         ("customer_id", DataType.INT),
                         ("amount", DataType.FLOAT))
    engine.load_table("orders", Table(schema, [
        (i, i % 100, (i % 37) * 3.5) for i in range(N_ROWS)
    ]), shard_key="order_id")
    return system


def register_programs(system, server) -> None:
    big_spenders = (system.dataset("ordersdb").table("orders")
                    .filter(col("amount") > Param("min_amount", default=100.0))
                    .aggregate(["customer_id"], spend=("sum", "amount")))
    program = DataflowProgram("big_spenders")
    program.output("spend", big_spenders)
    server.register("big_spenders", program)

    order_count = (system.dataset("ordersdb").table("orders")
                   .aggregate([], n=("count", None)))
    count_program = DataflowProgram("order_count")
    count_program.output("n", order_count)
    server.register("order_count", count_program)


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="polystore-serving-") as data_dir:
        system = build_system(data_dir)
        server = system.serve(max_queue=64)
        try:
            register_programs(system, server)
            server.set_tenant("pro", weight=4.0)
            server.set_tenant("free", rate=2.0, burst=2.0)

            print("== serving tier ==")
            print(f"TCP address        : {server.address[0]}:{server.address[1]}")
            print(f"programs           : {server.connect().programs()}")

            # -- tenant "pro": a fleet of concurrent in-process clients ----------------
            results = []

            def pro_client(client_id: int) -> None:
                client = server.connect()
                for step in range(N_REQUESTS):
                    response = client.execute(
                        "big_spenders",
                        {"min_amount": 50.0 + 10.0 * (step % 5)},
                        tenant="pro", timeout=120)
                    results.append(len(response["outputs"]["spend"]["rows"]))

            threads = [threading.Thread(target=pro_client, args=(i,))
                       for i in range(N_PRO_CLIENTS)]
            for thread in threads:
                thread.start()

            # -- tenant "free": throttled at 2 req/s, must back off --------------------
            free = server.connect()
            served = rejected = 0
            for _ in range(N_FREE_ATTEMPTS):
                try:
                    free.execute("order_count", tenant="free", timeout=120)
                    served += 1
                except ServeError as exc:
                    assert exc.code == "QUOTA_EXCEEDED" and exc.retryable
                    rejected += 1

            for thread in threads:
                thread.join()

            # -- one real TCP round trip ------------------------------------------------
            host, port = server.address
            with TcpClient(host, port) as tcp:
                over_tcp = tcp.execute("order_count", timeout=120)
            [[total]] = over_tcp["outputs"]["n"]["rows"]
            assert total == N_ROWS, f"TCP count {total} != {N_ROWS}"

            print("\n== traffic ==")
            print(f"pro requests served: {len(results)} "
                  f"({N_PRO_CLIENTS} clients x {N_REQUESTS})")
            print(f"free tenant        : {served} served, {rejected} "
                  "quota-rejected (retryable, with retry_after_s hints)")
            print(f"order_count via TCP: {total} rows")

            print("\n== /metrics scrape (serving families) ==")
            scrape = server.connect().metrics()
            for line in scrape.splitlines():
                if line.startswith("polystore_serve_") and "_bucket" not in line:
                    print(f"  {line}")

            assert len(results) == N_PRO_CLIENTS * N_REQUESTS
            assert rejected > 0, "the free tenant was never throttled"
        finally:
            server.stop()
            system.close()
    print("\nserving demo OK")


if __name__ == "__main__":
    main()
