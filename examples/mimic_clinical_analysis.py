"""Clinical analysis on a synthetic MIMIC-III-like dataset (paper Figure 2).

Reproduces the paper's motivating application: predict whether a patient will
stay in hospital for more than five days, joining admissions (relational),
bedside vitals (timeseries) and clinical notes (text), then training a neural
network — and compares the three execution modes.

This example deliberately stays on the **legacy fluent builder API**
(``HeterogeneousProgram``): it doubles as the regression check that the
compatibility shim over the dataflow lowering keeps old-style programs
working unchanged (quickstart and the recommendation pipeline show the
dataflow API).

Run with:  python examples/mimic_clinical_analysis.py
"""

from __future__ import annotations

from repro.core import build_accelerated_polystore
from repro.eide import compile_natural_language
from repro.stores import GraphEngine, MLEngine, RelationalEngine, TextEngine, TimeseriesEngine
from repro.workloads import build_mimic_program, generate_mimic, load_mimic

NUM_PATIENTS = 600


def main() -> None:
    print(f"Generating a synthetic MIMIC-like dataset with {NUM_PATIENTS} patients...")
    dataset = generate_mimic(NUM_PATIENTS, points_per_patient=24, seed=42)

    relational = RelationalEngine("clinical-db")
    timeseries = TimeseriesEngine("monitors")
    text = TextEngine("notes-db")
    graph = GraphEngine("wards")
    ml = MLEngine("dnn-engine")
    load_mimic(dataset, relational=relational, timeseries=timeseries, text=text, graph=graph)

    system = build_accelerated_polystore([relational, timeseries, text, graph, ml])

    # The same query, phrased in natural language (paper §IV-A-e).
    nl_program = compile_natural_language(
        "Will patients have a long stay at the hospital (> 5 days) when they exit the ICU?",
        relational_engine="clinical-db", timeseries_engine="monitors",
        text_engine="notes-db", ml_engine="dnn-engine")
    print("\nNatural-language frontend produced this heterogeneous program:")
    print(nl_program.describe())

    program = build_mimic_program(epochs=4)
    print("\nExecuting the ICU-stay program under all three modes...\n")
    print(f"{'mode':<22}{'charged (ms)':>14}{'pipelined (ms)':>16}"
          f"{'migrated (KiB)':>16}{'accuracy':>10}")
    for mode in ("one_size_fits_all", "cpu_polystore", "polystore++"):
        result = system.execute(program, mode=mode)
        model = result.output("stay_model")
        print(f"{mode:<22}{result.total_time_s * 1e3:>14.2f}"
              f"{result.pipelined_time_s * 1e3:>16.2f}"
              f"{result.report.migration_bytes / 1024:>16.1f}"
              f"{model['metrics']['accuracy']:>10.3f}")

    # The ward-transfer graph adds a path-based feature outside the ML pipeline.
    path, hops = system.engine("wards").shortest_path("emergency", "recovery")
    print(f"\nTypical ward path emergency -> recovery: {' -> '.join(path)} ({hops:.0f} hops)")


if __name__ == "__main__":
    main()
