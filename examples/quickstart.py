"""Quickstart: build a Polystore++ deployment and run a dataflow program.

The example registers two engines (relational + timeseries), attaches the
simulated accelerator fleet, declares a heterogeneous pipeline with the
composable **dataflow API** — engine scans composed with ``.aggregate()``,
``.join()`` and ``.train()``, no SQL strings — and prints the execution
report for both the CPU polystore and the accelerated Polystore++ modes.  A
final section prepares the program through a :class:`repro.Session` and
re-executes it, showing what the plan cache and pinned scan snapshots save
over one-shot execution.

Run with:  python examples/quickstart.py
Fast mode: EXAMPLES_FAST=1 python examples/quickstart.py  (CI smoke settings)
"""

from __future__ import annotations

import os
import time

from repro import DataflowProgram
from repro.core import build_accelerated_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.stores import MLEngine, RelationalEngine, TimeseriesEngine

#: CI smoke mode shrinks the dataset and the re-execution loop.
FAST = bool(os.environ.get("EXAMPLES_FAST"))
N_ORDERS = 400 if FAST else 2_000
N_CUSTOMERS = 50 if FAST else 200
REPEATS = 3 if FAST else 10


def build_deployment(config=None):
    """Create and load the engines, then wrap them in a Polystore++ system."""
    relational = RelationalEngine("ordersdb")
    timeseries = TimeseriesEngine("telemetry")
    ml = MLEngine("ml")

    orders_schema = make_schema(
        ("order_id", DataType.INT), ("customer_id", DataType.INT),
        ("amount", DataType.FLOAT), ("returned", DataType.INT))
    orders = Table(orders_schema, [
        (i, i % N_CUSTOMERS, (i % 37) * 3.5, int((i % 37) * 3.5 > 90))
        for i in range(N_ORDERS)
    ])
    relational.load_table("orders", orders)

    for customer in range(N_CUSTOMERS):
        timeseries.append_many(
            f"sessions/{customer}",
            [(float(day), float((customer + day) % 10)) for day in range(30)])

    return build_accelerated_polystore([relational, timeseries, ml],
                                       config=config)


def build_program(system) -> DataflowProgram:
    """SQL-free pipeline: spend aggregate + session features -> churn model."""
    spend = (system.dataset("ordersdb").table("orders")
             .aggregate(["customer_id"],
                        total_spend=("sum", "amount"),
                        n_orders=("count", None),
                        any_return=("max", "returned"))
             .named("spend"))
    sessions = system.dataset("telemetry").timeseries("sessions/").named("sessions")
    features = (spend.join(sessions, left_key="customer_id", right_key="pid")
                .named("features"))
    model = features.train(label_column="any_return", model_name="return_model",
                           epochs=3, engine="ml")

    program = DataflowProgram("quickstart")
    program.output("return_model", model)
    return program


def demo_prepared_reexecution(system, program) -> None:
    """Prepare once, run many: the low-latency serving path."""
    start = time.perf_counter()
    for _ in range(REPEATS):
        system.execute(program, mode="polystore++")
    oneshot_ms = (time.perf_counter() - start) / REPEATS * 1e3

    with system.session(name="quickstart") as session:
        prepared = session.prepare(program, mode="polystore++")
        first = prepared.run()  # reads every engine, pins pure scan subtrees
        start = time.perf_counter()
        for _ in range(REPEATS):
            result = prepared.run()
        prepared_ms = (time.perf_counter() - start) / REPEATS * 1e3

        print("[prepared re-execution]")
        print(f"  compile once       : {prepared.compilation.compile_time_s * 1e3:.2f} ms "
              f"(skipped on every subsequent run)")
        print(f"  pinned scans       : {result.report.cached_tasks} of "
              f"{len(result.report.records)} operators replayed")
        print(f"  one-shot execute() : {oneshot_ms:.2f} ms/run")
        print(f"  prepared.run()     : {prepared_ms:.2f} ms/run "
              f"({oneshot_ms / prepared_ms:.1f}x faster)")
        print(f"  model accuracy     : "
              f"{first.output('return_model')['metrics']['accuracy']:.3f} "
              f"(identical every run)")
        print(f"  plan cache         : {session.stats()['plan_cache']}")


def main() -> None:
    system = build_deployment()
    program = build_program(system)
    print(program.describe())
    print()

    for mode in ("cpu_polystore", "polystore++"):
        result = system.execute(program, mode=mode)
        model = result.output("return_model")
        print(f"[{mode}]")
        print(f"  operators executed : {len(result.report.records)}")
        print(f"  offloaded operators: {result.report.offloaded_tasks}")
        print(f"  charged time       : {result.total_time_s * 1e3:.2f} ms "
              f"(pipelined {result.pipelined_time_s * 1e3:.2f} ms)")
        print(f"  migrated bytes     : {result.report.migration_bytes}")
        print(f"  model accuracy     : {model['metrics']['accuracy']:.3f}")
        print()

    demo_prepared_reexecution(system, program)


if __name__ == "__main__":
    main()
