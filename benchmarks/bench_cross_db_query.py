"""E12 — the paper's §III walk-through: Admission ⋈ Patients across two databases.

The Admission table lives in DB1 and the Patients table in DB2; DB2's
projection is migrated to DB1, which sort-merges on the admission date.
Polystore++ accelerates both the sort (FPGA bitonic network) and the
migration (offloaded serialization + RDMA), pipelining them to cut latency.
"""

from __future__ import annotations

import pytest

from benchmarks._emit import report_info
from repro.accelerators import FPGAAccelerator, MigrationASIC
from repro.core import PolystorePlusPlus
from repro.datamodel import DataType, Table, make_schema
from repro.eide import HeterogeneousProgram
from repro.stores import RelationalEngine
from repro.workloads.generator import rng_for

SIZES = [1_000, 10_000]


def build_two_database_deployment(rows: int) -> PolystorePlusPlus:
    """DB1 holds admissions, DB2 holds patients; both registered in one polystore."""
    rng = rng_for(rows)
    admissions_schema = make_schema(("pid", DataType.INT), ("admit_date", DataType.FLOAT),
                                    ("ward", DataType.STRING))
    patients_schema = make_schema(("pid", DataType.INT), ("age", DataType.INT),
                                  ("gender", DataType.STRING))
    db1 = RelationalEngine("db1")
    db2 = RelationalEngine("db2")
    db1.load_table("admissions", Table(admissions_schema, [
        (int(rng.integers(1, rows // 2 + 1)), float(rng.uniform(0, 1e6)),
         "icu" if rng.random() < 0.3 else "general")
        for _ in range(rows)
    ]))
    db2.load_table("patients", Table(patients_schema, [
        (pid, int(rng.integers(18, 95)), "F" if rng.random() < 0.5 else "M")
        for pid in range(1, rows // 2 + 1)
    ]))
    system = PolystorePlusPlus()
    system.register_engine(db1)
    system.register_engine(db2)
    system.register_accelerator(FPGAAccelerator())
    system.register_accelerator(MigrationASIC(), use_for_migration=True)
    return system


def cross_db_program() -> HeterogeneousProgram:
    """Project both tables on pid, join across databases, sort by admission date."""
    program = HeterogeneousProgram("admission-history")
    program.sql("admissions", "SELECT pid, admit_date, ward FROM admissions", engine="db1")
    program.sql("patients", "SELECT pid, age, gender FROM patients", engine="db2")
    program.join("history", left="admissions", right="patients", on="pid", engine="db1")
    program.python("sorted_history", lambda table: table.sort(["admit_date"]),
                   inputs=["history"], engine="db1")
    program.output("sorted_history")
    return program


@pytest.mark.parametrize("rows", SIZES)
@pytest.mark.parametrize("mode", ["cpu_polystore", "polystore++"])
def test_cross_db_sort_merge_query(benchmark, rows, mode):
    """The cross-database query under CPU-only and accelerated execution."""
    system = build_two_database_deployment(rows)
    program = cross_db_program()

    result = benchmark.pedantic(lambda: system.execute(program, mode=mode),
                                iterations=1, rounds=3)
    history = result.output("sorted_history")
    dates = history.column("admit_date")
    assert dates == sorted(dates)
    benchmark.extra_info["experiment"] = "E12"
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info.update(report_info(result))
    benchmark.extra_info["result_rows"] = len(history)
