"""E4 — data migration: CSV vs binary pipe vs RDMA vs accelerated (§III-A-3).

Expected shape (the Pipegen claim): the naive CSV path is dominated by format
transformation, binary pipes remove most of it, and the accelerated path
(offloaded serialization pipelined with RDMA transfer) removes most of the
remainder.
"""

from __future__ import annotations

import pytest

from repro.accelerators import MigrationASIC
from repro.datamodel import DataType, Table, make_schema
from repro.middleware.migration import DataMigrator, SimulatedNetwork

SIZES = [1_000, 10_000, 100_000]
STRATEGIES = ["csv", "binary_pipe", "rdma", "accelerated"]


def pipegen_table(rows: int) -> Table:
    """The Pipegen benchmark schema: 4 ints and 3 doubles per element."""
    schema = make_schema(
        ("a", DataType.INT), ("b", DataType.INT), ("c", DataType.INT),
        ("d", DataType.INT), ("x", DataType.FLOAT), ("y", DataType.FLOAT),
        ("z", DataType.FLOAT))
    return Table(schema, [
        (i, i * 7, i * 13, -i, i * 3.14159, i / 7.0, i * -2.71828)
        for i in range(rows)
    ])


@pytest.fixture(scope="module")
def tables():
    return {rows: pipegen_table(rows) for rows in SIZES}


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("rows", SIZES)
def test_migration_strategy(benchmark, tables, strategy, rows):
    """Migrate the Pipegen-style table under each strategy."""
    table = tables[rows]
    migrator = DataMigrator(SimulatedNetwork(), serializer_accelerator=MigrationASIC())

    def run():
        _, report = migrator.migrate(table, strategy=strategy)
        return report

    report = benchmark(run)
    benchmark.extra_info["experiment"] = "E4"
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["modelled_total_s"] = report.total_s
    benchmark.extra_info["transformation_s"] = report.transformation_s
    benchmark.extra_info["transfer_s"] = report.transfer_s
    benchmark.extra_info["payload_bytes"] = report.payload_bytes
    if strategy == "csv":
        # Transformation, not the wire, dominates the naive path.
        assert report.transformation_s > report.transfer_s


@pytest.mark.parametrize("rows", [10_000])
def test_strategy_ordering(benchmark, tables, rows):
    """One call comparing every strategy; total time must fall monotonically."""
    table = tables[rows]
    migrator = DataMigrator(SimulatedNetwork(), serializer_accelerator=MigrationASIC())

    reports = benchmark(lambda: migrator.compare_strategies(table))
    totals = {name: report.total_s for name, report in reports.items()}
    benchmark.extra_info["experiment"] = "E4"
    benchmark.extra_info["totals_s"] = totals
    assert totals["csv"] > totals["binary_pipe"] > totals["accelerated"]
