"""E1 — operator offload: FPGA bitonic sort vs CPU sort (paper §III-A-1).

Expected shape: below the break-even granularity the host wins (offload
overhead dominates); above it the FPGA wins, with the advantage growing and
then saturating.
"""

from __future__ import annotations

import random

import pytest

from repro.accelerators import FPGAAccelerator, KernelRegistry, OffloadPlanner, WorkEstimate

SIZES = [1_000, 10_000, 100_000, 1_000_000]


def _rows(n: int) -> list[dict]:
    rng = random.Random(42)
    return [{"pid": i, "admit_date": rng.random() * 1e6} for i in range(n)]


@pytest.mark.parametrize("n", SIZES)
def test_cpu_sort(benchmark, n):
    """Host Timsort over n rows (the CPU baseline of E1)."""
    rows = _rows(n)
    result = benchmark(lambda: sorted(rows, key=lambda r: r["admit_date"]))
    assert len(result) == n
    benchmark.extra_info["experiment"] = "E1"
    benchmark.extra_info["rows"] = n


@pytest.mark.parametrize("n", SIZES)
def test_fpga_bitonic_sort_simulated(benchmark, n):
    """Simulated FPGA bitonic sort: reports modelled device time, not wall time."""
    fpga = FPGAAccelerator()
    planner = OffloadPlanner(KernelRegistry([fpga]))

    def decide():
        return planner.decide("sort", WorkEstimate(rows=n))

    decision = benchmark(decide)
    benchmark.extra_info["experiment"] = "E1"
    benchmark.extra_info["rows"] = n
    benchmark.extra_info["host_time_s"] = decision.host_time_s
    benchmark.extra_info["fpga_time_s"] = decision.accelerator_time_s
    benchmark.extra_info["offloaded"] = decision.offloaded
    benchmark.extra_info["speedup"] = decision.speedup
    # The paper's shape: offload only pays off above a granularity threshold.
    if n <= 1_000:
        assert not decision.offloaded
    if n >= 1_000_000:
        assert decision.offloaded and decision.speedup > 1.0


def test_fpga_sort_functional_correctness(benchmark):
    """The offloaded kernel produces exactly the host sort's output."""
    rows = _rows(4_000)
    fpga = FPGAAccelerator()

    def offload():
        values, _ = fpga.offload("bitonic_sort", rows, key=lambda r: r["admit_date"])
        return values

    result = benchmark(offload)
    assert [r["pid"] for r in result] == \
        [r["pid"] for r in sorted(rows, key=lambda r: r["admit_date"])]
    benchmark.extra_info["experiment"] = "E1"
