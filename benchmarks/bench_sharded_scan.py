"""Sharded scatter-gather throughput: scan + partial aggregate vs shard count.

The same sales table is loaded into a :class:`~repro.cluster.ShardedEngine`
with 1, 2 and 4 shards (hash-partitioned on ``order_id``), and one prepared
program — scan, filter, group-by partial aggregate — is re-executed against
each deployment.  The headline metric is *charged* throughput: the executor
charges a scatter-gathered operator its critical path (the slowest shard's
thread-CPU time plus the merge), modeling shards as independent machines the
same way migration charges model the network.  Throughput must improve
monotonically from 1 to 4 shards.

A second check rebalances the 2-shard deployment online to 4 shards and
verifies the query answers are identical before, during and after cutover.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_sharded_scan.py -q
Smoke mode (CI):  SHARDED_BENCH_ITERS=1 PYTHONPATH=src python -m pytest ...
"""

from __future__ import annotations

import math
import os

from repro import HeterogeneousProgram
from repro.cluster import HashPartitioner
from repro.core import build_cpu_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.stores import RelationalEngine

N_ROWS = 6000
SHARD_COUNTS = (1, 2, 4)
#: Timed repetitions per configuration; CI smoke mode sets 1.
ITERATIONS = max(1, int(os.environ.get("SHARDED_BENCH_ITERS", "5")))
#: Required charged-throughput gain per shard doubling.  Ideal scaling is
#: ~2x; the bar is low enough to absorb merge overhead and timer noise while
#: still failing fast if the scatter path stops partitioning work.
MIN_STEP_SPEEDUP = float(os.environ.get("SHARDED_BENCH_MIN_STEP", "1.2"))

_SCHEMA = make_schema(("order_id", DataType.INT), ("customer", DataType.STRING),
                      ("amount", DataType.FLOAT))
_ROWS = [(i, f"c{i % 16}", float((i * 37) % 997)) for i in range(N_ROWS)]


def _deployment(num_shards: int):
    system = build_cpu_polystore([])
    engine = system.register_sharded_engine(
        "salesdb", RelationalEngine, partitioner=HashPartitioner(num_shards))
    engine.load_table("sales", Table(_SCHEMA, _ROWS))
    return system, engine


def _program() -> HeterogeneousProgram:
    program = HeterogeneousProgram("sharded-scan-agg")
    program.sql(
        "result",
        "SELECT customer, sum(amount) AS total, count(*) AS n FROM sales "
        "WHERE amount > 100.0 GROUP BY customer",
        engine="salesdb",
    )
    program.output("result")
    return program


def _charged_time(system) -> tuple[float, list[dict]]:
    """Best-of-N charged execution time plus the (stable) result rows."""
    session = system.session(name="bench-sharded")
    prepared = session.prepare(_program())
    prepared.run(reuse_scans=False)  # warm plan cache and adapters
    best = float("inf")
    rows: list[dict] = []
    for _ in range(ITERATIONS):
        result = prepared.run(reuse_scans=False)
        best = min(best, result.report.total_time_s)
        rows = result.output("result").to_dicts()
    return best, rows


def _totals_match(actual: list[dict], expected: list[dict]) -> bool:
    """Group totals equal modulo float summation order across shards."""
    by_customer = {row["customer"]: row for row in expected}
    if {row["customer"] for row in actual} != set(by_customer):
        return False
    return all(
        row["n"] == by_customer[row["customer"]]["n"]
        and math.isclose(row["total"], by_customer[row["customer"]]["total"],
                         rel_tol=1e-9)
        for row in actual
    )


def test_throughput_improves_monotonically_with_shards():
    charged: dict[int, float] = {}
    reference_rows = None
    for num_shards in SHARD_COUNTS:
        system, _ = _deployment(num_shards)
        charged[num_shards], rows = _charged_time(system)
        if reference_rows is None:
            reference_rows = rows
        else:
            assert _totals_match(rows, reference_rows), \
                f"wrong results at {num_shards} shards"
    throughput = {n: N_ROWS / charged[n] for n in SHARD_COUNTS}
    headline = {
        "experiment": "sharded_scan",
        "rows": N_ROWS,
        **{f"rows_per_s_{n}_shards": throughput[n] for n in SHARD_COUNTS},
        "speedup_1_to_4": throughput[4] / throughput[1],
    }
    for num_shards in SHARD_COUNTS:
        print(f"\n{num_shards} shard(s): {throughput[num_shards]:12,.0f} rows/s "
              f"(charged {charged[num_shards] * 1000:.3f} ms)")
    previous = SHARD_COUNTS[0]
    for num_shards in SHARD_COUNTS[1:]:
        step = throughput[num_shards] / throughput[previous]
        assert step >= MIN_STEP_SPEEDUP, (
            f"{previous} -> {num_shards} shards only scaled {step:.2f}x", headline)
        previous = num_shards


def test_rebalance_2_to_4_keeps_answers_stable():
    system, engine = _deployment(2)
    expected = system.execute(_program()).output("result").to_dicts()

    # Begin the split: reads must keep serving the old map during the copy.
    payloads = engine.begin_rebalance(HashPartitioner(4))
    during = system.execute(_program()).output("result").to_dicts()
    assert during == expected
    from repro.middleware.migration import DataMigrator

    migrator = DataMigrator(system.network)
    for payload in payloads:
        received, _ = migrator.migrate(payload.table, source=payload.source_shard,
                                       target="salesdb")
        engine.apply_payload(payload, received)
    engine.cutover()

    assert engine.num_shards == 4
    after = system.execute(_program()).output("result").to_dicts()
    assert _totals_match(after, expected)
    print(f"\nrebalance moved {sum(p.rows for p in payloads)} rows across "
          f"{len(payloads)} payloads; answers stable")


if __name__ == "__main__":
    test_throughput_improves_monotonically_with_shards()
    test_rebalance_2_to_4_keeps_answers_stable()
