"""Adaptive cost-feedback re-optimization vs a frozen plan.

An orders table carries a status column whose value distribution defeats the
analytical selectivity model: the optimizer assumes an equality predicate
keeps ~10% of the rows, but ~95% of the table is ``'active'``.  The compiled
plan therefore budgets the downstream ``sort`` for a tenth of its real
input, the roofline host model calls it cheap, and the sort stays on the
host engine.

Two deployments run the same prepared program twice:

* **adaptive** (default config): the first run records observed
  cardinalities and the measured host sort time into the deployment's
  :class:`~repro.middleware.feedback.RuntimeStats`.  Before the second run,
  plan aging detects the drift, re-compiles with the fed-back statistics,
  and the placement pass — now comparing the *measured* host time against
  the FPGA's modelled time at the *observed* cardinality — offloads the
  sort.  The second run's charged time is the scan plus a simulated
  bitonic-sort, and the report carries ``reoptimized=True``.
* **frozen** (``adaptive_feedback=False``): the second run replays the
  original plan and pays the measured host sort again.

The headline metric is charged time (the same accounting every other bench
uses); re-optimization must win by at least ``ADAPTIVE_MIN_SPEEDUP``
(default 1.5x) and both plans must return identical rows.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_adaptive_feedback.py -q
Smoke mode (CI):  ADAPTIVE_BENCH_ROWS=40000 PYTHONPATH=src python -m pytest ...
"""

from __future__ import annotations

import os

from repro import DataflowProgram, col
from repro.core import build_accelerated_polystore
from repro.core.system import SystemConfig
from repro.datamodel import DataType, Table, make_schema
from repro.stores import RelationalEngine

N_ROWS = int(os.environ.get("ADAPTIVE_BENCH_ROWS", "120000"))
#: Required charged-time advantage of the re-optimized plan over the frozen one.
MIN_SPEEDUP = float(os.environ.get("ADAPTIVE_MIN_SPEEDUP", "1.5"))

_SCHEMA = make_schema(("order_id", DataType.INT), ("status", DataType.STRING),
                      ("amount", DataType.FLOAT))
#: ~95% 'active': the equality predicate's analytical 10% selectivity is off 9.5x.
_ROWS = [(i, "active" if i % 20 else "done", float((i * 37) % 9973) + i * 1e-5)
         for i in range(N_ROWS)]


def _deployment(*, adaptive: bool):
    engine = RelationalEngine("ordersdb")
    engine.load_table("orders", Table(_SCHEMA, _ROWS))
    config = SystemConfig(adaptive_feedback=adaptive)
    # FPGA only: the one accelerable operator in the plan is the sort, so the
    # device never pays kernel-reconfiguration churn between estimates.
    return build_accelerated_polystore([engine], config=config,
                                       include_gpu=False, include_tpu=False,
                                       include_migration_asic=False)


def _program() -> DataflowProgram:
    from repro.eide import dataset

    active = (dataset("ordersdb").table("orders")
              .filter(col("status").eq("active"))
              .sort("amount", descending=True))
    program = DataflowProgram("active-by-amount")
    program.output("ranked", active)
    return program


def _two_runs(system):
    session = system.session(name="bench-adaptive")
    prepared = session.prepare(_program())
    first = prepared.run(reuse_scans=False)
    second = prepared.run(reuse_scans=False)
    session.close()
    return first, second


def test_reoptimization_beats_frozen_plan():
    adaptive_first, adaptive_second = _two_runs(_deployment(adaptive=True))
    frozen_first, frozen_second = _two_runs(_deployment(adaptive=False))

    # Both deployments compile the same misled plan initially: host sort.
    assert not adaptive_first.report.reoptimized
    assert adaptive_first.report.offloaded_tasks == 0
    assert frozen_second.report.offloaded_tasks == 0
    assert not frozen_second.report.reoptimized

    # Aging re-compiled with fed-back stats and the sort moved to the FPGA.
    assert adaptive_second.report.reoptimized
    assert adaptive_second.report.offloaded_tasks >= 1

    # Identical answers either way.
    adaptive_rows = adaptive_second.output("ranked").to_dicts()
    frozen_rows = frozen_second.output("ranked").to_dicts()
    assert adaptive_rows == frozen_rows
    assert len(adaptive_rows) == sum(1 for r in _ROWS if r[1] == "active")

    frozen_s = frozen_second.report.total_time_s
    adaptive_s = adaptive_second.report.total_time_s
    speedup = frozen_s / adaptive_s
    print(f"\nfrozen plan   : {frozen_s * 1000:.2f} ms charged (host sort)")
    print(f"re-optimized  : {adaptive_s * 1000:.2f} ms charged "
          f"({speedup:.1f}x faster)")
    headline = {
        "experiment": "adaptive_feedback",
        "rows": N_ROWS,
        "charged_frozen_ms": frozen_s * 1000,
        "charged_reoptimized_ms": adaptive_s * 1000,
        "speedup": speedup,
    }
    assert speedup >= MIN_SPEEDUP, (
        f"re-optimized plan only {speedup:.2f}x faster than frozen", headline)


def test_feedback_corrects_cardinality_estimates():
    system = _deployment(adaptive=True)
    session = system.session(name="bench-adaptive-est")
    prepared = session.prepare(_program())
    prepared.run(reuse_scans=False)

    misled = [n for n in prepared.compilation.graph.nodes()
              if n.kind in ("scan", "index_seek")][0]
    actual = sum(1 for r in _ROWS if r[1] == "active")
    assert misled.estimated_rows < actual / 2  # the model was badly off

    prepared.run(reuse_scans=False)  # triggers aging + re-compile
    corrected = [n for n in prepared.compilation.graph.nodes()
                 if n.kind in ("scan", "index_seek")][0]
    assert corrected.annotations.get("rows_source") == "observed"
    # EWMA of (model-free) observation: within a factor of ~2 of the truth.
    assert actual / 2 <= corrected.estimated_rows <= actual * 2
    assert prepared.reoptimizations == 1
    session.close()


if __name__ == "__main__":
    test_reoptimization_beats_frozen_plan()
    test_feedback_corrects_cardinality_estimates()
