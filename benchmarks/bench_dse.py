"""E6 — active-learning design-space exploration vs random sampling (Figure 8, §IV-C).

Expected shape: at equal evaluation budget, the active-learning loop's Pareto
front dominates random sampling's (higher hypervolume w.r.t. a fixed
reference point).
"""

from __future__ import annotations

import pytest

from repro.middleware.optimizer import (
    ActiveLearningOptimizer,
    DesignSpace,
    Parameter,
)

BUDGETS = [30, 60]
REFERENCE = (4.0, 5.0)


def polystore_objective(configuration: dict) -> tuple[float, float]:
    """A synthetic latency/energy surface over a Polystore++ configuration space."""
    latency = {"fpga": 1.0, "gpu": 0.55, "cgra": 0.8, "none": 2.2}[configuration["sort_target"]]
    latency *= {"csv": 1.8, "binary_pipe": 1.2, "rdma": 1.05,
                "accelerated": 1.0}[configuration["migration_strategy"]]
    latency *= 1.0 + (512 - configuration["batch_size"]) / 2048
    latency /= configuration["host_cores"] ** 0.3
    energy = {"fpga": 0.6, "gpu": 2.4, "cgra": 1.0, "none": 1.3}[configuration["sort_target"]]
    energy *= 1.0 + 0.15 * configuration["host_cores"]
    energy *= {"csv": 1.4, "binary_pipe": 1.1, "rdma": 1.0,
               "accelerated": 0.9}[configuration["migration_strategy"]]
    return latency, energy


@pytest.fixture(scope="module")
def space() -> DesignSpace:
    return DesignSpace([
        Parameter("sort_target", "categorical", ("fpga", "gpu", "cgra", "none")),
        Parameter("migration_strategy", "categorical",
                  ("csv", "binary_pipe", "rdma", "accelerated")),
        Parameter("batch_size", "ordinal", (32, 64, 128, 256, 512)),
        Parameter("host_cores", "ordinal", (1, 2, 4, 8)),
    ])


@pytest.mark.parametrize("budget", BUDGETS)
def test_active_learning_dse(benchmark, space, budget):
    """Run the HyperMapper-style loop at a fixed evaluation budget."""
    optimizer = ActiveLearningOptimizer(space, polystore_objective, initial_samples=10,
                                        samples_per_iteration=5, seed=5)
    result = benchmark.pedantic(lambda: optimizer.optimize(budget=budget),
                                iterations=1, rounds=3)
    benchmark.extra_info["experiment"] = "E6"
    benchmark.extra_info["budget"] = budget
    benchmark.extra_info["hypervolume"] = result.hypervolume(REFERENCE)
    benchmark.extra_info["front_size"] = len(result.front)
    assert result.front


@pytest.mark.parametrize("budget", BUDGETS)
def test_random_search_baseline(benchmark, space, budget):
    """Random sampling at the same budget (the baseline of Figure 8)."""
    optimizer = ActiveLearningOptimizer(space, polystore_objective, initial_samples=10,
                                        seed=5)
    result = benchmark.pedantic(lambda: optimizer.random_search(budget=budget),
                                iterations=1, rounds=3)
    benchmark.extra_info["experiment"] = "E6"
    benchmark.extra_info["budget"] = budget
    benchmark.extra_info["hypervolume"] = result.hypervolume(REFERENCE)


def test_active_learning_dominates_random(benchmark, space):
    """Head-to-head comparison at equal budget: hypervolume(AL) >= hypervolume(random)."""
    optimizer = ActiveLearningOptimizer(space, polystore_objective, initial_samples=10,
                                        samples_per_iteration=5, seed=7)

    def head_to_head():
        active = optimizer.optimize(budget=45)
        random = optimizer.random_search(budget=45, seed=11)
        return active.hypervolume(REFERENCE), random.hypervolume(REFERENCE)

    active_hv, random_hv = benchmark.pedantic(head_to_head, iterations=1, rounds=1)
    benchmark.extra_info["experiment"] = "E6"
    benchmark.extra_info["active_hypervolume"] = active_hv
    benchmark.extra_info["random_hypervolume"] = random_hv
    assert active_hv >= random_hv * 0.95
