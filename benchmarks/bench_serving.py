"""Serving-tier throughput under heavy in-process client concurrency.

Two measurements:

* **mixed read/write fleet** — ``SERVING_BENCH_CLIENTS`` concurrent
  in-process clients (default 256; the acceptance floor) hammer one server:
  each client alternates validated point reads over a static table with
  aggregate counts over an events table that writer threads grow
  concurrently.  Every response is checked — point reads must return
  exactly the expected row, counts must be monotone per client and bounded
  by the rows actually written — so the benchmark fails on *any* incorrect
  result, not just on crashes.  Retryable rejects (``OVERLOADED`` /
  ``QUOTA_EXCEEDED``) are retried with the server's hint; a sampler thread
  asserts the admission queue never exceeds its configured bound.  Reports
  QPS and p50/p99 client latency through :mod:`benchmarks._emit`.
* **cooperative cancellation** — a sharded deployment whose first shard
  scan cancels the request's token; with a serial fan-out the remaining
  shard subtasks must never dispatch, asserted via the recorded
  ``shard:*`` trace spans (strictly fewer than the shard count).

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q
Smoke mode (CI):  SERVING_BENCH_REQUESTS=2 PYTHONPATH=src python -m pytest ...
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro import CancellationToken, DataflowProgram, SystemConfig, col
from repro.core import PolystorePlusPlus, build_cpu_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.eide import Param
from repro.exceptions import CancelledError
from repro.serve.client import ServeError
from repro.stores import RelationalEngine

from benchmarks._emit import emit

#: Concurrent in-process clients; the acceptance criterion floor is 256.
N_CLIENTS = int(os.environ.get("SERVING_BENCH_CLIENTS", "256"))
#: Requests each client issues (half point reads, half counts).
N_REQUESTS = int(os.environ.get("SERVING_BENCH_REQUESTS", "4"))
#: Server worker sessions (= admission slots).
POOL_SIZE = int(os.environ.get("SERVING_BENCH_POOL", "8"))
#: Global admission-queue bound; the sampler asserts it is never exceeded.
MAX_QUEUE = int(os.environ.get("SERVING_BENCH_QUEUE", "128"))
#: Writer threads growing the events table during the read storm.
N_WRITERS = 4

_PATIENTS = [(pid, 20 + (pid * 7) % 60, float(pid % 10) / 10.0)
             for pid in range(200)]


def _build_system():
    engine = RelationalEngine("servedb")
    engine.load_table("patients", Table(
        make_schema(("pid", DataType.INT), ("age", DataType.INT),
                    ("score", DataType.FLOAT)),
        _PATIENTS))
    engine.create_table("events", make_schema(
        ("event_id", DataType.INT), ("payload", DataType.FLOAT)))
    config = SystemConfig(obs_enabled=True, obs_trace_sample_rate=0.0,
                          session_workers=2)
    return build_cpu_polystore([engine], config=config), engine


def _point_read_program(system):
    expr = (system.dataset("servedb").table("patients")
            .filter(col("pid") == Param("pid", default=0)))
    program = DataflowProgram("point_read")
    program.output("row", expr)
    return program


def _count_events_program(system):
    expr = (system.dataset("servedb").table("events")
            .aggregate([], n=("count", None)))
    program = DataflowProgram("count_events")
    program.output("count", expr)
    return program


def _call_with_retries(client, program, params, tenant):
    """One client request with bounded backoff on retryable rejects."""
    for _ in range(60):
        try:
            return client.execute(program, params, tenant=tenant, timeout=120)
        except ServeError as exc:
            if not exc.retryable:
                raise
            time.sleep(min(exc.retry_after_s or 0.005, 0.1))
    raise AssertionError(f"{program} never admitted after 60 retries")


def test_mixed_fleet_sustains_concurrent_clients():
    system, engine = _build_system()
    errors: list[str] = []
    latencies: list[float] = []
    charged: list[float] = []
    latency_lock = threading.Lock()
    stop_writers = threading.Event()
    written = [0]
    written_lock = threading.Lock()

    with system.serve(pool_size=POOL_SIZE, max_queue=MAX_QUEUE,
                      max_queue_per_tenant=MAX_QUEUE) as server:
        server.register("point_read", _point_read_program(system))
        # Counts must see live writes and stay monotone per client, so they
        # are registered non-coalescable: a follower attached to an older
        # in-flight count could legitimately observe a smaller value.
        server.register("count_events", _count_events_program(system),
                        coalesce=False)

        def writer(writer_id: int) -> None:
            batch = 0
            while not stop_writers.is_set():
                base = writer_id * 1_000_000 + batch * 100
                rows = [(base + i, float(i)) for i in range(10)]
                with written_lock:
                    engine.insert("events", rows)
                    written[0] += len(rows)
                batch += 1
                time.sleep(0.002)

        def client_loop(client_id: int) -> None:
            client = server.connect()
            last_count = -1
            for step in range(N_REQUESTS):
                pid = (client_id * 31 + step) % len(_PATIENTS)
                start = time.perf_counter()
                try:
                    if step % 2 == 0:
                        response = _call_with_retries(
                            client, "point_read", {"pid": pid},
                            f"tenant-{client_id % 8}")
                        if response.get("charged_time_s") is not None:
                            with latency_lock:
                                charged.append(response["charged_time_s"])
                        rows = response["outputs"]["row"]["rows"]
                        expected = [list(_PATIENTS[pid])]
                        if rows != expected:
                            errors.append(
                                f"client {client_id}: point read {pid} "
                                f"returned {rows!r}, wanted {expected!r}")
                    else:
                        response = _call_with_retries(
                            client, "count_events", {},
                            f"tenant-{client_id % 8}")
                        [[count]] = response["outputs"]["count"]["rows"]
                        with written_lock:
                            ceiling = written[0]
                        if not (last_count <= count <= ceiling):
                            errors.append(
                                f"client {client_id}: count {count} outside "
                                f"[{last_count}, {ceiling}]")
                        last_count = count
                except Exception as exc:  # any unexpected failure is a result error
                    errors.append(f"client {client_id}: {type(exc).__name__}: {exc}")
                    return
                with latency_lock:
                    latencies.append(time.perf_counter() - start)

        max_queued = [0]

        def sampler() -> None:
            while not stop_writers.is_set():
                snapshot = server.stats()["admission"]
                max_queued[0] = max(max_queued[0], snapshot["queued"])
                assert snapshot["queued"] <= MAX_QUEUE, (
                    f"queue depth {snapshot['queued']} exceeds bound")
                time.sleep(0.01)

        writers = [threading.Thread(target=writer, args=(i,))
                   for i in range(N_WRITERS)]
        watcher = threading.Thread(target=sampler)
        clients = [threading.Thread(target=client_loop, args=(i,))
                   for i in range(N_CLIENTS)]
        for thread in writers + [watcher]:
            thread.start()
        wall_start = time.perf_counter()
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join(timeout=300)
        wall = time.perf_counter() - wall_start
        stop_writers.set()
        for thread in writers + [watcher]:
            thread.join(timeout=30)

        scrape = system.export_prometheus()

    assert not errors, "incorrect results:\n" + "\n".join(errors[:10])
    completed = len(latencies)
    assert completed == N_CLIENTS * N_REQUESTS
    assert "polystore_serve_requests_total" in scrape

    latencies.sort()
    p50 = latencies[completed // 2]
    p99 = latencies[min(completed - 1, int(0.99 * completed))]
    qps = completed / wall
    print(f"\nclients             : {N_CLIENTS} x {N_REQUESTS} requests")
    print(f"completed           : {completed} ok, 0 incorrect")
    print(f"wall                : {wall:.2f}s  ({qps:.0f} QPS)")
    print(f"latency p50 / p99   : {p50 * 1000:.1f} ms / {p99 * 1000:.1f} ms")
    print(f"rows written        : {written[0]}")
    print(f"max queue observed  : {max_queued[0]} (bound {MAX_QUEUE})")
    # Point reads run over a fixed 200-row table, so their charged time is
    # the regression series benchmarks/compare.py gates; counts over the
    # concurrently-growing events table are deliberately excluded.  The
    # *minimum* over the fleet is the estimator — scheduler/GIL contention
    # noise is strictly one-sided (same argument as the obs-overhead
    # estimator in bench_session_throughput.py).
    point_read_charged_s = min(charged) if charged else 0.0
    emit("serving", {
        "qps": qps,
        "p50_ms": p50 * 1000,
        "p99_ms": p99 * 1000,
        "completed": completed,
        "incorrect": 0,
        "rows_written": written[0],
        "max_queue_observed": max_queued[0],
        "point_read_charged_s": point_read_charged_s,
    }, {
        "clients": N_CLIENTS,
        "requests_per_client": N_REQUESTS,
        "pool_size": POOL_SIZE,
        "max_queue": MAX_QUEUE,
        "writers": N_WRITERS,
    })


def test_health_op_on_durable_sharded_deployment(tmp_path):
    """A load balancer's probe path: the ``health`` op must answer ``ok``
    on a live server fronting a durable sharded deployment — durability
    liveness, changelog pressure, queue saturation and view state all roll
    up through one protocol round-trip."""
    system = PolystorePlusPlus(SystemConfig(
        obs_enabled=True, durability_sync="always", session_workers=2))
    engine = system.register_sharded_engine("sharddb", RelationalEngine, 4)
    engine.load_table("events", Table(
        make_schema(("row_id", DataType.INT), ("value", DataType.FLOAT)),
        [(i, float(i)) for i in range(64)]), shard_key="row_id")
    system.open(str(tmp_path))

    program = DataflowProgram("scan_events")
    program.output("out", system.dataset("sharddb").table("events"))

    with system.serve(pool_size=2) as server:
        server.register("scan_events", program)
        client = server.connect()
        client.execute("scan_events", tenant="probe")
        health = client.health()

    assert health["status"] == "ok", health
    checks = {c["name"]: c for c in health["checks"]}
    assert checks["durability"]["detail"]["alive"] is True
    assert checks["serve_queues"]["detail"]["servers"] == 1
    assert health["burning_slos"] == []
    print(f"\nhealth status       : {health['status']}")
    print(f"checks              : "
          f"{ {name: c['status'] for name, c in checks.items()} }")
    system.close()


def test_cancelled_request_stops_before_all_shards():
    """Deterministic end-to-end cancellation: the first shard's scan trips
    the token; the serial fan-out must not dispatch the remaining shards,
    observed via the recorded shard subtask spans."""
    token = CancellationToken()
    scans: list[str] = []

    class HookedEngine(RelationalEngine):
        def scan(self, table, columns=None):
            scans.append(self.name)
            if len(scans) == 1:
                token.cancel("benchmark cancel after first shard")
            return super().scan(table, columns)

    num_shards = 4
    system = PolystorePlusPlus(SystemConfig(
        obs_enabled=True, obs_trace_sample_rate=1.0))
    engine = system.register_sharded_engine("sharddb", HookedEngine,
                                            num_shards)
    engine.load_table("events", Table(
        make_schema(("row_id", DataType.INT), ("value", DataType.FLOAT)),
        [(i, float(i)) for i in range(64)]), shard_key="row_id")

    expr = system.dataset("sharddb").table("events").filter(
        col("value") >= 0.0)
    program = DataflowProgram("cancelled_scan")
    program.output("out", expr)

    session = system.session(name="serial", max_workers=1)
    prepared = session.prepare(program)
    with pytest.raises(CancelledError):
        prepared.run(cancellation=token)

    shard_spans = [s for s in system.obs.tracer.spans()
                   if s.name.startswith("shard:")]
    print(f"\nshards              : {num_shards}")
    print(f"shard scans run     : {len(scans)}")
    print(f"shard spans recorded: {len(shard_spans)}")
    assert len(scans) == 1
    assert len(shard_spans) < num_shards


if __name__ == "__main__":
    import tempfile

    test_mixed_fleet_sustains_concurrent_clients()
    with tempfile.TemporaryDirectory() as tmp:
        test_health_op_on_durable_sharded_deployment(tmp)
    test_cancelled_request_stops_before_all_shards()
