"""Session throughput: one-shot execute() vs prepared runs vs batched submits.

The quickstart program (SQL aggregation + timeseries features -> train) is
executed three ways:

* one-shot ``PolystorePlusPlus.execute`` — recompiles nothing after the first
  call (plan cache) but re-reads every engine on every call,
* ``PreparedProgram.run`` — compiled once, pure scan subtrees served from the
  pinned snapshot, only the training head re-executes,
* ``Session.run_batch`` — the same prepared program dispatched over the
  session's worker pool.

The headline check: prepared re-execution is >= 2x the one-shot throughput.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_session_throughput.py -q
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from examples.quickstart import build_deployment, build_program  # noqa: E402

REPEATS = 20
#: Local runs assert the full 2x acceptance bar; CI can relax it because
#: shared runners make wall-clock ratios noisy (see .github/workflows/ci.yml).
MIN_SPEEDUP = float(os.environ.get("SESSION_BENCH_MIN_SPEEDUP", "2.0"))


def _throughput(fn, repeats: int = REPEATS) -> float:
    """Executions per second of ``fn`` over ``repeats`` timed calls."""
    fn()  # warm caches (plan cache, adapters) outside the timed region
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    elapsed = time.perf_counter() - start
    return repeats / elapsed


def test_prepared_reexecution_at_least_twice_oneshot():
    system = build_deployment()
    program = build_program(system)
    session = system.session(name="bench")
    prepared = session.prepare(program, mode="polystore++")

    oneshot_rate = _throughput(lambda: system.execute(program, mode="polystore++"))
    prepared_rate = _throughput(prepared.run)
    speedup = prepared_rate / oneshot_rate

    headline = {
        "experiment": "session_throughput",
        "oneshot_programs_per_s": oneshot_rate,
        "prepared_programs_per_s": prepared_rate,
        "prepared_speedup": speedup,
    }
    print(f"\none-shot : {oneshot_rate:8.1f} programs/s")
    print(f"prepared : {prepared_rate:8.1f} programs/s  ({speedup:.1f}x one-shot)")
    assert speedup >= MIN_SPEEDUP, headline


def test_batched_session_matches_prepared_outputs():
    system = build_deployment()
    program = build_program(system)
    with system.session(name="bench-batch", max_workers=4) as session:
        prepared = session.prepare(program)
        serial = prepared.run()

        batch_size = 8
        start = time.perf_counter()
        results = session.run_batch([prepared] * batch_size)
        elapsed = time.perf_counter() - start
        batched_rate = batch_size / elapsed

    print(f"\nbatched  : {batched_rate:8.1f} programs/s ({batch_size} submits)")
    assert len(results) == batch_size
    expected_rows = serial.output("return_model")["rows"]
    for result in results:
        assert result.output("return_model")["rows"] == expected_rows


if __name__ == "__main__":
    test_prepared_reexecution_at_least_twice_oneshot()
    test_batched_session_matches_prepared_outputs()
