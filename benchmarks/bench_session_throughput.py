"""Session throughput: one-shot execute() vs prepared runs vs batched submits.

The quickstart program (SQL aggregation + timeseries features -> train) is
executed three ways:

* one-shot ``PolystorePlusPlus.execute`` — recompiles nothing after the first
  call (plan cache) but re-reads every engine on every call,
* ``PreparedProgram.run`` — compiled once, pure scan subtrees served from the
  pinned snapshot, only the training head re-executes,
* ``Session.run_batch`` — the same prepared program dispatched over the
  session's worker pool.

The headline check: prepared re-execution is >= 2x the one-shot throughput.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_session_throughput.py -q
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._emit import emit  # noqa: E402
from examples.quickstart import build_deployment, build_program  # noqa: E402
from repro.core import SystemConfig  # noqa: E402

REPEATS = 20
#: Local runs assert the full 2x acceptance bar; CI can relax it because
#: shared runners make wall-clock ratios noisy (see .github/workflows/ci.yml).
MIN_SPEEDUP = float(os.environ.get("SESSION_BENCH_MIN_SPEEDUP", "2.0"))
#: Observability at the default sample rate must cost < 5% prepared-path
#: throughput; CI can relax the bar the same way as ``MIN_SPEEDUP``.
OBS_MAX_OVERHEAD = float(os.environ.get("OBS_BENCH_MAX_OVERHEAD", "0.05"))
#: Overhead is measured as min-over-blocks of short alternating blocks:
#: single-digit-percent deltas need a tighter estimator than one long loop.
OBS_BLOCKS = int(os.environ.get("OBS_BENCH_BLOCKS", "30"))
OBS_BLOCK_REPEATS = int(os.environ.get("OBS_BENCH_BLOCK_REPEATS", "15"))
#: Fresh re-measurements allowed when a draw lands over the bar (see the
#: estimator notes on ``test_obs_overhead_below_bar``).
OBS_ATTEMPTS = int(os.environ.get("OBS_BENCH_ATTEMPTS", "3"))


def _throughput(fn, repeats: int = REPEATS) -> float:
    """Executions per second of ``fn`` over ``repeats`` timed calls."""
    fn()  # warm caches (plan cache, adapters) outside the timed region
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    elapsed = time.perf_counter() - start
    return repeats / elapsed


def test_prepared_reexecution_at_least_twice_oneshot():
    system = build_deployment()
    program = build_program(system)
    session = system.session(name="bench")
    prepared = session.prepare(program, mode="polystore++")

    oneshot_rate = _throughput(lambda: system.execute(program, mode="polystore++"))
    prepared_rate = _throughput(prepared.run)
    speedup = prepared_rate / oneshot_rate
    # Charged time of one prepared run: the series benchmarks/compare.py
    # tracks against the committed BENCH_session_throughput.json baseline.
    # Minimum over several runs — scheduler noise only ever inflates the
    # measurement (same estimator as test_obs_overhead_below_bar).
    prepared_charged_s = min(prepared.run().total_time_s for _ in range(7))

    headline = {
        "experiment": "session_throughput",
        "oneshot_programs_per_s": oneshot_rate,
        "prepared_programs_per_s": prepared_rate,
        "prepared_speedup": speedup,
        "prepared_charged_s": prepared_charged_s,
    }
    print(f"\none-shot : {oneshot_rate:8.1f} programs/s")
    print(f"prepared : {prepared_rate:8.1f} programs/s  ({speedup:.1f}x one-shot)")
    print(f"charged  : {prepared_charged_s * 1000:8.2f} ms/prepared run")
    emit("session_throughput", headline, {"repeats": REPEATS,
                                          "min_speedup": MIN_SPEEDUP})
    assert speedup >= MIN_SPEEDUP, headline


def test_obs_overhead_below_bar():
    """Observability at default sampling costs < 5% prepared throughput.

    Both deployments are measured back to back on the prepared path — the
    hot loop every instrumented seam (request span, plan-cache counter,
    operator metrics) sits on.  The instrumented system runs the *default*
    ``SystemConfig(obs_enabled=True)`` sampling rate, i.e. what a production
    deployment flipping the knob on would pay.

    The measured effect is small (~2-3% locally) against machine noise of
    the same magnitude, so the estimator is deliberately robust: short
    strictly-alternating blocks, per-config *minimum* block time (scheduler
    noise is strictly one-sided), and a fresh re-measurement — new
    deployments, new sessions — when a draw still lands over the bar.  A
    real regression fails every attempt; an unlucky memory layout does not.
    """

    def block_s(prepared) -> float:
        start = time.perf_counter()
        for _ in range(OBS_BLOCK_REPEATS):
            prepared.run()
        return (time.perf_counter() - start) / OBS_BLOCK_REPEATS

    def measure() -> tuple[float, float, float]:
        plain = build_deployment()
        observed = build_deployment(SystemConfig(obs_enabled=True))
        assert observed.obs.enabled and not plain.obs.enabled

        def prepare(system):
            program = build_program(system)
            return system.session(name="bench-obs").prepare(
                program, mode="polystore++")

        plain_prepared, observed_prepared = prepare(plain), prepare(observed)
        plain_prepared.run(), observed_prepared.run()  # warm both paths
        plain_blocks, observed_blocks = [], []
        for _ in range(OBS_BLOCKS):
            plain_blocks.append(block_s(plain_prepared))
            observed_blocks.append(block_s(observed_prepared))
        plain_rate = 1.0 / min(plain_blocks)
        observed_rate = 1.0 / min(observed_blocks)
        return plain_rate, observed_rate, 1.0 - observed_rate / plain_rate

    for attempt in range(OBS_ATTEMPTS):
        plain_rate, observed_rate, overhead = measure()
        print(f"\nattempt {attempt}: obs off {plain_rate:8.1f} programs/s, "
              f"obs on {observed_rate:8.1f} ({overhead * 100:+.1f}% overhead)")
        if overhead <= OBS_MAX_OVERHEAD:
            break

    headline = {
        "experiment": "obs_overhead",
        "disabled_programs_per_s": plain_rate,
        "enabled_programs_per_s": observed_rate,
        "overhead_fraction": overhead,
        "sample_rate": SystemConfig().obs_trace_sample_rate,
    }
    emit("obs_overhead", headline, {"blocks": OBS_BLOCKS,
                                    "block_repeats": OBS_BLOCK_REPEATS,
                                    "attempts": OBS_ATTEMPTS,
                                    "max_overhead": OBS_MAX_OVERHEAD})
    assert overhead <= OBS_MAX_OVERHEAD, headline


def test_batched_session_matches_prepared_outputs():
    system = build_deployment()
    program = build_program(system)
    with system.session(name="bench-batch", max_workers=4) as session:
        prepared = session.prepare(program)
        serial = prepared.run()

        batch_size = 8
        start = time.perf_counter()
        results = session.run_batch([prepared] * batch_size)
        elapsed = time.perf_counter() - start
        batched_rate = batch_size / elapsed

    print(f"\nbatched  : {batched_rate:8.1f} programs/s ({batch_size} submits)")
    emit("session_batched", {"experiment": "session_batched",
                             "batched_programs_per_s": batched_rate,
                             "batch_size": batch_size})
    assert len(results) == batch_size
    expected_rows = serial.output("return_model")["rows"]
    for result in results:
        assert result.output("return_model")["rows"] == expected_rows


if __name__ == "__main__":
    test_prepared_reexecution_at_least_twice_oneshot()
    test_obs_overhead_below_bar()
    test_batched_session_matches_prepared_outputs()
