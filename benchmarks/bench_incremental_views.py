"""Incremental view maintenance vs full recomputation after a small delta.

A 100k+ row orders table backs a filtered group-by view (sum/count/avg per
region).  After materialization, a mixed mutation batch touching at most
``DELTA_FRACTION`` of the base (inserts + targeted deletes + updates) lands
on the engine.  Two ways to get the fresh answer:

* **incremental** — :meth:`MaterializedView.refresh` pulls the typed delta
  batches from the engine's scoped changelog and pushes them through the
  compiled delta program (the ordinary executor runs it, so the charged
  time is the same accounting as everything else);
* **recompute** — the same expression prepared with ``use_views=False``
  re-executes from the base table.

The refresh must win on charged time by at least ``VIEWS_MIN_SPEEDUP``
(default 5x, the acceptance bar) and both answers must be identical.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_incremental_views.py -q
Smoke mode (CI):  VIEWS_BENCH_ITERS=1 PYTHONPATH=src python -m pytest ...
"""

from __future__ import annotations

import os

from repro import PolystorePlusPlus, col
from repro.compiler.pipeline import CompilerOptions
from repro.eide.dataflow import DataflowProgram, Dataset
from repro.datamodel import DataType, Table, make_schema
from repro.stores import RelationalEngine

#: Base cardinality; the acceptance criterion requires >= 100k rows.
N_ROWS = int(os.environ.get("VIEWS_BENCH_ROWS", "100000"))
#: Upper bound on the mutated fraction of the base (<= 1% per acceptance).
DELTA_FRACTION = float(os.environ.get("VIEWS_DELTA_FRACTION", "0.01"))
#: Required charged-time advantage of refresh over recompute.
MIN_SPEEDUP = float(os.environ.get("VIEWS_MIN_SPEEDUP", "5.0"))
#: Mutate/refresh/recompute rounds (averaged); 1 in CI smoke mode.
ITERATIONS = int(os.environ.get("VIEWS_BENCH_ITERS", "3"))

REGIONS = ("north", "south", "east", "west", "centre")

_SCHEMA = make_schema(("order_id", DataType.INT), ("region", DataType.STRING),
                      ("amount", DataType.FLOAT))


def _deployment():
    system = PolystorePlusPlus()
    engine = system.register_engine(RelationalEngine("salesdb"))
    engine.load_table("orders", Table(_SCHEMA, [
        (i, REGIONS[i % len(REGIONS)], float((i * 13) % 97))
        for i in range(N_ROWS)
    ]))
    return system, engine


def _spend_expr(system):
    return (system.dataset("salesdb").table("orders")
            .filter(col("amount") > 1.0)
            .aggregate(["region"],
                       total=("sum", "amount"),
                       n=("count", None),
                       mean=("avg", "amount")))


def _recompute(system, expr):
    program = DataflowProgram("views-bench-recompute")
    program.output("res", Dataset(expr.node))
    return system.execute(program, options=CompilerOptions(use_views=False))


def _canon(rows):
    return sorted(tuple(sorted(r.items())) for r in rows)


def _mutate(engine, round_index: int) -> int:
    """One small mixed batch; returns the number of rows touched."""
    budget = max(1, int(N_ROWS * DELTA_FRACTION))
    inserts = budget // 2
    base_id = 10_000_000 + round_index * budget
    engine.insert("orders", [
        (base_id + i, REGIONS[i % len(REGIONS)], float(i % 50) + 2.0)
        for i in range(inserts)
    ])
    remaining = budget - inserts
    deleted = len(engine.delete_rows(
        "orders", (col("order_id") >= round_index * (remaining // 2))
        & (col("order_id") < round_index * (remaining // 2) + remaining // 2)))
    updated = len(engine.update_rows(
        "orders",
        (col("order_id") >= 1000 + round_index) & (col("order_id") < 1000
                                                   + round_index
                                                   + remaining // 2),
        {"amount": 3.0 + round_index}))
    return inserts + deleted + updated


def test_incremental_refresh_beats_full_recompute():
    system, engine = _deployment()
    expr = _spend_expr(system)
    view = system.create_view("spend_by_region", expr, policy="manual")
    assert view.incremental, "the view must compile to a delta program"

    refresh_s = 0.0
    recompute_s = 0.0
    touched_total = 0
    for round_index in range(ITERATIONS):
        touched = _mutate(engine, round_index)
        assert touched <= int(N_ROWS * DELTA_FRACTION) + 1
        touched_total += touched
        outcome = view.refresh()
        assert outcome.kind == "incremental", outcome
        refresh_s += outcome.charged_time_s
        baseline = _recompute(system, expr)
        recompute_s += baseline.total_time_s
        # Correctness on every round: refresh equals recompute.
        assert _canon(view.read()[0].to_dicts()) == \
            _canon(baseline.output("res").to_dicts())

    speedup = recompute_s / refresh_s
    print(f"\nbase rows          : {N_ROWS}")
    print(f"rows touched/round : ~{touched_total // ITERATIONS} "
          f"(<= {DELTA_FRACTION:.1%} of base)")
    print(f"full recompute     : {recompute_s / ITERATIONS * 1000:.2f} ms charged")
    print(f"incremental refresh: {refresh_s / ITERATIONS * 1000:.3f} ms charged "
          f"({speedup:.1f}x faster)")
    headline = {
        "experiment": "incremental_views",
        "rows": N_ROWS,
        "delta_fraction": DELTA_FRACTION,
        "charged_recompute_ms": recompute_s / ITERATIONS * 1000,
        "charged_refresh_ms": refresh_s / ITERATIONS * 1000,
        "speedup": speedup,
    }
    assert speedup >= MIN_SPEEDUP, (
        f"incremental refresh only {speedup:.2f}x faster than recompute",
        headline)


def test_noop_refresh_costs_nothing():
    system, _ = _deployment()
    view = system.create_view("spend_by_region", _spend_expr(system),
                              policy="manual")
    outcome = view.refresh()
    assert outcome.kind == "noop"
    assert outcome.charged_time_s == 0.0


if __name__ == "__main__":
    test_incremental_refresh_beats_full_recompute()
    test_noop_refresh_costs_nothing()
