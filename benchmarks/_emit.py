"""Shared JSON result emitter for the benchmark scripts.

Benchmarks funnel their headline numbers through :func:`emit`, which builds
one ``{bench, metrics, config, timestamp}`` document and writes it when a
destination is configured:

* ``--json PATH`` on the script's argv writes exactly to ``PATH``,
* a ``BENCH_JSON`` environment variable names a *directory* into which
  ``<bench>.json`` is written — the hands-off path CI uses to collect
  artifacts from benchmarks driven through pytest,
* with neither, the document is only returned (tests stay silent).

Keeping the schema in one place means every benchmark's output can be
diffed, plotted or archived by the same tooling.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any


def report_info(result: Any) -> dict[str, Any]:
    """Common ``extra_info`` fields derived from a run's execution report.

    Benchmarks used to hand-roll these from ``Result`` attributes; they now
    all come from the one stable ``ExecutionReport.summary()`` schema.
    """
    summary = result.report.summary()
    return {
        "mode": summary["mode"],
        "charged_total_s": summary["total_time_s"],
        "pipelined_s": summary["pipelined_time_s"],
        "migration_bytes": summary["migration_bytes"],
    }


def json_destination(bench: str, argv: list[str] | None = None) -> Path | None:
    """Resolve where ``bench`` should write its JSON document, if anywhere."""
    argv = sys.argv[1:] if argv is None else argv
    for index, arg in enumerate(argv):
        if arg == "--json" and index + 1 < len(argv):
            return Path(argv[index + 1])
        if arg.startswith("--json="):
            return Path(arg.split("=", 1)[1])
    directory = os.environ.get("BENCH_JSON")
    if directory:
        return Path(directory) / f"{bench}.json"
    return None


def emit(bench: str, metrics: dict[str, Any],
         config: dict[str, Any] | None = None, *,
         argv: list[str] | None = None) -> dict[str, Any]:
    """Build (and, when configured, write) one benchmark result document."""
    document = {
        "bench": bench,
        "metrics": metrics,
        "config": dict(config or {}),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    destination = json_destination(bench, argv)
    if destination is not None:
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_text(json.dumps(document, indent=2, sort_keys=True,
                                          default=str) + "\n")
    return document
