"""E7 — end-to-end MIMIC heterogeneous workload across execution modes (Figure 2).

Expected shape: Polystore++ (accelerated) <= CPU polystore <= one-size-fits-all
in charged execution time, with the paper's proposal winning through
accelerated migration and operator offload.
"""

from __future__ import annotations

import pytest

from benchmarks._emit import report_info
from repro.workloads import build_mimic_program

MODES = ["one_size_fits_all", "cpu_polystore", "polystore++"]


@pytest.mark.parametrize("mode", MODES)
def test_mimic_program_by_mode(benchmark, mimic_system, mode):
    """Compile and execute the ICU-stay program under each execution mode."""
    system = mimic_system["system"]
    program = build_mimic_program(epochs=2)

    result = benchmark.pedantic(lambda: system.execute(program, mode=mode),
                                iterations=1, rounds=3)
    model = result.output("stay_model")
    benchmark.extra_info["experiment"] = "E7"
    benchmark.extra_info.update(report_info(result))
    benchmark.extra_info["accuracy"] = model["metrics"]["accuracy"]
    assert model["rows"] == mimic_system["dataset"].num_patients
    assert model["metrics"]["accuracy"] > 0.6


def test_mode_ordering(mimic_system):
    """The headline E7 comparison (not timed; charged costs compared directly)."""
    system = mimic_system["system"]
    program = build_mimic_program(epochs=2)
    results = system.compare_modes(program)
    charged = {mode: r.total_time_s for mode, r in results.items()}
    assert charged["polystore++"] <= charged["cpu_polystore"] * 1.25
    assert charged["cpu_polystore"] <= charged["one_size_fits_all"] * 1.25
