"""Gate benchmark regressions against committed baselines.

Usage:  python benchmarks/compare.py RESULTS_JSON [RESULTS_JSON ...]
                                     [--max-regression 0.2]

Each ``RESULTS_JSON`` is a fresh :mod:`benchmarks._emit` document (written
via ``BENCH_JSON=dir`` or ``--json PATH``).  For each one, the committed
baseline ``BENCH_<bench>.json`` at the repository root is loaded and every
shared *charged* metric — numeric metrics whose key contains ``charged``,
lower is better — is compared.  Charged times are simulator/CPU-accounted
rather than wall-clock, so they form a machine-stable series that can be
gated tightly even on noisy shared runners.

Exit status is nonzero when any charged metric regresses by more than
``--max-regression`` (default 0.2 = 20%, env override
``COMPARE_MAX_REGRESSION``).  A missing baseline file or a baseline
lacking charged metrics is an error: the gate must never silently pass
because the series it guards disappeared.  Improvements and wall-clock
metrics are reported but never fail the gate.

To refresh a baseline after an intentional change:

    BENCH_JSON=/tmp/bench PYTHONPATH=src python -m pytest benchmarks/... -q
    cp /tmp/bench/<bench>.json BENCH_<bench>.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_document(path: Path) -> dict[str, Any]:
    document = json.loads(path.read_text(encoding="utf-8"))
    for key in ("bench", "metrics"):
        if key not in document:
            raise ValueError(f"{path}: not a benchmark document "
                             f"(missing {key!r})")
    return document


def charged_metrics(document: dict[str, Any]) -> dict[str, float]:
    """The machine-stable regression series: numeric ``*charged*`` keys."""
    return {key: float(value)
            for key, value in document["metrics"].items()
            if "charged" in key and isinstance(value, (int, float))}


def compare_document(fresh_path: Path, max_regression: float,
                     baseline_dir: Path = REPO_ROOT) -> list[str]:
    """Compare one fresh result against its committed baseline.

    Returns a list of failure strings (empty = pass); prints one line per
    compared metric either way.
    """
    fresh = load_document(fresh_path)
    bench = fresh["bench"]
    baseline_path = baseline_dir / f"BENCH_{bench}.json"
    if not baseline_path.exists():
        return [f"{bench}: no committed baseline at {baseline_path}; "
                f"run the benchmark with BENCH_JSON set and commit the "
                f"document as {baseline_path.name}"]
    baseline = load_document(baseline_path)

    base_charged = charged_metrics(baseline)
    fresh_charged = charged_metrics(fresh)
    if not base_charged:
        return [f"{bench}: baseline {baseline_path.name} has no charged "
                f"metrics to gate on"]

    failures: list[str] = []
    for key in sorted(base_charged):
        base_value = base_charged[key]
        if key not in fresh_charged:
            failures.append(f"{bench}: charged metric {key!r} present in "
                            f"baseline but missing from {fresh_path}")
            continue
        fresh_value = fresh_charged[key]
        if base_value <= 0.0:
            print(f"{bench}.{key}: baseline {base_value:.6g} not positive; "
                  f"skipping ratio check (fresh {fresh_value:.6g})")
            continue
        delta = (fresh_value - base_value) / base_value
        verdict = "ok"
        if delta > max_regression:
            verdict = "REGRESSION"
            failures.append(
                f"{bench}: {key} regressed {delta * 100:+.1f}% "
                f"({base_value:.6g} -> {fresh_value:.6g}, "
                f"limit +{max_regression * 100:.0f}%)")
        print(f"{bench}.{key}: {base_value:.6g} -> {fresh_value:.6g} "
              f"({delta * 100:+.1f}%) {verdict}")
    for key in sorted(set(fresh_charged) - set(base_charged)):
        print(f"{bench}.{key}: new charged metric (no baseline yet); "
              f"refresh {baseline_path.name} to start gating it")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on charged-time regressions vs committed "
                    "BENCH_*.json baselines.")
    parser.add_argument("results", nargs="+", type=Path,
                        help="fresh benchmark JSON document(s)")
    parser.add_argument(
        "--max-regression", type=float,
        default=float(os.environ.get("COMPARE_MAX_REGRESSION", "0.2")),
        help="allowed fractional increase in charged time (default 0.2)")
    args = parser.parse_args(argv)

    failures: list[str] = []
    for path in args.results:
        if not path.exists():
            failures.append(f"missing results file: {path}")
            continue
        try:
            failures.extend(compare_document(path, args.max_regression))
        except (ValueError, json.JSONDecodeError) as exc:
            failures.append(f"{path}: {exc}")

    if failures:
        print("\nbenchmark gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
