"""E2 — GEMM/GEMV offload to GPU/TPU for DNN training and inference (§III-A-1).

Expected shape: small batches stay on the host (transfer + launch overhead
dominates); large GEMMs offload with speedups approaching the device's peak
advantage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerators import (
    GPUAccelerator,
    KernelRegistry,
    OffloadPlanner,
    TPUAccelerator,
    WorkEstimate,
)
from repro.stores.ml import MLPClassifier

BATCHES = [32, 256, 2048]
MATRIX_SIZES = [64, 256, 1024]


@pytest.mark.parametrize("batch", BATCHES)
def test_cpu_mlp_training_step(benchmark, batch):
    """Host mini-batch SGD steps at several batch sizes."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(batch, 32))
    y = (x[:, 0] > 0).astype(float)
    model = MLPClassifier(32, (64,), seed=0)
    benchmark(lambda: model.fit(x, y, epochs=1, batch_size=batch, shuffle=False))
    benchmark.extra_info["experiment"] = "E2"
    benchmark.extra_info["batch"] = batch
    benchmark.extra_info["flops"] = model.ops.counter.flops


@pytest.mark.parametrize("size", MATRIX_SIZES)
def test_gemm_offload_decision(benchmark, size):
    """Placement decision for a square GEMM of the given size."""
    planner = OffloadPlanner(KernelRegistry([GPUAccelerator(), TPUAccelerator()]))
    decision = benchmark(lambda: planner.decide(
        "gemm", WorkEstimate(matrix_dims=(size, size, size))))
    benchmark.extra_info["experiment"] = "E2"
    benchmark.extra_info["matrix"] = size
    benchmark.extra_info["target"] = decision.target
    benchmark.extra_info["speedup"] = decision.speedup
    if size >= 1024:
        assert decision.offloaded


@pytest.mark.parametrize("size", MATRIX_SIZES)
def test_gpu_gemm_functional(benchmark, size):
    """Functional GEMM through the GPU simulator (result checked against numpy)."""
    rng = np.random.default_rng(1)
    a = rng.normal(size=(size, size))
    b = rng.normal(size=(size, size))
    gpu = GPUAccelerator()

    def offload():
        result, report = gpu.offload("gemm", a, b)
        return result, report

    result, report = benchmark(offload)
    assert np.allclose(result, a @ b)
    benchmark.extra_info["experiment"] = "E2"
    benchmark.extra_info["simulated_time_s"] = report.total_s
