"""E3 — data-access offload: streaming scan + filter/project near the data (§III-A-2).

Expected shape: the bytes reaching the host drop with predicate selectivity
when filter/projection run bump-in-the-wire, and the offload decision flips
to the FPGA once the scanned volume is large enough.
"""

from __future__ import annotations

import pytest

from repro.accelerators import FPGAAccelerator, KernelRegistry, OffloadPlanner, WorkEstimate
from repro.datamodel import DataType, Table, make_schema
from repro.stores.relational import RelationalEngine, compare
from repro.stores.relational.operators import Filter, TableScan

SELECTIVITIES = [0.01, 0.1, 0.5]
ROWS = 20_000


@pytest.fixture(scope="module")
def events_engine() -> RelationalEngine:
    schema = make_schema(("event_id", DataType.INT), ("device", DataType.INT),
                         ("value", DataType.FLOAT))
    table = Table(schema, [(i, i % 100, (i % 1000) / 1000.0) for i in range(ROWS)])
    engine = RelationalEngine("events-db")
    engine.load_table("events", table)
    return engine


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_host_scan_filter(benchmark, events_engine, selectivity):
    """Host-side scan + filter at several selectivities."""
    predicate = compare("value", "<", selectivity)

    def run():
        rows = events_engine.scan("events").to_dicts()
        return Filter(TableScan(rows), predicate).execute()

    kept = benchmark(run)
    benchmark.extra_info["experiment"] = "E3"
    benchmark.extra_info["selectivity"] = selectivity
    benchmark.extra_info["rows_kept"] = len(kept)


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_fpga_filter_reduces_host_bytes(benchmark, events_engine, selectivity):
    """Bump-in-the-wire filter: bytes shipped to the host shrink with selectivity."""
    fpga = FPGAAccelerator()
    predicate = compare("value", "<", selectivity)
    rows = events_engine.scan("events").to_dicts()

    def run():
        kept, report = fpga.offload("filter", rows, predicate.evaluate)
        return kept, report

    kept, report = benchmark(run)
    benchmark.extra_info["experiment"] = "E3"
    benchmark.extra_info["selectivity"] = selectivity
    benchmark.extra_info["bytes_in"] = report.bytes_moved
    benchmark.extra_info["rows_kept"] = len(kept)
    assert len(kept) == pytest.approx(selectivity * ROWS, rel=0.2)


@pytest.mark.parametrize("rows", [1_000, 100_000, 2_000_000])
def test_scan_offload_decision_by_volume(benchmark, rows):
    """The scan+filter offload decision flips once volume is large enough."""
    planner = OffloadPlanner(KernelRegistry([FPGAAccelerator()]))
    decision = benchmark(lambda: planner.decide(
        "filter", WorkEstimate(rows=rows, selectivity=0.1)))
    benchmark.extra_info["experiment"] = "E3"
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["offloaded"] = decision.offloaded
    benchmark.extra_info["speedup"] = decision.speedup
