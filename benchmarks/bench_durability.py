"""Durable-write throughput per WAL sync policy, and recovery time.

Two measurements over a relational engine backed by the durability
subsystem:

* **write throughput** — insert ``DURABILITY_BENCH_ROWS`` rows (default
  100k) in fixed-size batches under each WAL sync policy (``off``,
  ``interval``, ``always``) plus an in-memory baseline, and report
  rows/second.  ``off`` and ``interval`` buffer identically per record (the
  interval policy fsyncs on a timer), so they should stay within a small
  factor of the in-memory run; ``always`` fsyncs every record and is
  expected to be much slower — the benchmark only asserts ordering sanity,
  not absolute numbers.
* **recovery time** — close the durable deployment, then measure a cold
  :class:`~repro.core.system.PolystorePlusPlus` ``data_dir`` open plus
  engine re-registration (manifest load, snapshot restore, WAL tail
  replay).  A clean close checkpoints, so the tail is empty and recovery
  cost is dominated by the snapshot restore; the benchmark asserts the
  recovered row count and that zero batches were replayed.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_durability.py -q
Smoke mode (CI):  DURABILITY_BENCH_ROWS=5000 PYTHONPATH=src python -m pytest ...
"""

from __future__ import annotations

import os
import time

from repro import PolystorePlusPlus
from repro.core.system import SystemConfig
from repro.datamodel import DataType, make_schema
from repro.stores import RelationalEngine

#: Base cardinality; the acceptance criterion requires a 100k-row base.
N_ROWS = int(os.environ.get("DURABILITY_BENCH_ROWS", "100000"))
#: Rows per insert call (one WAL record per call).
BATCH = int(os.environ.get("DURABILITY_BENCH_BATCH", "500"))
#: Recovery must finish within this many seconds (generous; smoke-safe).
MAX_RECOVERY_S = float(os.environ.get("DURABILITY_MAX_RECOVERY_S", "30.0"))

_SCHEMA = make_schema(("order_id", DataType.INT), ("customer", DataType.STRING),
                      ("amount", DataType.FLOAT))


def _rows(start: int, count: int):
    return [(start + i, f"c{(start + i) % 100}", float((start + i) % 97))
            for i in range(count)]


def _write_run(tmp_path, sync: str | None) -> float:
    """Insert N_ROWS in batches; returns wall seconds. sync=None -> no disk."""
    if sync is None:
        system = PolystorePlusPlus()
    else:
        system = PolystorePlusPlus(SystemConfig(
            data_dir=str(tmp_path / f"sync-{sync}"), durability_sync=sync,
            # One checkpoint mid-run so checkpointing cost is represented
            # without dominating.
            durability_snapshot_every=max(1, N_ROWS // BATCH // 2),
        ))
    engine = system.register_engine(RelationalEngine("ordersdb"))
    engine.create_table("orders", _SCHEMA)
    start = time.perf_counter()
    for offset in range(0, N_ROWS, BATCH):
        engine.insert("orders", _rows(offset, min(BATCH, N_ROWS - offset)))
    elapsed = time.perf_counter() - start
    system.close()
    return elapsed


def test_write_throughput_per_sync_policy(tmp_path):
    results: dict[str, float] = {}
    for sync in (None, "off", "interval", "always"):
        label = sync or "in-memory"
        results[label] = _write_run(tmp_path, sync)
    print(f"\nrows written       : {N_ROWS} (batches of {BATCH})")
    for label, elapsed in results.items():
        print(f"{label:<11}: {elapsed * 1000:8.1f} ms "
              f"({N_ROWS / elapsed:10.0f} rows/s)")
    # Sanity ordering only: fsync-per-record must not beat buffered writes.
    assert results["always"] >= results["off"] * 0.5
    # Buffered durability should cost less than 25x the in-memory run even
    # on slow CI disks (locally it is ~1.1-1.5x).
    assert results["interval"] <= results["in-memory"] * 25


def test_recovery_time(tmp_path):
    data_dir = tmp_path / "recovery"
    system = PolystorePlusPlus(data_dir=str(data_dir))
    engine = system.register_engine(RelationalEngine("ordersdb"))
    engine.create_table("orders", _SCHEMA)
    for offset in range(0, N_ROWS, BATCH):
        engine.insert("orders", _rows(offset, min(BATCH, N_ROWS - offset)))
    system.close()

    start = time.perf_counter()
    reborn = PolystorePlusPlus(data_dir=str(data_dir))
    recovered = reborn.register_engine(RelationalEngine("ordersdb"))
    elapsed = time.perf_counter() - start

    table = recovered.snapshot_scan("orders")[0]
    assert len(table.rows) == N_ROWS
    report = reborn.durability.recovery_report()["ordersdb"]
    assert report["restored"] and report["replayed_batches"] == 0
    print(f"\nrecovered rows     : {N_ROWS}")
    print(f"recovery (snapshot): {elapsed * 1000:.1f} ms")
    assert elapsed <= MAX_RECOVERY_S, f"recovery took {elapsed:.1f}s"
    reborn.close()


if __name__ == "__main__":
    import pathlib
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        test_write_throughput_per_sync_policy(pathlib.Path(tmp))
        test_recovery_time(pathlib.Path(tmp))
