"""E8 — cross-store recommendation workload across execution modes (Figure 1)."""

from __future__ import annotations

import pytest

from benchmarks._emit import report_info
from repro.workloads import build_recommendation_program, build_top_spenders_program

MODES = ["one_size_fits_all", "cpu_polystore", "polystore++"]


@pytest.mark.parametrize("mode", MODES)
def test_recommendation_by_mode(benchmark, recommendation_system, mode):
    """The next-best-offer program (RDBMS + KV + clickstream + ML) per mode."""
    system = recommendation_system["system"]
    program = build_recommendation_program(epochs=2)

    result = benchmark.pedantic(lambda: system.execute(program, mode=mode),
                                iterations=1, rounds=3)
    model = result.output("offer_model")
    benchmark.extra_info["experiment"] = "E8"
    benchmark.extra_info.update(report_info(result))
    benchmark.extra_info["accuracy"] = model["metrics"]["accuracy"]
    assert model["rows"] == recommendation_system["dataset"].num_customers


def test_reporting_query(benchmark, recommendation_system):
    """The lighter reporting query (top spenders) through the polystore."""
    system = recommendation_system["system"]
    program = build_top_spenders_program(10)

    result = benchmark(lambda: system.execute(program, mode="polystore++"))
    table = result.output("top")
    benchmark.extra_info["experiment"] = "E8"
    benchmark.extra_info["rows"] = len(table)
    assert len(table) == 10
