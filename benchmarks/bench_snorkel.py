"""E9 — Snorkel-style SQL-in-the-ML-loop pipeline (Figure 3).

Expected shape: the per-batch SQL round trips dominate the imperative loop;
the declarative heterogeneous program (one scan, CSE-deduplicated) removes
most of that data-access cost.
"""

from __future__ import annotations

import pytest

from benchmarks._emit import report_info
from repro.core import build_accelerated_polystore
from repro.stores import MLEngine, RelationalEngine
from repro.workloads import (
    build_snorkel_program,
    generate_documents,
    load_documents,
    run_labeling_pipeline,
)

CORPUS_SIZES = [1_000, 4_000]


@pytest.fixture(scope="module")
def corpora():
    engines = {}
    for size in CORPUS_SIZES:
        engine = RelationalEngine(f"corpus-{size}")
        load_documents(generate_documents(size, seed=29), engine)
        engines[size] = engine
    return engines


@pytest.mark.parametrize("size", CORPUS_SIZES)
def test_imperative_labeling_loop(benchmark, corpora, size):
    """The paper's Figure 3 loop: one SQL query per mini-batch."""
    engine = corpora[size]

    result = benchmark.pedantic(
        lambda: run_labeling_pipeline(engine, epochs=2, batch_size=256),
        iterations=1, rounds=3)
    benchmark.extra_info["experiment"] = "E9"
    benchmark.extra_info["documents"] = size
    benchmark.extra_info["sql_queries"] = result.sql_queries_issued
    benchmark.extra_info["accuracy"] = result.accuracy_vs_true
    assert result.accuracy_vs_true > 0.6


@pytest.mark.parametrize("size", CORPUS_SIZES)
def test_declarative_polystore_pipeline(benchmark, corpora, size):
    """The same pipeline as one heterogeneous program through Polystore++."""
    engine = corpora[size]
    system = build_accelerated_polystore([engine, MLEngine(f"label-ml-{size}")])
    program = build_snorkel_program(relational=engine.name, ml=f"label-ml-{size}",
                                    epochs=2)

    result = benchmark.pedantic(lambda: system.execute(program, mode="polystore++"),
                                iterations=1, rounds=3)
    model = result.output("label_model")
    benchmark.extra_info["experiment"] = "E9"
    benchmark.extra_info["documents"] = size
    benchmark.extra_info.update(report_info(result))
    benchmark.extra_info["accuracy"] = model["metrics"]["accuracy"]
    assert model["rows"] == size
