"""E11 — LogCA crossover curves: speedup vs granularity and kernel intensity (§II-B).

Expected shape: speedup < 1 below the break-even granularity g1, rising
through g_{A/2} and saturating at the asymptotic acceleration; higher
computational-intensity kernels (larger beta) reach higher asymptotes.
"""

from __future__ import annotations

import pytest

from repro.accelerators import (
    FPGAAccelerator,
    GPUAccelerator,
    LogCAModel,
    LogCAParameters,
    RooflineModel,
    TPUAccelerator,
)

GRANULARITIES = [1e3, 1e5, 1e7, 1e9]
DEVICES = {
    "fpga": FPGAAccelerator,
    "gpu": GPUAccelerator,
    "tpu": TPUAccelerator,
}


@pytest.mark.parametrize("device_name", list(DEVICES))
def test_logca_curve_per_device(benchmark, device_name):
    """Speedup curve for each device's LogCA view of a linear kernel."""
    device = DEVICES[device_name]()
    model = device.logca_model(host_compute_index_s_per_byte=5e-8, beta=1.0)

    curve = benchmark(lambda: model.speedup_curve(GRANULARITIES))
    speedups = [s for _, s in curve]
    benchmark.extra_info["experiment"] = "E11"
    benchmark.extra_info["device"] = device_name
    benchmark.extra_info["speedups"] = speedups
    benchmark.extra_info["g1_bytes"] = model.break_even_granularity()
    benchmark.extra_info["asymptotic_speedup"] = model.asymptotic_speedup()
    assert speedups == sorted(speedups)


@pytest.mark.parametrize("beta", [1.0, 1.2, 1.5])
def test_logca_kernel_intensity_sweep(benchmark, beta):
    """Higher computational intensity (beta) lowers the crossover granularity."""
    model = LogCAModel(LogCAParameters(
        latency_per_byte_s=1e-9, overhead_s=1e-4,
        compute_index_s_per_byte=2e-8, peak_acceleration=50.0, beta=beta))

    g1 = benchmark(model.break_even_granularity)
    benchmark.extra_info["experiment"] = "E11"
    benchmark.extra_info["beta"] = beta
    benchmark.extra_info["g1_bytes"] = g1
    benchmark.extra_info["asymptotic_speedup"] = model.asymptotic_speedup()
    assert g1 is not None


def test_roofline_ceilings(benchmark):
    """Attainable throughput vs arithmetic intensity for host and accelerators."""
    devices = {
        "host": RooflineModel(64.0, 25.0),
        "fpga": FPGAAccelerator().profile.roofline(),
        "gpu": GPUAccelerator().profile.roofline(),
        "tpu": TPUAccelerator().profile.roofline(),
    }
    intensities = [0.1, 1.0, 10.0, 100.0]

    curves = benchmark(lambda: {name: model.curve(intensities)
                                for name, model in devices.items()})
    benchmark.extra_info["experiment"] = "E11"
    benchmark.extra_info["ridge_points"] = {name: model.ridge_point
                                            for name, model in devices.items()}
    assert curves["gpu"][-1][1] > curves["host"][-1][1]
