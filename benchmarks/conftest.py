"""Shared fixtures and helpers for the experiment benchmarks.

Every benchmark corresponds to one experiment of DESIGN.md §4 (E1-E12) and
records its headline numbers in ``benchmark.extra_info`` so the saved JSON
doubles as the data behind EXPERIMENTS.md.

The benchmarks degrade gracefully in minimal environments: when
``pytest-benchmark`` is not installed, a stub ``benchmark`` fixture is
provided that skips (rather than erroring at collection or setup) every test
that actually requests it; benchmarks that only *optionally* use the fixture
still run their assertions.
"""

from __future__ import annotations

import pytest

try:
    import pytest_benchmark  # noqa: F401
    HAVE_PYTEST_BENCHMARK = True
except ImportError:  # pragma: no cover - exercised only in minimal envs
    HAVE_PYTEST_BENCHMARK = False

if not HAVE_PYTEST_BENCHMARK:
    @pytest.fixture
    def benchmark():
        """Stand-in for pytest-benchmark's fixture: skip, don't error."""
        pytest.skip("pytest-benchmark is not installed")

from repro.core import build_accelerated_polystore
from repro.stores import (
    KeyValueEngine,
    MLEngine,
    RelationalEngine,
    TextEngine,
    TimeseriesEngine,
)
from repro.workloads import (
    generate_mimic,
    generate_recommendation,
    load_mimic,
    load_recommendation,
)


@pytest.fixture(scope="module")
def mimic_system():
    """An accelerated Polystore++ deployment over 400 synthetic patients."""
    dataset = generate_mimic(400, points_per_patient=16, seed=17)
    relational = RelationalEngine("clinical-db")
    timeseries = TimeseriesEngine("monitors")
    text = TextEngine("notes-db")
    ml = MLEngine("dnn-engine")
    load_mimic(dataset, relational=relational, timeseries=timeseries, text=text)
    system = build_accelerated_polystore([relational, timeseries, text, ml])
    return {"system": system, "dataset": dataset}


@pytest.fixture(scope="module")
def recommendation_system():
    """An accelerated Polystore++ deployment over 400 synthetic customers."""
    dataset = generate_recommendation(400, seed=19)
    relational = RelationalEngine("sales-db")
    keyvalue = KeyValueEngine("profiles")
    timeseries = TimeseriesEngine("clickstream")
    ml = MLEngine("reco-ml")
    load_recommendation(dataset, relational=relational, keyvalue=keyvalue,
                        timeseries=timeseries)
    system = build_accelerated_polystore([relational, keyvalue, timeseries, ml])
    return {"system": system, "dataset": dataset}
