"""Shard pruning: a dataflow key predicate vs full scatter-gather.

A sales table is hash-partitioned across 4 relational shards on
``customer_id``.  The same dataflow query — ``table("sales")
.filter(col("customer_id") == K).aggregate(...)`` — runs twice:

* **pruned** (default compiler options): the pushdown pass absorbs the
  structured predicate into the scan and the scatter path routes the read to
  the single shard owning ``K``;
* **full scatter** (``pushdown=False``): the filter stays a separate
  operator, so the scan fans out to every shard and the predicate is applied
  partition-wise afterwards.

The headline metric is *charged* time (thread-CPU critical path, the same
accounting as ``bench_sharded_scan``): the pruned read must beat the full
scatter-gather by at least ``PRUNING_MIN_SPEEDUP`` (default 2x) at 4 shards,
and both plans must return identical rows.

Run with:  PYTHONPATH=src python -m pytest benchmarks/bench_dataflow_pruning.py -q
Smoke mode (CI):  PRUNING_BENCH_ITERS=1 PYTHONPATH=src python -m pytest ...
"""

from __future__ import annotations

import os

from repro import DataflowProgram, col
from repro.compiler import CompilerOptions
from repro.core import build_cpu_polystore
from repro.datamodel import DataType, Table, make_schema
from repro.stores import RelationalEngine

N_ROWS = 8000
NUM_SHARDS = 4
N_CUSTOMERS = 64
TARGET_CUSTOMER = 7
#: Timed repetitions per configuration; CI smoke mode sets 1.
ITERATIONS = max(1, int(os.environ.get("PRUNING_BENCH_ITERS", "5")))
#: Required charged-time advantage of the pruned read over full scatter.
MIN_SPEEDUP = float(os.environ.get("PRUNING_MIN_SPEEDUP", "2.0"))

_SCHEMA = make_schema(("customer_id", DataType.INT), ("amount", DataType.FLOAT),
                      ("region", DataType.STRING))
_ROWS = [(i % N_CUSTOMERS, float((i * 37) % 997), f"r{i % 5}")
         for i in range(N_ROWS)]


def _deployment():
    system = build_cpu_polystore([])
    engine = system.register_sharded_engine("salesdb", RelationalEngine, NUM_SHARDS)
    engine.create_table("sales", _SCHEMA, shard_key="customer_id")
    engine.insert("sales", _ROWS)
    # The shard key is also hash-indexed on every shard: the absorbed
    # predicate then routes to one shard AND seeks instead of scanning it.
    engine.create_index("sales", "customer_id")
    return system, engine


def _program() -> DataflowProgram:
    from repro.eide import dataset

    sales = dataset("salesdb").table("sales")
    keyed = sales.filter(col("customer_id") == TARGET_CUSTOMER)
    summary = keyed.aggregate([], total=("sum", "amount"), n=("count", None))
    program = DataflowProgram("keyed-spend")
    program.output("summary", summary)
    return program


def _charged_time(system, options: CompilerOptions) -> tuple[float, list[dict]]:
    """Best-of-N charged execution time plus the result rows."""
    session = system.session(name="bench-pruning")
    prepared = session.prepare(_program(), options=options)
    prepared.run(reuse_scans=False)  # warm plan cache and adapters
    best = float("inf")
    rows: list[dict] = []
    for _ in range(ITERATIONS):
        result = prepared.run(reuse_scans=False)
        best = min(best, result.report.total_time_s)
        rows = result.output("summary").to_dicts()
    session.close()
    return best, rows


def test_key_predicate_beats_full_scatter():
    system, engine = _deployment()
    pruned_s, pruned_rows = _charged_time(system, CompilerOptions())
    full_s, full_rows = _charged_time(system, CompilerOptions(pushdown=False))

    assert pruned_rows == full_rows, "pruned plan changed the answer"
    expected_n = sum(1 for row in _ROWS if row[0] == TARGET_CUSTOMER)
    assert pruned_rows[0]["n"] == expected_n

    speedup = full_s / pruned_s
    print(f"\nfull scatter ({NUM_SHARDS} shards): {full_s * 1000:.3f} ms charged")
    print(f"key-pruned read          : {pruned_s * 1000:.3f} ms charged "
          f"({speedup:.1f}x faster)")
    headline = {
        "experiment": "dataflow_pruning",
        "rows": N_ROWS,
        "shards": NUM_SHARDS,
        "charged_full_ms": full_s * 1000,
        "charged_pruned_ms": pruned_s * 1000,
        "speedup": speedup,
    }
    assert speedup >= MIN_SPEEDUP, (
        f"pruned read only {speedup:.2f}x faster than full scatter", headline)


def test_pruned_read_contacts_only_the_owning_shard():
    system, engine = _deployment()
    owner = engine.partitioner.shard_for(TARGET_CUSTOMER)
    before = [len(shard.metrics.records) for shard in engine.shards]
    result = system.execute(_program())
    after = [len(shard.metrics.records) for shard in engine.shards]
    contacted = [i for i, (a, b) in enumerate(zip(after, before)) if a > b]
    assert contacted == [owner], f"contacted shards {contacted}, owner {owner}"
    read = [r for r in result.report.records
            if r.kind in ("scan", "index_seek")][0]
    assert read.kind == "index_seek"  # predicate + index converted the scan
    assert read.details["fan_out"] == "routed"
    assert read.details["contacted_shards"] == [engine.shards[owner].name]


if __name__ == "__main__":
    test_key_predicate_beats_full_scatter()
    test_pruned_read_contacts_only_the_owning_shard()
