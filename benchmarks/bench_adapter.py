"""E5 — adapter offload: IR-to-native rule transformation cost (§III-A-4).

The adapter's transformation of an IR fragment into engine-native calls is a
fixed rule set; the paper suggests encoding it in hardware to free host
cycles.  The benchmark measures host-side transformation cost as plan size
grows, and the modelled benefit of running the same rule data-flow on a CGRA.
"""

from __future__ import annotations

import pytest

from repro.accelerators import CGRAAccelerator, KernelSpec
from repro.catalog import Catalog
from repro.compiler import Compiler
from repro.eide import HeterogeneousProgram
from repro.middleware.adapters import RelationalAdapter
from repro.stores.relational import RelationalEngine
from repro.datamodel import DataType, Table, make_schema

PLAN_WIDTHS = [5, 25, 100]


@pytest.fixture(scope="module")
def engine() -> RelationalEngine:
    schema = make_schema(("k", DataType.INT), ("v", DataType.FLOAT))
    engine = RelationalEngine("adapter-db")
    engine.load_table("facts", Table(schema, [(i, float(i)) for i in range(2_000)]))
    return engine


def wide_program(width: int) -> HeterogeneousProgram:
    """A program with ``width`` independent SQL fragments (a wide IR)."""
    program = HeterogeneousProgram(f"wide-{width}")
    for index in range(width):
        program.sql(f"q{index}",
                    f"SELECT k, v FROM facts WHERE k > {index} ORDER BY v LIMIT 10",
                    engine="adapter-db")
        program.output(f"q{index}")
    return program


@pytest.mark.parametrize("width", PLAN_WIDTHS)
def test_host_ir_transformation(benchmark, engine, width):
    """Frontend + passes transformation cost on the host as plans grow."""
    catalog = Catalog()
    catalog.register_engine(engine)
    compiler = Compiler(catalog)
    program = wide_program(width)

    result = benchmark(lambda: compiler.compile(program))
    benchmark.extra_info["experiment"] = "E5"
    benchmark.extra_info["fragments"] = width
    benchmark.extra_info["ir_nodes"] = len(result.graph)


@pytest.mark.parametrize("width", PLAN_WIDTHS)
def test_adapter_execution_cost(benchmark, engine, width):
    """Adapter-side execution of one lowered fragment, repeated ``width`` times."""
    catalog = Catalog()
    catalog.register_engine(engine)
    compiler = Compiler(catalog)
    graph = compiler.compile(wide_program(width)).graph
    adapter = RelationalAdapter(engine)
    scans = graph.nodes_of_kind("scan")

    def run():
        return [adapter.execute(node, []) for node in scans]

    results = benchmark(run)
    benchmark.extra_info["experiment"] = "E5"
    benchmark.extra_info["scans"] = len(results)


@pytest.mark.parametrize("rules", [100, 1_000, 10_000])
def test_cgra_rule_dataflow_estimate(benchmark, rules):
    """Modelled cost of evaluating the adapter's rule data-flow on a CGRA."""
    cgra = CGRAAccelerator()
    spec = KernelSpec(name="map", bytes_in=rules * 32, bytes_out=rules * 32,
                      flops=rules * 4, elements=rules, pipelineable=True)
    report = benchmark(lambda: cgra.estimate(spec))
    benchmark.extra_info["experiment"] = "E5"
    benchmark.extra_info["rules"] = rules
    benchmark.extra_info["modelled_total_s"] = report.total_s
