"""E10 — L1 optimization ablation: effect of each compiler pass on plan cost (§IV-B).

Expected shape: every pass reduces (or leaves unchanged) the cost-model
estimate of the plan; all passes together reduce it the most, chiefly by
shrinking the bytes crossing engine boundaries.
"""

from __future__ import annotations

import pytest

from repro.catalog import Catalog
from repro.compiler import Compiler, CompilerOptions
from repro.middleware.optimizer import CostModel
from repro.workloads import build_mimic_program

VARIANTS = {
    "none": CompilerOptions.none(),
    "pushdown_only": CompilerOptions(pushdown=True, fusion=False, cse=False,
                                     join_reorder=False, dce=False,
                                     accelerator_placement=False),
    "fusion_only": CompilerOptions(pushdown=False, fusion=True, cse=False,
                                   join_reorder=False, dce=False,
                                   accelerator_placement=False),
    "cse_only": CompilerOptions(pushdown=False, fusion=False, cse=True,
                                join_reorder=False, dce=False,
                                accelerator_placement=False),
    "all": CompilerOptions(accelerator_placement=False),
}


@pytest.fixture(scope="module")
def catalog(mimic_system) -> Catalog:
    return mimic_system["system"].catalog


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_pass_ablation(benchmark, catalog, variant):
    """Compile the MIMIC program (age-filtered) under one pass configuration."""
    program = build_mimic_program(min_age=60, epochs=1)
    compiler = Compiler(catalog, options=VARIANTS[variant])
    cost_model = CostModel()

    result = benchmark(lambda: compiler.compile(program))
    estimated_cost = cost_model.plan_cost(result.graph)
    benchmark.extra_info["experiment"] = "E10"
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["ir_nodes"] = len(result.graph)
    benchmark.extra_info["estimated_plan_cost_s"] = estimated_cost
    benchmark.extra_info["estimated_bytes"] = result.estimated_bytes_after


def test_all_passes_not_worse_than_none(catalog):
    """The headline ablation check: the fully optimized plan is never costlier."""
    program = build_mimic_program(min_age=60, epochs=1)
    cost_model = CostModel()
    unoptimized = Compiler(catalog, options=VARIANTS["none"]).compile(program)
    optimized = Compiler(catalog, options=VARIANTS["all"]).compile(program)
    assert cost_model.plan_cost(optimized.graph) <= cost_model.plan_cost(unoptimized.graph)
    assert optimized.estimated_bytes_after <= unoptimized.estimated_bytes_after
