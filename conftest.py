"""Repo-root pytest bootstrap.

Puts ``src/`` on ``sys.path`` so a plain ``python -m pytest`` from the repo
root works without exporting ``PYTHONPATH=src`` first (the documented tier-1
command still works unchanged).
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
